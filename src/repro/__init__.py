"""repro — a reproduction of Cohen's monotone-sampling estimation framework.

The library implements the full machinery of *"Estimation for Monotone
Sampling: Competitiveness and Customization"* (Edith Cohen, PODC 2014):

* coordinated shared-seed (PPS / threshold) sampling schemes and the
  monotone-estimation abstraction built on them (:mod:`repro.core`);
* the L*, U*, Horvitz–Thompson, dyadic and order-optimal estimators,
  the v-optimal oracle and the optimal-range characterisation
  (:mod:`repro.estimators`);
* exact variance / competitiveness analysis and Monte-Carlo simulation
  (:mod:`repro.analysis`);
* sum-aggregate estimation over multi-instance datasets sampled with
  coordinated PPS (:mod:`repro.aggregates`);
* sampling-sketch substrates — bottom-k, priority, reservoir, and
  all-distances sketches with HIP probabilities (:mod:`repro.sketches`);
* graph utilities and closeness-similarity estimation
  (:mod:`repro.graphs`);
* synthetic workload generators standing in for the paper's proprietary
  datasets (:mod:`repro.datasets`);
* one experiment module per table/figure/claim of the paper
  (:mod:`repro.experiments`).

Quickstart
----------

The session facade (:mod:`repro.api`) drives the whole pipeline — scheme
construction, estimator/target resolution through the plugin registries,
seed management, and backend dispatch — from one fluent builder:

>>> from repro import EstimationSession
>>> session = (
...     EstimationSession([1.0, 1.0], scheme="pps")
...     .target("one_sided_range", p=1)
...     .estimator("lstar")
... )
>>> round(session.estimate((0.6, 0.2), seed=0.35).value, 6)
0.538997

The same session estimates sum aggregates over whole datasets
(``session.estimate(dataset, rng=7)``), evaluates exact ground truth
(``session.query("lpp", dataset, p=2)``), and runs Monte-Carlo error
studies (``session.simulate(tuples, replications=200)``).  New targets,
estimators and queries plug in with one ``repro.api.register_*`` call.

Low-level API
-------------

The layers the session orchestrates remain importable directly — they
are the reference implementation the tests pin down:

>>> from repro import pps_scheme, OneSidedRange, LStarEstimator
>>> scheme = pps_scheme([1.0, 1.0])
>>> target = OneSidedRange(p=1)
>>> estimator = LStarEstimator(target)
>>> outcome = scheme.sample((0.6, 0.2), seed=0.35)
>>> round(estimator.estimate(outcome), 6)
0.538997
"""

from .core import (
    AbsoluteCombination,
    BoxDomain,
    CoordinatedScheme,
    DistinctOr,
    EstimationTarget,
    ExponentiatedRange,
    GenericTarget,
    GridDomain,
    LinearThreshold,
    MaxPower,
    MinPower,
    OneSidedRange,
    Outcome,
    OutcomeLowerBound,
    SeedAssigner,
    StepThreshold,
    VectorLowerBound,
    WeightedSum,
    hash_to_unit,
    pps_scheme,
    unit_box,
)
from .estimators import (
    DiscreteProblem,
    DyadicEstimator,
    Estimator,
    HorvitzThompsonEstimator,
    LStarEstimator,
    LStarOneSidedRangePPS,
    OrderOptimalEstimator,
    UStarNumeric,
    UStarOneSidedRangePPS,
    VOptimalOracle,
    build_order_optimal,
)
from .analysis import (
    competitive_ratio,
    expected_square,
    expected_value,
    moments,
    simulate_sum_estimate,
    variance,
)
from .engine import (
    BatchOutcome,
    BatchSumEngine,
    BatchSumResult,
    resolve_kernel,
)
# The facade imports the layers above, so it must come last; by now the
# registries have been populated by each layer's self-registration.
from .api import (
    BackendPolicy,
    EstimateResult,
    EstimationSession,
    ExperimentRunner,
    ExperimentSpec,
    Session,
    register_estimator,
    register_query,
    register_scheme,
    register_target,
    set_default_backend,
)

__version__ = "0.1.0"

__all__ = [
    "AbsoluteCombination",
    "BoxDomain",
    "CoordinatedScheme",
    "DistinctOr",
    "EstimationTarget",
    "ExponentiatedRange",
    "GenericTarget",
    "GridDomain",
    "LinearThreshold",
    "MaxPower",
    "MinPower",
    "OneSidedRange",
    "Outcome",
    "OutcomeLowerBound",
    "SeedAssigner",
    "StepThreshold",
    "VectorLowerBound",
    "WeightedSum",
    "hash_to_unit",
    "pps_scheme",
    "unit_box",
    "DiscreteProblem",
    "DyadicEstimator",
    "Estimator",
    "HorvitzThompsonEstimator",
    "LStarEstimator",
    "LStarOneSidedRangePPS",
    "OrderOptimalEstimator",
    "UStarNumeric",
    "UStarOneSidedRangePPS",
    "VOptimalOracle",
    "build_order_optimal",
    "competitive_ratio",
    "expected_square",
    "expected_value",
    "moments",
    "simulate_sum_estimate",
    "variance",
    "BatchOutcome",
    "BatchSumEngine",
    "BatchSumResult",
    "resolve_kernel",
    "BackendPolicy",
    "EstimateResult",
    "EstimationSession",
    "ExperimentRunner",
    "ExperimentSpec",
    "Session",
    "register_estimator",
    "register_query",
    "register_scheme",
    "register_target",
    "set_default_backend",
    "__version__",
]
