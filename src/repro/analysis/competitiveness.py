"""Variance competitiveness: ratios, sweeps, and the Theorem 4.1 family.

An estimator is ``c``-competitive when, for every data vector, its
expected square is at most ``c`` times the minimum expected square
attainable by *any* nonnegative unbiased estimator on that vector.  The
minimum is realised by the v-optimal estimates (negated lower-hull
slopes), so the ratio is directly computable:

    ratio(v) = E[fhat(S(u, v))^2] / ∫_0^1 vopt_v(u)^2 du .

This module provides the per-vector ratio, sweeps over vector grids (used
to approximate the supremum over the domain), and the closed-form worst
case family of Theorem 4.1, for which

    f(v) = (1 − v^{1−p}) / (1 − p),   V = [0, 1],   PPS tau(u) = u,

yields (on the vector ``v = 0``) a v-optimal expected square of
``1 / (1 − 2p)``, an L* expected square of ``2 / ((1 − 2p)(1 − p))`` and
therefore a ratio of exactly ``2 / (1 − p)`` — approaching the tight
constant 4 as ``p → 1/2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence

from ..core.functions import EstimationTarget
from ..core.schemes import CoordinatedScheme, LinearThreshold, MonotoneSamplingScheme
from ..estimators.base import Estimator
from ..estimators.lstar import LStarEstimator
from ..estimators.vopt import VOptimalOracle
from .variance import expected_square

__all__ = [
    "minimal_expected_square",
    "competitive_ratio",
    "RatioReport",
    "ratio_sweep",
    "supremum_ratio",
    "TightFamilyTarget",
    "tight_family_problem",
    "tight_family_theoretical_ratio",
    "tight_family_measured_ratio",
]


def minimal_expected_square(
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vector: Sequence[float],
    grid: int = 2048,
) -> float:
    """Minimum attainable ``E[estimate^2]`` for ``vector`` (the denominator)."""
    oracle = VOptimalOracle(scheme, target, vector, grid=grid)
    return oracle.minimal_expected_square()


def competitive_ratio(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vector: Sequence[float],
    rtol: float = 1e-7,
    grid: int = 2048,
) -> float:
    """The paper's competitive ratio of ``estimator`` on ``vector``."""
    numerator = expected_square(estimator, scheme, vector, rtol=rtol)
    denominator = minimal_expected_square(scheme, target, vector, grid=grid)
    if denominator <= 0.0:
        # f(v) = 0 forces a zero estimator on all consistent outcomes; any
        # in-range estimator matches it, so the ratio is 1 by convention.
        return 1.0
    return numerator / denominator


@dataclass(frozen=True)
class RatioReport:
    """Competitive ratio of one estimator on one vector."""

    estimator: str
    vector: tuple
    expected_square: float
    minimal_expected_square: float

    @property
    def ratio(self) -> float:
        if self.minimal_expected_square <= 0.0:
            return 1.0
        return self.expected_square / self.minimal_expected_square


def ratio_sweep(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vectors: Iterable[Sequence[float]],
    rtol: float = 1e-7,
    grid: int = 2048,
    backend=None,
) -> List[RatioReport]:
    """Competitive ratios over a collection of data vectors.

    The numerators ``E[est^2]`` batch through the engine's quadrature
    (:func:`repro.engine.moments.batch_moments`) when ``backend`` — by
    default the process-wide policy — allows it and a kernel covers the
    estimator; the scalar adaptive quadrature remains the fallback and
    the reference.  The denominators come from the v-optimal hull, whose
    curve tracing is vectorized independently of the policy.
    """
    vectors = [tuple(float(x) for x in vector) for vector in vectors]
    numerators = _batched_expected_squares(
        estimator, scheme, target, vectors, backend
    )
    if numerators is None:
        numerators = [
            expected_square(estimator, scheme, vector, rtol=rtol)
            for vector in vectors
        ]
    reports = []
    for vector, numerator in zip(vectors, numerators):
        denominator = minimal_expected_square(scheme, target, vector, grid=grid)
        reports.append(
            RatioReport(
                estimator=estimator.name,
                vector=vector,
                expected_square=numerator,
                minimal_expected_square=denominator,
            )
        )
    return reports


def _batched_expected_squares(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vectors: Sequence[Sequence[float]],
    backend,
) -> "List[float] | None":
    """``E[est^2]`` per vector through the engine, or ``None`` to fall
    back to the scalar quadrature (policy says scalar, or no kernel)."""
    from ..api.backend import BackendPolicy
    from ..core.schemes import CoordinatedScheme

    if not isinstance(scheme, CoordinatedScheme) or not vectors:
        return None
    from ..engine.kernels import resolve_kernel
    from ..engine.moments import approx_node_count, batch_moments

    # Size the dispatch on the real work — vectors × quadrature nodes —
    # so a configured auto_threshold is honoured here exactly as in
    # batch_moments itself.
    size = len(vectors) * approx_node_count(len(vectors[0]))
    if BackendPolicy.coerce(backend).resolve(size) == "scalar":
        return None
    if resolve_kernel(estimator, scheme) is None:
        return None
    reports = batch_moments(
        estimator, scheme, target, vectors, backend="vectorized"
    )
    return [r.second_moment for r in reports]


def supremum_ratio(reports: Iterable[RatioReport]) -> float:
    """Largest ratio in a sweep (the empirical competitiveness constant)."""
    return max((r.ratio for r in reports), default=0.0)


# ----------------------------------------------------------------------
# Theorem 4.1: the family on which the L* ratio approaches 4.
# ----------------------------------------------------------------------
class TightFamilyTarget(EstimationTarget):
    """``f(v) = (1 − v^{1−p}) / (1 − p)`` on single-entry data in ``[0, 1]``.

    The function is decreasing in ``v``; its lower-bound function for the
    all-revealing-at-zero PPS scheme is convex, so the v-optimal estimate
    at ``v = 0`` is the negated derivative ``u^{-p}``, which is square
    integrable exactly when ``p < 1/2``.
    """

    dimension = 1

    def __init__(self, p: float) -> None:
        if not 0.0 <= p < 0.5:
            raise ValueError("the tight family needs p in [0, 0.5)")
        self.p = float(p)

    def __call__(self, vector: Sequence[float]) -> float:
        (v,) = vector
        v = min(max(float(v), 0.0), 1.0)
        return (1.0 - v ** (1.0 - self.p)) / (1.0 - self.p)

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        if 0 in known:
            return self((known[0],))
        # f is decreasing, so the infimum over v < bound is the value at
        # the bound (approached from below).
        bound = min(1.0, upper[0])
        return self((bound,))

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        if 0 in known:
            return self((known[0],))
        return self((0.0,))


def tight_family_problem(p: float):
    """Scheme and target of the Theorem 4.1 family (PPS with tau* = 1)."""
    scheme = CoordinatedScheme([LinearThreshold(1.0)])
    target = TightFamilyTarget(p)
    return scheme, target


def tight_family_theoretical_ratio(p: float) -> float:
    """The closed-form ratio ``2 / (1 − p)`` of Theorem 4.1 at ``v = 0``."""
    if not 0.0 < p < 0.5:
        raise ValueError("p must be in (0, 0.5)")
    return 2.0 / (1.0 - p)


def tight_family_theoretical_moments(p: float):
    """Closed-form (v-optimal E[sq], L* E[sq]) at ``v = 0``."""
    vopt = 1.0 / (1.0 - 2.0 * p)
    lstar = 2.0 / ((1.0 - 2.0 * p) * (1.0 - p))
    return vopt, lstar


def tight_family_measured_ratio(p: float, rtol: float = 1e-7) -> float:
    """Numerically measured L* ratio at ``v = 0`` for the tight family.

    Uses the closed form of the v-optimal denominator (``1 / (1 − 2p)``)
    and quadrature for the L* numerator; the two should agree with
    :func:`tight_family_theoretical_ratio` to quadrature accuracy, which
    is what experiment E6 demonstrates.
    """
    scheme, target = tight_family_problem(p)
    estimator = LStarEstimator(target)
    numerator = expected_square(estimator, scheme, (0.0,), rtol=rtol)
    denominator = 1.0 / (1.0 - 2.0 * p)
    return numerator / denominator


def lstar_ratio_bound() -> float:
    """The universal competitiveness constant of the L* estimator."""
    return 4.0


def approaches_four(ps: Sequence[float]) -> List[float]:
    """Theoretical ratios for a sequence of exponents (convenience)."""
    return [tight_family_theoretical_ratio(p) for p in ps]
