"""Exact and Monte-Carlo moments of estimators.

Because the seed is one-dimensional, the expectation and variance of any
estimator on a *known* data vector are one-dimensional integrals over the
seed: ``E[fhat | v] = ∫_0^1 fhat(S(u, v)) du`` and
``Var[fhat | v] = ∫_0^1 fhat(S(u, v))^2 du − f(v)^2`` (eq. 16).  The exact
routines here evaluate those integrals by breakpoint-aware adaptive
quadrature, which is what the unbiasedness, dominance and competitiveness
tests rely on; the Monte-Carlo routines draw random seeds and are used by
the larger experiments where the estimate is expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..api.backend import BackendPolicy, BackendSpec
from ..core.functions import EstimationTarget
from ..core.schemes import CoordinatedScheme, MonotoneSamplingScheme
from ..estimators.base import Estimator
from ..core.integration import piecewise_quad

__all__ = [
    "expected_value",
    "expected_square",
    "variance",
    "MomentReport",
    "moments",
    "monte_carlo_moments",
]


def _breakpoints(
    scheme: MonotoneSamplingScheme, vector: Sequence[float]
) -> Sequence[float]:
    if isinstance(scheme, CoordinatedScheme):
        return scheme.breakpoints_for_vector(vector)
    return ()


def expected_value(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    vector: Sequence[float],
    rtol: float = 1e-8,
    lower: float = 1e-12,
) -> float:
    """Exact ``E[estimate | v]`` by quadrature over the seed."""

    def integrand(u: float) -> float:
        return estimator.estimate_for(scheme, vector, u)

    return piecewise_quad(
        integrand, lower, 1.0, _breakpoints(scheme, vector), rtol=rtol
    )


def expected_square(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    vector: Sequence[float],
    rtol: float = 1e-8,
    lower: float = 1e-12,
) -> float:
    """Exact ``E[estimate^2 | v]`` by quadrature over the seed."""

    def integrand(u: float) -> float:
        value = estimator.estimate_for(scheme, vector, u)
        return value * value

    return piecewise_quad(
        integrand, lower, 1.0, _breakpoints(scheme, vector), rtol=rtol
    )


def variance(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vector: Sequence[float],
    rtol: float = 1e-8,
) -> float:
    """Exact variance assuming unbiasedness: ``E[est^2] − f(v)^2``."""
    square = expected_square(estimator, scheme, vector, rtol=rtol)
    return square - target(vector) ** 2


@dataclass(frozen=True)
class MomentReport:
    """Moments of one estimator on one data vector."""

    estimator: str
    vector: tuple
    true_value: float
    mean: float
    second_moment: float

    @property
    def variance(self) -> float:
        return self.second_moment - self.mean ** 2

    @property
    def variance_if_unbiased(self) -> float:
        return self.second_moment - self.true_value ** 2

    @property
    def bias(self) -> float:
        return self.mean - self.true_value


def moments(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vector: Sequence[float],
    rtol: float = 1e-8,
) -> MomentReport:
    """Exact mean and second moment of ``estimator`` on ``vector``."""
    mean = expected_value(estimator, scheme, vector, rtol=rtol)
    second = expected_square(estimator, scheme, vector, rtol=rtol)
    return MomentReport(
        estimator=estimator.name,
        vector=tuple(float(x) for x in vector),
        true_value=target(vector),
        mean=mean,
        second_moment=second,
    )


def monte_carlo_moments(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vector: Sequence[float],
    replications: int = 2000,
    rng: Optional[np.random.Generator] = None,
    backend: BackendSpec = None,
) -> MomentReport:
    """Monte-Carlo mean and second moment (random seeds).

    ``backend`` follows the shared policy convention (``None`` = the
    process-wide :class:`~repro.api.backend.BackendPolicy`, sized on the
    replication count).  ``"vectorized"`` evaluates all replications in
    one engine batch (raising when no kernel matches); ``"auto"`` falls
    back to the scalar loop.  Both consume the generator stream in the
    same order.
    """
    resolved = BackendPolicy.coerce(backend).resolve(replications)
    rng = rng if rng is not None else np.random.default_rng()
    samples = _moments_batched(estimator, scheme, vector, replications, rng) \
        if resolved != "scalar" else None
    if samples is None:
        if resolved == "vectorized":
            raise ValueError(
                "no vectorized kernel covers this estimator/scheme pair; "
                "use backend='scalar' or backend='auto'"
            )
        samples = np.empty(replications)
        for i in range(replications):
            seed = 1.0 - float(rng.random())  # uniform on (0, 1]
            samples[i] = estimator.estimate_for(scheme, vector, seed)
    return MomentReport(
        estimator=estimator.name,
        vector=tuple(float(x) for x in vector),
        true_value=target(vector),
        mean=float(samples.mean()),
        second_moment=float((samples ** 2).mean()),
    )


def _moments_batched(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    vector: Sequence[float],
    replications: int,
    rng: np.random.Generator,
) -> Optional[np.ndarray]:
    """All replications of one vector through the engine kernel, or None."""
    from ..engine.batch_outcome import BatchOutcome
    from ..engine.kernels import resolve_kernel

    if not isinstance(scheme, CoordinatedScheme):
        return None
    kernel = resolve_kernel(estimator, scheme)
    if kernel is None:
        return None
    seeds = 1.0 - rng.random(replications)
    tiled = np.tile(np.asarray(vector, dtype=float), (replications, 1))
    batch = BatchOutcome.sample_vectors(scheme, tiled, seeds)
    return kernel.estimate_batch(batch)
