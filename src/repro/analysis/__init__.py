"""Analysis utilities: quadrature, exact moments, competitiveness, simulation."""

from .competitiveness import (
    RatioReport,
    TightFamilyTarget,
    competitive_ratio,
    minimal_expected_square,
    ratio_sweep,
    supremum_ratio,
    tight_family_measured_ratio,
    tight_family_problem,
    tight_family_theoretical_ratio,
)
from ..core.integration import integral_of_lb_over_u2, piecewise_quad
from .simulation import EstimateSummary, relative_errors, simulate_sum_estimate
from .variance import (
    MomentReport,
    expected_square,
    expected_value,
    moments,
    monte_carlo_moments,
    variance,
)

__all__ = [
    "RatioReport",
    "TightFamilyTarget",
    "competitive_ratio",
    "minimal_expected_square",
    "ratio_sweep",
    "supremum_ratio",
    "tight_family_measured_ratio",
    "tight_family_problem",
    "tight_family_theoretical_ratio",
    "integral_of_lb_over_u2",
    "piecewise_quad",
    "EstimateSummary",
    "relative_errors",
    "simulate_sum_estimate",
    "MomentReport",
    "expected_square",
    "expected_value",
    "moments",
    "monte_carlo_moments",
    "variance",
]
