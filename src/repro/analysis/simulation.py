"""Monte-Carlo simulation harness for estimator experiments.

The analytical moments in :mod:`repro.analysis.variance` integrate over
the seed for a *single* item.  The experiments of Section 7 operate on sum
aggregates over many items, where each item carries its own independent
seed; those are simulated here.  The harness draws seeds, samples the
dataset, applies a per-item estimator, sums, and reports the error
distribution over replications — which is exactly the procedure a
practitioner using coordinated samples would follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..api.backend import BackendPolicy, BackendSpec
from ..core.functions import EstimationTarget
from ..core.schemes import MonotoneSamplingScheme
from ..estimators.base import Estimator

__all__ = ["EstimateSummary", "simulate_sum_estimate", "relative_errors"]


@dataclass(frozen=True)
class EstimateSummary:
    """Error statistics of repeated sum-aggregate estimation."""

    estimator: str
    true_value: float
    estimates: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.estimates.mean())

    @property
    def bias(self) -> float:
        return self.mean - self.true_value

    @property
    def variance(self) -> float:
        return float(self.estimates.var(ddof=0))

    @property
    def rmse(self) -> float:
        return float(np.sqrt(np.mean((self.estimates - self.true_value) ** 2)))

    @property
    def mean_relative_error(self) -> float:
        if self.true_value == 0:
            return float("nan")
        return float(
            np.mean(np.abs(self.estimates - self.true_value)) / self.true_value
        )

    def describe(self) -> Dict[str, float]:
        return {
            "true": self.true_value,
            "mean": self.mean,
            "bias": self.bias,
            "variance": self.variance,
            "rmse": self.rmse,
            "mean_relative_error": self.mean_relative_error,
        }


def simulate_sum_estimate(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    tuples: Sequence[Sequence[float]],
    replications: int = 200,
    rng: Optional[np.random.Generator] = None,
    backend: BackendSpec = None,
    seeds: Optional[np.ndarray] = None,
) -> EstimateSummary:
    """Repeatedly estimate ``sum_k f(v^(k))`` from coordinated samples.

    Each replication draws an independent seed per item (tuple), samples
    every tuple with its seed, applies the per-item estimator and sums.
    The per-item unbiasedness of the estimator makes the sum estimate
    unbiased, and independence across items makes its variance the sum of
    the per-item variances — both facts are checked by the tests.

    ``seeds`` (shape ``(replications, len(tuples))``, values in (0, 1])
    supplies every replication's per-item seeds explicitly instead of
    drawing them from ``rng`` — callers that need replication-addressable
    randomness (e.g. the experiment runner's shard-invariant seeding)
    precompute one row per replication and batch them through a single
    call.  Both backends consume the same given seeds, so the estimates
    still agree across backends.

    ``backend`` is ``None`` (process-wide
    :class:`~repro.api.backend.BackendPolicy`, auto-dispatching on the
    replication × item grid size), a mode string, or a policy.
    ``"vectorized"`` batches the grid through the engine kernel matching
    ``estimator`` (raising when none exists); ``"auto"`` falls back to
    the scalar loop instead of raising.  The vectorized path consumes the
    generator stream in the same order as the scalar loop, so both
    backends see identical seeds.  Kernel coverage includes coordinated
    PPS schemes with a shared non-unit rate (resolved to the rescaled
    unit kernels), which is how the E9 experiment's scaled samplers batch
    through here.
    """
    policy = BackendPolicy.coerce(backend)
    rng = rng if rng is not None else np.random.default_rng()
    vectors = [tuple(float(x) for x in t) for t in tuples]
    true_value = sum(target(v) for v in vectors)
    if seeds is not None:
        seeds = np.asarray(seeds, dtype=float)
        if seeds.shape != (replications, len(vectors)):
            raise ValueError(
                f"seeds must have shape ({replications}, {len(vectors)}), "
                f"got {seeds.shape}"
            )
    totals = np.empty(replications)
    resolved = policy.resolve(replications * len(vectors))
    if resolved != "scalar" and vectors:
        batched = _simulate_batched(
            estimator, scheme, vectors, replications, rng, seeds=seeds
        )
        if batched is not None:
            return EstimateSummary(
                estimator=estimator.name, true_value=true_value, estimates=batched
            )
        if resolved == "vectorized":
            raise ValueError(
                "no vectorized kernel covers this estimator/scheme pair; "
                "use backend='scalar' or backend='auto'"
            )
    for rep in range(replications):
        total = 0.0
        rep_seeds = (
            seeds[rep] if seeds is not None else 1.0 - rng.random(len(vectors))
        )
        for vector, seed in zip(vectors, rep_seeds):
            total += estimator.estimate_for(scheme, vector, float(seed))
        totals[rep] = total
    return EstimateSummary(
        estimator=estimator.name, true_value=true_value, estimates=totals
    )


def _simulate_batched(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    vectors: Sequence[Sequence[float]],
    replications: int,
    rng: np.random.Generator,
    seeds: Optional[np.ndarray] = None,
    max_block_items: int = 1 << 20,
) -> Optional[np.ndarray]:
    """Replications × items through the engine kernel, or ``None``.

    Replications are processed in blocks so the working set stays bounded
    no matter how large the grid is.  Empty outcomes (items sampled in no
    instance — the common case at low sampling rates) are dropped before
    the value matrix is materialised and contribute exact zeros to the
    per-replication sums, so the kernel arithmetic scales with the
    *sample*, not the grid.  Engine imports are local to keep the
    analysis layer usable without it.
    """
    from ..core.schemes import CoordinatedScheme
    from ..engine.batch_outcome import BatchOutcome
    from ..engine.kernels import resolve_kernel

    if not isinstance(scheme, CoordinatedScheme):
        return None
    kernel = resolve_kernel(estimator, scheme)
    if kernel is None:
        return None
    matrix = np.asarray(vectors, dtype=float)
    n = matrix.shape[0]
    block = max(1, max_block_items // max(1, n))
    totals = np.empty(replications)
    for start in range(0, replications, block):
        reps = min(block, replications - start)
        if seeds is not None:
            block_seeds = seeds[start : start + reps]
        else:
            block_seeds = 1.0 - rng.random((reps, n))
        tiled = np.broadcast_to(matrix, (reps, n, matrix.shape[1]))
        batch, retained = BatchOutcome.sample_vectors_sparse(
            scheme, tiled.reshape(reps * n, -1), block_seeds.reshape(-1)
        )
        estimates = np.zeros(reps * n)
        estimates[retained] = kernel.estimate_batch(batch)
        totals[start : start + reps] = estimates.reshape(reps, n).sum(axis=1)
    return totals


def relative_errors(summaries: Sequence[EstimateSummary]) -> Dict[str, float]:
    """Mean relative error per estimator name (for compact reports)."""
    return {s.estimator: s.mean_relative_error for s in summaries}
