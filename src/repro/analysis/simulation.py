"""Monte-Carlo simulation harness for estimator experiments.

The analytical moments in :mod:`repro.analysis.variance` integrate over
the seed for a *single* item.  The experiments of Section 7 operate on sum
aggregates over many items, where each item carries its own independent
seed; those are simulated here.  The harness draws seeds, samples the
dataset, applies a per-item estimator, sums, and reports the error
distribution over replications — which is exactly the procedure a
practitioner using coordinated samples would follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.functions import EstimationTarget
from ..core.schemes import MonotoneSamplingScheme
from ..estimators.base import Estimator

__all__ = ["EstimateSummary", "simulate_sum_estimate", "relative_errors"]


@dataclass(frozen=True)
class EstimateSummary:
    """Error statistics of repeated sum-aggregate estimation."""

    estimator: str
    true_value: float
    estimates: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.estimates.mean())

    @property
    def bias(self) -> float:
        return self.mean - self.true_value

    @property
    def variance(self) -> float:
        return float(self.estimates.var(ddof=0))

    @property
    def rmse(self) -> float:
        return float(np.sqrt(np.mean((self.estimates - self.true_value) ** 2)))

    @property
    def mean_relative_error(self) -> float:
        if self.true_value == 0:
            return float("nan")
        return float(
            np.mean(np.abs(self.estimates - self.true_value)) / self.true_value
        )

    def describe(self) -> Dict[str, float]:
        return {
            "true": self.true_value,
            "mean": self.mean,
            "bias": self.bias,
            "variance": self.variance,
            "rmse": self.rmse,
            "mean_relative_error": self.mean_relative_error,
        }


def simulate_sum_estimate(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    tuples: Sequence[Sequence[float]],
    replications: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> EstimateSummary:
    """Repeatedly estimate ``sum_k f(v^(k))`` from coordinated samples.

    Each replication draws an independent seed per item (tuple), samples
    every tuple with its seed, applies the per-item estimator and sums.
    The per-item unbiasedness of the estimator makes the sum estimate
    unbiased, and independence across items makes its variance the sum of
    the per-item variances — both facts are checked by the tests.
    """
    rng = rng if rng is not None else np.random.default_rng()
    vectors = [tuple(float(x) for x in t) for t in tuples]
    true_value = sum(target(v) for v in vectors)
    totals = np.empty(replications)
    for rep in range(replications):
        total = 0.0
        seeds = 1.0 - rng.random(len(vectors))
        for vector, seed in zip(vectors, seeds):
            total += estimator.estimate_for(scheme, vector, float(seed))
        totals[rep] = total
    return EstimateSummary(
        estimator=estimator.name, true_value=true_value, estimates=totals
    )


def relative_errors(summaries: Sequence[EstimateSummary]) -> Dict[str, float]:
    """Mean relative error per estimator name (for compact reports)."""
    return {s.estimator: s.mean_relative_error for s in summaries}
