"""Deprecated query helpers — thin shims over the ``repro.api`` facade.

The exact query implementations live in :mod:`repro.aggregates.exact` and
are addressable by name through the query registry; the supported entry
point is the session facade::

    from repro.api import EstimationSession

    EstimationSession().query("lpp", dataset, p=2.0, selection=keys)

The helpers below keep the original call signatures for backwards
compatibility.  Each one emits a :class:`DeprecationWarning` and delegates
to a session, so the facade's backend policy governs scalar/vectorized
dispatch: ``backend=None`` (the new default) auto-selects by dataset
size, while the explicit ``"scalar"`` / ``"vectorized"`` strings behave
exactly as before.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Optional, Sequence, Tuple

from ..api.backend import BackendSpec
from ..core.functions import EstimationTarget
from .dataset import ItemKey, MultiInstanceDataset
from .exact import target_values_batch

__all__ = [
    "sum_aggregate",
    "lp_difference",
    "lpp_difference",
    "lpp_plus",
    "distinct_count",
    "jaccard_similarity",
    "weighted_jaccard",
    "custom_query",
    "target_values_batch",
]


def _delegate(helper: str, query: str, dataset: MultiInstanceDataset,
              backend: BackendSpec, **kwargs) -> float:
    """Warn once per call site and run ``query`` through a session."""
    from ..api.session import EstimationSession

    warnings.warn(
        f"repro.aggregates.queries.{helper} is deprecated; use "
        f"EstimationSession().query({query!r}, dataset, ...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return EstimationSession(backend=backend).query(query, dataset, **kwargs).value


def sum_aggregate(
    dataset: MultiInstanceDataset,
    item_function: Callable[..., float],
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("sum", dataset, item_function=...)``."""
    return _delegate("sum_aggregate", "sum", dataset, backend,
                     item_function=item_function, selection=selection)


def lpp_difference(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("lpp", dataset, p=...)``."""
    return _delegate("lpp_difference", "lpp", dataset, backend,
                     p=p, instances=instances, selection=selection)


def lp_difference(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("lp", dataset, p=...)``."""
    return _delegate("lp_difference", "lp", dataset, backend,
                     p=p, instances=instances, selection=selection)


def lpp_plus(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("lpp_plus", dataset, p=...)``."""
    return _delegate("lpp_plus", "lpp_plus", dataset, backend,
                     p=p, instances=instances, selection=selection)


def distinct_count(
    dataset: MultiInstanceDataset,
    instances: Optional[Sequence[int]] = None,
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("distinct", dataset, ...)``."""
    return _delegate("distinct_count", "distinct", dataset, backend,
                     instances=instances, selection=selection)


def jaccard_similarity(
    dataset: MultiInstanceDataset,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("jaccard", dataset, ...)``."""
    return _delegate("jaccard_similarity", "jaccard", dataset, backend,
                     instances=instances, selection=selection)


def weighted_jaccard(
    dataset: MultiInstanceDataset,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("weighted_jaccard", dataset, ...)``."""
    return _delegate("weighted_jaccard", "weighted_jaccard", dataset, backend,
                     instances=instances, selection=selection)


def custom_query(
    dataset: MultiInstanceDataset,
    target: EstimationTarget,
    instances: Optional[Sequence[int]] = None,
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Deprecated: ``session.query("custom", dataset, target=...)``."""
    return _delegate("custom_query", "custom", dataset, backend,
                     target=target, instances=instances, selection=selection)
