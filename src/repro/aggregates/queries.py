"""Exact evaluation of the paper's queries over multi-instance datasets.

These are the ground-truth values against which the sampled estimates are
compared: ``L_p`` differences, their ``p``-th powers ``L_p^p``, the
one-sided ``L_p^p+``, distinct counts, Jaccard-style similarity, and
arbitrary sum aggregates of a user-supplied tuple function.  Example 1 of
the paper (reproduced by experiment E1 and its benchmark) is simply these
functions applied to the small hand-written dataset.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from ..core.functions import EstimationTarget
from .dataset import ItemKey, MultiInstanceDataset

__all__ = [
    "sum_aggregate",
    "lp_difference",
    "lpp_difference",
    "lpp_plus",
    "distinct_count",
    "jaccard_similarity",
    "weighted_jaccard",
    "custom_query",
]


def sum_aggregate(
    dataset: MultiInstanceDataset,
    item_function: Callable[[Tuple[float, ...]], float],
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """``sum_{items} g(tuple)`` over the dataset (optionally a selection)."""
    return sum(
        float(item_function(tup)) for _, tup in dataset.iter_items(selection)
    )


def lpp_difference(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """``L_p^p`` difference between two instances: ``sum |v_i - v_j|^p``."""
    i, j = instances

    def item(tup: Tuple[float, ...]) -> float:
        return abs(tup[i] - tup[j]) ** p

    return sum_aggregate(dataset, item, selection)


def lp_difference(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """``L_p`` difference, the ``p``-th root of :func:`lpp_difference`."""
    return lpp_difference(dataset, p, instances, selection) ** (1.0 / p)


def lpp_plus(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """One-sided (increase-only) difference ``sum max(0, v_i - v_j)^p``."""
    i, j = instances

    def item(tup: Tuple[float, ...]) -> float:
        return max(0.0, tup[i] - tup[j]) ** p

    return sum_aggregate(dataset, item, selection)


def distinct_count(
    dataset: MultiInstanceDataset,
    instances: Optional[Sequence[int]] = None,
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """Number of items positive in at least one of the given instances."""
    idx = tuple(instances) if instances is not None else tuple(
        range(dataset.num_instances)
    )

    def item(tup: Tuple[float, ...]) -> float:
        return 1.0 if any(tup[i] > 0 for i in idx) else 0.0

    return sum_aggregate(dataset, item, selection)


def jaccard_similarity(
    dataset: MultiInstanceDataset,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """Set Jaccard similarity of the supports of two instances."""
    i, j = instances
    intersection = 0.0
    union = 0.0
    for _, tup in dataset.iter_items(selection):
        a, b = tup[i] > 0, tup[j] > 0
        if a and b:
            intersection += 1.0
        if a or b:
            union += 1.0
    return intersection / union if union > 0 else 1.0


def weighted_jaccard(
    dataset: MultiInstanceDataset,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """Weighted Jaccard: ``sum min(v_i, v_j) / sum max(v_i, v_j)``."""
    i, j = instances
    numerator = 0.0
    denominator = 0.0
    for _, tup in dataset.iter_items(selection):
        numerator += min(tup[i], tup[j])
        denominator += max(tup[i], tup[j])
    return numerator / denominator if denominator > 0 else 1.0


def custom_query(
    dataset: MultiInstanceDataset,
    target: EstimationTarget,
    instances: Optional[Sequence[int]] = None,
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """Sum aggregate of an :class:`EstimationTarget` over item tuples.

    ``instances`` selects and orders the columns fed to the target; by
    default the full tuple is used.  This is the exact counterpart of the
    sampled estimation pipeline (same target object on both sides), so
    experiments compare like with like.
    """
    idx = tuple(instances) if instances is not None else tuple(
        range(dataset.num_instances)
    )

    def item(tup: Tuple[float, ...]) -> float:
        return target(tuple(tup[i] for i in idx))

    return sum_aggregate(dataset, item, selection)
