"""Sum-aggregate estimation over coordinated samples of multi-instance data.

Exact (ground-truth) query implementations live in
:mod:`repro.aggregates.exact` and self-register into the
:mod:`repro.api` query registry; the same-named helpers re-exported here
from :mod:`repro.aggregates.queries` are deprecation shims that delegate
to the session facade.
"""

from . import exact
from .coordinated import CoordinatedPPSSampler, CoordinatedSample, InstanceSample
from .dataset import MultiInstanceDataset, example1_dataset
from .queries import (
    custom_query,
    distinct_count,
    jaccard_similarity,
    lp_difference,
    lpp_difference,
    lpp_plus,
    sum_aggregate,
    target_values_batch,
    weighted_jaccard,
)
from .sum_estimator import (
    ItemEstimate,
    SumAggregateEstimator,
    SumEstimate,
    estimate_lp,
    estimate_lpp,
    estimate_lpp_plus,
)

__all__ = [
    "CoordinatedPPSSampler",
    "CoordinatedSample",
    "InstanceSample",
    "MultiInstanceDataset",
    "example1_dataset",
    "custom_query",
    "distinct_count",
    "jaccard_similarity",
    "lp_difference",
    "lpp_difference",
    "lpp_plus",
    "sum_aggregate",
    "target_values_batch",
    "weighted_jaccard",
    "ItemEstimate",
    "SumAggregateEstimator",
    "SumEstimate",
    "estimate_lp",
    "estimate_lpp",
    "estimate_lpp_plus",
]
