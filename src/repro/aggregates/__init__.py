"""Sum-aggregate estimation over coordinated samples of multi-instance data."""

from .coordinated import CoordinatedPPSSampler, CoordinatedSample, InstanceSample
from .dataset import MultiInstanceDataset, example1_dataset
from .queries import (
    custom_query,
    distinct_count,
    jaccard_similarity,
    lp_difference,
    lpp_difference,
    lpp_plus,
    sum_aggregate,
    target_values_batch,
    weighted_jaccard,
)
from .sum_estimator import (
    ItemEstimate,
    SumAggregateEstimator,
    SumEstimate,
    estimate_lp,
    estimate_lpp,
    estimate_lpp_plus,
)

__all__ = [
    "CoordinatedPPSSampler",
    "CoordinatedSample",
    "InstanceSample",
    "MultiInstanceDataset",
    "example1_dataset",
    "custom_query",
    "distinct_count",
    "jaccard_similarity",
    "lp_difference",
    "lpp_difference",
    "lpp_plus",
    "sum_aggregate",
    "target_values_batch",
    "weighted_jaccard",
    "ItemEstimate",
    "SumAggregateEstimator",
    "SumEstimate",
    "estimate_lp",
    "estimate_lpp",
    "estimate_lpp_plus",
]
