"""Exact evaluation of the paper's queries over multi-instance datasets.

These are the ground-truth values against which the sampled estimates are
compared: ``L_p`` differences, their ``p``-th powers ``L_p^p``, the
one-sided ``L_p^p+``, distinct counts, Jaccard-style similarity, and
arbitrary sum aggregates of a user-supplied tuple function.  Example 1 of
the paper (reproduced by experiment E1 and its benchmark) is simply these
functions applied to the small hand-written dataset.

Every evaluator accepts a ``backend`` argument.  ``"scalar"`` (the
reference path) folds a Python function over ``iter_items``;
``"vectorized"`` evaluates the same query as NumPy expressions over the
dataset's dense :meth:`~repro.aggregates.dataset.MultiInstanceDataset
.weight_matrix`, which is what makes exact ground truth affordable on the
million-item workloads the batch engine targets.  Both paths produce the
same values (up to float summation order; see the parity tests).

This module holds the implementations and registers each query in the
:mod:`repro.api` query registry (``"lp"``, ``"lpp"``, ``"lpp_plus"``,
``"distinct"``, ``"jaccard"``, ``"weighted_jaccard"``, ``"custom"``,
``"sum"``); the session facade — ``session.query("lpp", dataset, p=2)``
— is the supported entry point, with the helpers of
:mod:`repro.aggregates.queries` kept as deprecation shims.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..api.registry import register_query
from ..core.functions import (
    AbsoluteCombination,
    DistinctOr,
    EstimationTarget,
    ExponentiatedRange,
    MaxPower,
    MinPower,
    OneSidedRange,
    WeightedSum,
)
from .dataset import ItemKey, MultiInstanceDataset

__all__ = [
    "sum_aggregate",
    "lp_difference",
    "lpp_difference",
    "lpp_plus",
    "distinct_count",
    "jaccard_similarity",
    "weighted_jaccard",
    "custom_query",
    "target_values_batch",
]

_BACKENDS = ("scalar", "vectorized")


def _check_backend(backend: str) -> None:
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")


def sum_aggregate(
    dataset: MultiInstanceDataset,
    item_function: Callable[..., float],
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """``sum_{items} g(tuple)`` over the dataset (optionally a selection).

    With ``backend="vectorized"``, ``item_function`` receives the dense
    ``(items, instances)`` weight matrix once and must return one value
    per row — the contract the built-in query helpers use internally.
    """
    _check_backend(backend)
    if backend == "vectorized":
        _, matrix = dataset.weight_matrix(selection)
        values = np.asarray(item_function(matrix), dtype=float)
        if values.shape != (matrix.shape[0],):
            raise ValueError(
                "a vectorized item_function must return one value per item, "
                f"got shape {values.shape} for {matrix.shape[0]} items"
            )
        return float(values.sum())
    return sum(
        float(item_function(tup)) for _, tup in dataset.iter_items(selection)
    )


def lpp_difference(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """``L_p^p`` difference between two instances: ``sum |v_i - v_j|^p``."""
    _check_backend(backend)
    i, j = instances
    if backend == "vectorized":
        _, matrix = dataset.weight_matrix(selection)
        return float(np.sum(np.abs(matrix[:, i] - matrix[:, j]) ** p))

    def item(tup: Tuple[float, ...]) -> float:
        return abs(tup[i] - tup[j]) ** p

    return sum_aggregate(dataset, item, selection)


def lp_difference(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """``L_p`` difference, the ``p``-th root of :func:`lpp_difference`."""
    return lpp_difference(dataset, p, instances, selection, backend) ** (1.0 / p)


def lpp_plus(
    dataset: MultiInstanceDataset,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """One-sided (increase-only) difference ``sum max(0, v_i - v_j)^p``."""
    _check_backend(backend)
    i, j = instances
    if backend == "vectorized":
        _, matrix = dataset.weight_matrix(selection)
        return float(np.sum(np.maximum(0.0, matrix[:, i] - matrix[:, j]) ** p))

    def item(tup: Tuple[float, ...]) -> float:
        return max(0.0, tup[i] - tup[j]) ** p

    return sum_aggregate(dataset, item, selection)


def distinct_count(
    dataset: MultiInstanceDataset,
    instances: Optional[Sequence[int]] = None,
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """Number of items positive in at least one of the given instances."""
    _check_backend(backend)
    idx = tuple(instances) if instances is not None else tuple(
        range(dataset.num_instances)
    )
    if backend == "vectorized":
        _, matrix = dataset.weight_matrix(selection)
        return float(np.count_nonzero((matrix[:, idx] > 0).any(axis=1)))

    def item(tup: Tuple[float, ...]) -> float:
        return 1.0 if any(tup[i] > 0 for i in idx) else 0.0

    return sum_aggregate(dataset, item, selection)


def jaccard_similarity(
    dataset: MultiInstanceDataset,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """Set Jaccard similarity of the supports of two instances."""
    _check_backend(backend)
    i, j = instances
    if backend == "vectorized":
        _, matrix = dataset.weight_matrix(selection)
        a = matrix[:, i] > 0
        b = matrix[:, j] > 0
        union = float(np.count_nonzero(a | b))
        intersection = float(np.count_nonzero(a & b))
        return intersection / union if union > 0 else 1.0
    intersection = 0.0
    union = 0.0
    for _, tup in dataset.iter_items(selection):
        a, b = tup[i] > 0, tup[j] > 0
        if a and b:
            intersection += 1.0
        if a or b:
            union += 1.0
    return intersection / union if union > 0 else 1.0


def weighted_jaccard(
    dataset: MultiInstanceDataset,
    instances: Tuple[int, int] = (0, 1),
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """Weighted Jaccard: ``sum min(v_i, v_j) / sum max(v_i, v_j)``."""
    _check_backend(backend)
    i, j = instances
    if backend == "vectorized":
        _, matrix = dataset.weight_matrix(selection)
        numerator = float(np.minimum(matrix[:, i], matrix[:, j]).sum())
        denominator = float(np.maximum(matrix[:, i], matrix[:, j]).sum())
        return numerator / denominator if denominator > 0 else 1.0
    numerator = 0.0
    denominator = 0.0
    for _, tup in dataset.iter_items(selection):
        numerator += min(tup[i], tup[j])
        denominator += max(tup[i], tup[j])
    return numerator / denominator if denominator > 0 else 1.0


def target_values_batch(
    target: EstimationTarget, matrix: np.ndarray
) -> np.ndarray:
    """Evaluate ``target`` on every row of a weight matrix.

    The paper's standard targets have direct NumPy translations; anything
    else is evaluated row by row (still correct, merely not vectorized).
    """
    matrix = np.asarray(matrix, dtype=float)
    if isinstance(target, OneSidedRange):
        if matrix.shape[1] != 2:
            raise ValueError("RG_p+ is defined for two-entry tuples")
        return np.maximum(0.0, matrix[:, 0] - matrix[:, 1]) ** target.p
    if isinstance(target, ExponentiatedRange):
        return (matrix.max(axis=1) - matrix.min(axis=1)) ** target.p
    if isinstance(target, AbsoluteCombination):
        coeffs = np.asarray(target.coefficients)
        return np.abs(matrix @ coeffs) ** target.p
    if isinstance(target, WeightedSum):
        return matrix @ np.asarray(target.weights)
    if isinstance(target, DistinctOr):
        return (matrix > 0).any(axis=1).astype(float)
    if isinstance(target, MaxPower):
        return matrix.max(axis=1) ** target.p
    if isinstance(target, MinPower):
        return matrix.min(axis=1) ** target.p
    return np.asarray([float(target(tuple(row))) for row in matrix])


def custom_query(
    dataset: MultiInstanceDataset,
    target: EstimationTarget,
    instances: Optional[Sequence[int]] = None,
    selection: Optional[Iterable[ItemKey]] = None,
    backend: str = "scalar",
) -> float:
    """Sum aggregate of an :class:`EstimationTarget` over item tuples.

    ``instances`` selects and orders the columns fed to the target; by
    default the full tuple is used.  This is the exact counterpart of the
    sampled estimation pipeline (same target object on both sides), so
    experiments compare like with like.
    """
    _check_backend(backend)
    idx = tuple(instances) if instances is not None else tuple(
        range(dataset.num_instances)
    )
    if backend == "vectorized":
        _, matrix = dataset.weight_matrix(selection, instances=idx)
        return float(target_values_batch(target, matrix).sum())

    def item(tup: Tuple[float, ...]) -> float:
        return target(tuple(tup[i] for i in idx))

    return sum_aggregate(dataset, item, selection)


# ----------------------------------------------------------------------
# Registry wiring: every exact query is addressable through the facade.
# ----------------------------------------------------------------------
# The two backends of ``sum_aggregate`` hand ``item_function`` different
# inputs (per-item tuple vs. the dense matrix), so the facade must never
# switch its backend implicitly: under an "auto" policy it stays scalar
# and only an explicit backend="vectorized" opts into the matrix
# contract.  Custom queries with the same property can set this flag too.
sum_aggregate.explicit_backend_only = True  # type: ignore[attr-defined]

register_query("sum", sum_aggregate)
register_query("lp", lp_difference)
register_query("lpp", lpp_difference)
register_query("lpp_plus", lpp_plus)
register_query("distinct", distinct_count)
register_query("jaccard", jaccard_similarity)
register_query("weighted_jaccard", weighted_jaccard)
register_query("custom", custom_query)
