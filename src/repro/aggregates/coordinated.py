"""Coordinated shared-seed PPS sampling of whole multi-instance datasets.

This is the data-pipeline side of the paper: every item receives one seed
(hashed from its key or drawn by a generator), every instance applies its
own PPS threshold to that shared seed, and the per-item projection of the
result is exactly the monotone sampling scheme that the estimators of
:mod:`repro.estimators` expect.  The classes here carry out the sampling,
store the (small) per-instance samples, and reassemble per-item outcomes
for the estimation stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.outcome import Outcome
from ..core.schemes import CoordinatedScheme, LinearThreshold
from ..core.seeds import SeedAssigner
from .dataset import ItemKey, MultiInstanceDataset

__all__ = [
    "InstanceSample",
    "CoordinatedSample",
    "CoordinatedPPSSampler",
]


@dataclass(frozen=True)
class InstanceSample:
    """The PPS sample of one instance: the items whose weight crossed the bar."""

    instance: str
    tau_star: float
    entries: Dict[ItemKey, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: ItemKey) -> bool:
        return key in self.entries

    def weight(self, key: ItemKey) -> Optional[float]:
        return self.entries.get(key)


class CoordinatedSample:
    """The coordinated samples of all instances plus the per-item seeds.

    Seeds are retained for every item that appears in at least one sample
    (that is all the estimator needs: items sampled nowhere contribute a
    zero estimate for the zero-revealing targets used in the paper, and
    their seeds are reproducible from the hash anyway).
    """

    def __init__(
        self,
        scheme: CoordinatedScheme,
        instance_samples: Sequence[InstanceSample],
        seeds: Mapping[ItemKey, float],
    ) -> None:
        self._scheme = scheme
        self._instances = tuple(instance_samples)
        self._seeds = dict(seeds)

    @classmethod
    def from_instance_samples(
        cls,
        instance_samples: Sequence[InstanceSample],
        seeds: Mapping[ItemKey, float],
    ) -> "CoordinatedSample":
        """Assemble a coordinated sample from per-instance PPS samples.

        The scheme is reconstructed from each sample's ``tau_star`` (the
        linear PPS thresholds), so samples drawn independently — e.g. by
        the sketch-serving layer, one per key-group — can be re-entered
        into the estimation pipeline as long as they shared the per-item
        seed assignment.  ``seeds`` must cover every item retained by any
        of the samples.
        """
        if not instance_samples:
            raise ValueError("at least one instance sample is required")
        scheme = CoordinatedScheme(
            [LinearThreshold(s.tau_star) for s in instance_samples]
        )
        retained = set()
        for sample in instance_samples:
            retained.update(sample.entries)
        missing = [key for key in retained if key not in seeds]
        if missing:
            raise ValueError(
                f"seeds missing for {len(missing)} retained item(s), "
                f"e.g. {sorted(missing, key=repr)[:3]!r}"
            )
        kept = {key: float(seeds[key]) for key in retained}
        return cls(scheme, tuple(instance_samples), kept)

    @property
    def scheme(self) -> CoordinatedScheme:
        return self._scheme

    @property
    def instance_samples(self) -> Tuple[InstanceSample, ...]:
        return self._instances

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    def seed_of(self, key: ItemKey) -> Optional[float]:
        return self._seeds.get(key)

    def sampled_items(self) -> Tuple[ItemKey, ...]:
        """Items present in at least one instance sample."""
        keys = set()
        for sample in self._instances:
            keys.update(sample.entries.keys())
        return tuple(sorted(keys, key=repr))

    def storage_size(self) -> int:
        """Total number of (item, instance) entries retained — the
        footprint a deployment would actually pay for."""
        return sum(len(s) for s in self._instances)

    def outcome_for(self, key: ItemKey, instances: Optional[Sequence[int]] = None) -> Outcome:
        """Reassemble the per-item monotone-sampling outcome for ``key``.

        ``instances`` optionally selects (and orders) the instances that
        make up the tuple, matching the target function's arity; by
        default all instances are used.
        """
        seed = self._seeds.get(key)
        if seed is None:
            raise KeyError(
                f"item {key!r} has no recorded seed; it was not sampled anywhere"
            )
        idx = tuple(instances) if instances is not None else tuple(
            range(self.num_instances)
        )
        values = tuple(self._instances[i].entries.get(key) for i in idx)
        scheme = self._scheme if instances is None else CoordinatedScheme(
            [self._scheme.thresholds[i] for i in idx]
        )
        return Outcome(seed=seed, values=values, scheme=scheme)


class CoordinatedPPSSampler:
    """Shared-seed PPS sampler over a :class:`MultiInstanceDataset`.

    Parameters
    ----------
    tau_star:
        Per-instance PPS rates.  Entry ``i`` of an item is included in
        instance ``i``'s sample when ``weight >= seed * tau_star[i]``, so
        its inclusion probability is ``min(1, weight / tau_star[i])`` —
        larger ``tau_star`` means a smaller (cheaper) sample.
    salt:
        Salt mixed into the item-key hash when deterministic (hashed)
        seeds are used.
    """

    def __init__(self, tau_star: Sequence[float], salt: str = "") -> None:
        rates = tuple(float(t) for t in tau_star)
        if not rates or any(t <= 0 for t in rates):
            raise ValueError("tau_star must be positive for every instance")
        self._rates = rates
        self._salt = salt
        self._scheme = CoordinatedScheme([LinearThreshold(t) for t in rates])

    @property
    def scheme(self) -> CoordinatedScheme:
        return self._scheme

    @property
    def tau_star(self) -> Tuple[float, ...]:
        return self._rates

    @classmethod
    def for_expected_sample_size(
        cls,
        dataset: MultiInstanceDataset,
        expected_size: float,
        salt: str = "",
    ) -> "CoordinatedPPSSampler":
        """Pick per-instance rates so each sample has the requested
        expected number of items (PPS inclusion probabilities sum to it)."""
        rates = []
        for i in range(dataset.num_instances):
            total = dataset.total_weight(i)
            if total <= 0:
                rates.append(1.0)
            else:
                rates.append(max(total / expected_size, 1e-12))
        return cls(rates, salt=salt)

    def sample(
        self,
        dataset: MultiInstanceDataset,
        rng: Optional[np.random.Generator] = None,
        seeds: Optional[Mapping[ItemKey, float]] = None,
    ) -> CoordinatedSample:
        """Sample every instance of ``dataset`` with shared per-item seeds.

        Seeds come from (in order of precedence) the explicit ``seeds``
        mapping, the random generator ``rng`` (independent replications in
        experiments), or a deterministic hash of the item key.
        """
        if dataset.num_instances != len(self._rates):
            raise ValueError(
                "dataset and sampler disagree on the number of instances"
            )
        assigner = (
            SeedAssigner(salt=self._salt)
            if rng is None
            else SeedAssigner(rng=rng)
        )
        per_instance: List[Dict[ItemKey, float]] = [
            {} for _ in range(dataset.num_instances)
        ]
        kept_seeds: Dict[ItemKey, float] = {}
        for key, tup in dataset.iter_items():
            if seeds is not None and key in seeds:
                seed = float(seeds[key])
            else:
                seed = assigner.seed_for(key)
            sampled_somewhere = False
            for i, weight in enumerate(tup):
                if weight >= seed * self._rates[i] and weight > 0:
                    per_instance[i][key] = weight
                    sampled_somewhere = True
            if sampled_somewhere:
                kept_seeds[key] = seed
        samples = [
            InstanceSample(
                instance=dataset.instance_names[i],
                tau_star=self._rates[i],
                entries=per_instance[i],
            )
            for i in range(dataset.num_instances)
        ]
        return CoordinatedSample(self._scheme, samples, kept_seeds)
