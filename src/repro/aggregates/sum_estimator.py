"""Sum-aggregate estimation from coordinated samples.

This is the end-to-end pipeline the paper motivates: a query such as
``L_p^p(H) = sum_{k in H} |v1_k - v2_k|^p`` is estimated by applying a
per-item (monotone-estimation) estimator to the outcome of every item and
summing.  Per-item unbiasedness makes the sum unbiased; per-item
independence of the seeds makes the variance of the sum the sum of the
per-item variances, so the relative error shrinks as the query selects
more items.

Only items that appear in at least one instance sample can contribute a
nonzero estimate for the zero-revealing targets used here (``RG_p``,
``RG_p+``, OR, ...): an item sampled nowhere has a lower-bound function
that is identically zero, and every in-range estimator returns 0 on it.
The estimator classes below therefore iterate over the retained sample
only, which is what makes the whole pipeline sublinear in the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.functions import EstimationTarget, ExponentiatedRange, OneSidedRange
from ..estimators.base import Estimator
from ..estimators.lstar import LStarEstimator
from .coordinated import CoordinatedSample
from .dataset import ItemKey

__all__ = [
    "ItemEstimate",
    "SumEstimate",
    "SumAggregateEstimator",
    "estimate_lpp",
    "estimate_lp",
    "estimate_lpp_plus",
]


@dataclass(frozen=True)
class ItemEstimate:
    """The per-item contribution to a sum estimate (for diagnostics)."""

    key: ItemKey
    seed: float
    estimate: float


@dataclass(frozen=True)
class SumEstimate:
    """A sum-aggregate estimate with its per-item breakdown."""

    value: float
    items: Tuple[ItemEstimate, ...]
    estimator: str

    @property
    def contributing_items(self) -> int:
        """Number of items with a nonzero contribution."""
        return sum(1 for item in self.items if item.estimate != 0.0)


class SumAggregateEstimator:
    """Estimate ``sum_k f(v^(k))`` over selected items of a coordinated sample.

    Parameters
    ----------
    target:
        The per-item function ``f`` being aggregated.
    estimator:
        The per-item estimator; defaults to the generic L* estimator for
        ``target`` (the paper's recommended default, being admissible,
        monotone and 4-competitive).
    instances:
        Which instances (and in which order) form the tuple passed to
        ``target``; defaults to all instances of the sample.
    """

    def __init__(
        self,
        target: EstimationTarget,
        estimator: Optional[Estimator] = None,
        instances: Optional[Sequence[int]] = None,
    ) -> None:
        self._target = target
        self._estimator = estimator if estimator is not None else LStarEstimator(target)
        self._instances = tuple(instances) if instances is not None else None

    @property
    def target(self) -> EstimationTarget:
        return self._target

    @property
    def estimator(self) -> Estimator:
        return self._estimator

    def estimate(
        self,
        sample: CoordinatedSample,
        selection: Optional[Iterable[ItemKey]] = None,
    ) -> SumEstimate:
        """Estimate the sum aggregate, optionally restricted to a selection.

        ``selection`` is the query's item domain (subset query).  Items in
        the selection that were sampled nowhere contribute 0 and are not
        enumerated; items outside the selection are skipped.
        """
        selected = set(selection) if selection is not None else None
        contributions: List[ItemEstimate] = []
        total = 0.0
        for key in sample.sampled_items():
            if selected is not None and key not in selected:
                continue
            outcome = sample.outcome_for(key, instances=self._instances)
            value = self._estimator.estimate(outcome)
            total += value
            contributions.append(
                ItemEstimate(key=key, seed=outcome.seed, estimate=value)
            )
        return SumEstimate(
            value=total,
            items=tuple(contributions),
            estimator=self._estimator.name,
        )


def estimate_lpp(
    sample: CoordinatedSample,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    estimator: Optional[Estimator] = None,
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """Estimate ``L_p^p`` between two instances from a coordinated sample.

    The full two-sided difference is estimated as the sum of the two
    one-sided estimates (increase-only plus decrease-only), each of which
    is an ``RG_p+`` sum aggregate — exactly the decomposition used in
    Example 1 of the paper.
    """
    forward = estimate_lpp_plus(sample, p, instances, estimator, selection)
    backward = estimate_lpp_plus(
        sample, p, (instances[1], instances[0]), estimator, selection
    )
    return forward + backward


def estimate_lp(
    sample: CoordinatedSample,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    estimator: Optional[Estimator] = None,
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """Estimate the ``L_p`` difference as the ``p``-th root of ``L_p^p``.

    The root introduces a (small, concavity-driven) bias; the paper's
    applications accept it because the underlying ``L_p^p`` estimate is
    unbiased and concentrates.
    """
    value = estimate_lpp(sample, p, instances, estimator, selection)
    return max(0.0, value) ** (1.0 / p)


def estimate_lpp_plus(
    sample: CoordinatedSample,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    estimator: Optional[Estimator] = None,
    selection: Optional[Iterable[ItemKey]] = None,
) -> float:
    """Estimate the one-sided difference ``sum max(0, v_i - v_j)^p``."""
    target = OneSidedRange(p=p)
    aggregator = SumAggregateEstimator(
        target, estimator=estimator, instances=instances
    )
    return aggregator.estimate(sample, selection=selection).value
