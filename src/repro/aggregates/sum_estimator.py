"""Sum-aggregate estimation from coordinated samples.

This is the end-to-end pipeline the paper motivates: a query such as
``L_p^p(H) = sum_{k in H} |v1_k - v2_k|^p`` is estimated by applying a
per-item (monotone-estimation) estimator to the outcome of every item and
summing.  Per-item unbiasedness makes the sum unbiased; per-item
independence of the seeds makes the variance of the sum the sum of the
per-item variances, so the relative error shrinks as the query selects
more items.

Only items that appear in at least one instance sample can contribute a
nonzero estimate for the zero-revealing targets used here (``RG_p``,
``RG_p+``, OR, ...): an item sampled nowhere has a lower-bound function
that is identically zero, and every in-range estimator returns 0 on it.
The estimator classes below therefore iterate over the retained sample
only, which is what makes the whole pipeline sublinear in the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..api.backend import BackendPolicy, BackendSpec
from ..core.functions import EstimationTarget, ExponentiatedRange, OneSidedRange
from ..estimators.base import Estimator
from ..estimators.lstar import LStarEstimator
from .coordinated import CoordinatedSample
from .dataset import ItemKey

__all__ = [
    "ItemEstimate",
    "SumEstimate",
    "SumAggregateEstimator",
    "estimate_lpp",
    "estimate_lp",
    "estimate_lpp_plus",
]


@dataclass(frozen=True)
class ItemEstimate:
    """The per-item contribution to a sum estimate (for diagnostics)."""

    key: ItemKey
    seed: float
    estimate: float


@dataclass(frozen=True)
class SumEstimate:
    """A sum-aggregate estimate with its per-item breakdown."""

    value: float
    items: Tuple[ItemEstimate, ...]
    estimator: str

    @property
    def contributing_items(self) -> int:
        """Number of items with a nonzero contribution."""
        return sum(1 for item in self.items if item.estimate != 0.0)


class SumAggregateEstimator:
    """Estimate ``sum_k f(v^(k))`` over selected items of a coordinated sample.

    Parameters
    ----------
    target:
        The per-item function ``f`` being aggregated.
    estimator:
        The per-item estimator; defaults to the generic L* estimator for
        ``target`` (the paper's recommended default, being admissible,
        monotone and 4-competitive).
    instances:
        Which instances (and in which order) form the tuple passed to
        ``target``; defaults to all instances of the sample.
    backend:
        ``None`` (the default) uses the process-wide
        :class:`~repro.api.backend.BackendPolicy`, which auto-dispatches
        by the number of retained items.  A mode string or a policy
        object overrides it: ``"scalar"`` applies ``estimator.estimate``
        outcome by outcome (the reference path); ``"vectorized"`` batches
        the retained items into a
        :class:`~repro.engine.batch_outcome.BatchOutcome` and runs the
        matching kernel from :mod:`repro.engine.kernels`, raising
        ``ValueError`` when no kernel covers the estimator/scheme pair;
        ``"auto"`` uses the kernel when one applies and silently falls
        back to the scalar path otherwise.
    """

    def __init__(
        self,
        target: EstimationTarget,
        estimator: Optional[Estimator] = None,
        instances: Optional[Sequence[int]] = None,
        backend: BackendSpec = None,
    ) -> None:
        self._policy = BackendPolicy.coerce(backend)
        self._target = target
        self._estimator = estimator if estimator is not None else LStarEstimator(target)
        self._instances = tuple(instances) if instances is not None else None

    @property
    def target(self) -> EstimationTarget:
        return self._target

    @property
    def estimator(self) -> Estimator:
        return self._estimator

    @property
    def backend(self) -> str:
        return self._policy.mode

    @property
    def policy(self) -> BackendPolicy:
        return self._policy

    def estimate(
        self,
        sample: CoordinatedSample,
        selection: Optional[Iterable[ItemKey]] = None,
    ) -> SumEstimate:
        """Estimate the sum aggregate, optionally restricted to a selection.

        ``selection`` is the query's item domain (subset query).  Items in
        the selection that were sampled nowhere contribute 0 and are not
        enumerated; items outside the selection are skipped.
        """
        selected = set(selection) if selection is not None else None
        keys = [
            key
            for key in sample.sampled_items()
            if selected is None or key in selected
        ]
        resolved = self._policy.resolve(len(keys))
        if resolved != "scalar":
            batched = self._estimate_batched(sample, keys)
            if batched is not None:
                return batched
            if resolved == "vectorized":
                raise ValueError(
                    "no vectorized kernel covers this estimator/scheme pair; "
                    "use backend='scalar' or backend='auto'"
                )
        contributions: List[ItemEstimate] = []
        total = 0.0
        for key in keys:
            outcome = sample.outcome_for(key, instances=self._instances)
            value = self._estimator.estimate(outcome)
            total += value
            contributions.append(
                ItemEstimate(key=key, seed=outcome.seed, estimate=value)
            )
        return SumEstimate(
            value=total,
            items=tuple(contributions),
            estimator=self._estimator.name,
        )

    def _estimate_batched(
        self, sample: CoordinatedSample, keys: Sequence[ItemKey]
    ) -> Optional[SumEstimate]:
        """Kernel-based estimation of the retained items, or ``None``.

        Imported lazily so that the aggregates layer has no import-time
        dependency on the engine (the engine's driver consumes datasets
        from this package).
        """
        import numpy as np

        from ..core.schemes import CoordinatedScheme
        from ..engine.batch_outcome import BatchOutcome
        from ..engine.kernels import resolve_kernel

        idx = (
            self._instances
            if self._instances is not None
            else tuple(range(sample.num_instances))
        )
        scheme = (
            sample.scheme
            if self._instances is None
            else CoordinatedScheme([sample.scheme.thresholds[i] for i in idx])
        )
        kernel = resolve_kernel(self._estimator, scheme)
        if kernel is None:
            return None
        n = len(keys)
        seeds = np.empty(n)
        values = np.full((n, len(idx)), np.nan)
        instance_samples = sample.instance_samples
        for k, key in enumerate(keys):
            seeds[k] = sample.seed_of(key)
            for column, i in enumerate(idx):
                weight = instance_samples[i].entries.get(key)
                if weight is not None:
                    values[k, column] = weight
        batch = BatchOutcome(seeds=seeds, values=values, scheme=scheme)
        estimates = kernel.estimate_batch(batch)
        contributions = tuple(
            ItemEstimate(key=key, seed=float(seeds[k]), estimate=float(estimates[k]))
            for k, key in enumerate(keys)
        )
        return SumEstimate(
            value=float(estimates.sum()),
            items=contributions,
            estimator=self._estimator.name,
        )


def estimate_lpp(
    sample: CoordinatedSample,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    estimator: Optional[Estimator] = None,
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Estimate ``L_p^p`` between two instances from a coordinated sample.

    The full two-sided difference is estimated as the sum of the two
    one-sided estimates (increase-only plus decrease-only), each of which
    is an ``RG_p+`` sum aggregate — exactly the decomposition used in
    Example 1 of the paper.
    """
    forward = estimate_lpp_plus(sample, p, instances, estimator, selection, backend)
    backward = estimate_lpp_plus(
        sample, p, (instances[1], instances[0]), estimator, selection, backend
    )
    return forward + backward


def estimate_lp(
    sample: CoordinatedSample,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    estimator: Optional[Estimator] = None,
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Estimate the ``L_p`` difference as the ``p``-th root of ``L_p^p``.

    The root introduces a (small, concavity-driven) bias; the paper's
    applications accept it because the underlying ``L_p^p`` estimate is
    unbiased and concentrates.
    """
    value = estimate_lpp(sample, p, instances, estimator, selection, backend)
    return max(0.0, value) ** (1.0 / p)


def estimate_lpp_plus(
    sample: CoordinatedSample,
    p: float = 1.0,
    instances: Tuple[int, int] = (0, 1),
    estimator: Optional[Estimator] = None,
    selection: Optional[Iterable[ItemKey]] = None,
    backend: BackendSpec = None,
) -> float:
    """Estimate the one-sided difference ``sum max(0, v_i - v_j)^p``."""
    target = OneSidedRange(p=p)
    aggregator = SumAggregateEstimator(
        target, estimator=estimator, instances=instances, backend=backend
    )
    return aggregator.estimate(sample, selection=selection).value
