"""Multi-instance datasets: the matrix view of coordinated sampling.

The paper's data model is a matrix: ``r`` *instances* (rows — snapshots,
activity logs, measurement epochs) over a shared universe of *items*
(columns — keys, features, flow identifiers).  Queries such as ``L_p``
differences, distinct counts, or similarity measures are sum aggregates
over items of a tuple function applied to each item's column.

:class:`MultiInstanceDataset` stores such a matrix sparsely (only positive
weights), provides the per-item tuples the estimators consume, and offers
the small amount of bookkeeping (instance names, item universe, selection
of item subsets) that the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["MultiInstanceDataset", "example1_dataset"]

ItemKey = Hashable


@dataclass(frozen=True)
class _ItemColumn:
    """One item's tuple of weights across the instances."""

    key: ItemKey
    weights: Tuple[float, ...]


class MultiInstanceDataset:
    """A sparse ``instances x items`` weight matrix.

    Parameters
    ----------
    instance_names:
        Names of the instances (rows), e.g. ``["day1", "day2"]``.
    weights:
        Mapping from item key to a sequence of per-instance weights, or an
        iterable of ``(key, weights)`` pairs.  Missing/zero weights are
        both represented as 0.
    """

    def __init__(
        self,
        instance_names: Sequence[str],
        weights: Mapping[ItemKey, Sequence[float]] = None,
    ) -> None:
        if not instance_names:
            raise ValueError("at least one instance is required")
        self._instance_names = tuple(str(n) for n in instance_names)
        self._columns: Dict[ItemKey, Tuple[float, ...]] = {}
        if weights:
            for key, tup in weights.items():
                self.set_item(key, tup)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_instance_maps(
        cls,
        instance_maps: Sequence[Mapping[ItemKey, float]],
        instance_names: Optional[Sequence[str]] = None,
    ) -> "MultiInstanceDataset":
        """Build a dataset from one ``{item: weight}`` mapping per instance."""
        r = len(instance_maps)
        if r == 0:
            raise ValueError("at least one instance map is required")
        names = instance_names or [f"instance{i + 1}" for i in range(r)]
        dataset = cls(names)
        keys = set()
        for mapping in instance_maps:
            keys.update(mapping.keys())
        for key in keys:
            dataset.set_item(key, [float(m.get(key, 0.0)) for m in instance_maps])
        return dataset

    def set_item(self, key: ItemKey, weights: Sequence[float]) -> None:
        """Set (or overwrite) the weight tuple of one item."""
        tup = tuple(float(w) for w in weights)
        if len(tup) != self.num_instances:
            raise ValueError(
                f"expected {self.num_instances} weights for item {key!r}, got {len(tup)}"
            )
        if any(w < 0 for w in tup):
            raise ValueError("weights must be nonnegative")
        if any(w > 0 for w in tup):
            self._columns[key] = tup
        else:
            # Items with all-zero weights carry no information; keep the
            # matrix sparse by dropping them.
            self._columns.pop(key, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        return len(self._instance_names)

    @property
    def instance_names(self) -> Tuple[str, ...]:
        return self._instance_names

    @property
    def items(self) -> Tuple[ItemKey, ...]:
        return tuple(self._columns.keys())

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, key: ItemKey) -> bool:
        return key in self._columns

    def tuple_for(self, key: ItemKey) -> Tuple[float, ...]:
        """The weight tuple of ``key`` (all zeros if the item is absent)."""
        return self._columns.get(key, (0.0,) * self.num_instances)

    def iter_items(
        self, selection: Optional[Iterable[ItemKey]] = None
    ) -> Iterator[Tuple[ItemKey, Tuple[float, ...]]]:
        """Iterate ``(key, tuple)`` pairs, optionally over a selection.

        Selected items absent from the dataset yield all-zero tuples,
        which matters for queries conditioned on an explicit item domain.
        """
        if selection is None:
            for key, tup in self._columns.items():
                yield key, tup
        else:
            for key in selection:
                yield key, self.tuple_for(key)

    def instance_weights(self, index: int) -> Dict[ItemKey, float]:
        """The (sparse) weight map of one instance."""
        if not 0 <= index < self.num_instances:
            raise IndexError(f"no instance with index {index}")
        return {
            key: tup[index] for key, tup in self._columns.items() if tup[index] > 0
        }

    def total_weight(self, index: int) -> float:
        """Sum of weights of one instance."""
        return sum(tup[index] for tup in self._columns.values())

    def weight_matrix(
        self,
        selection: Optional[Iterable[ItemKey]] = None,
        instances: Optional[Sequence[int]] = None,
    ):
        """Dense ``(items, instances)`` weight matrix plus its item keys.

        This is the bridge to the vectorized engine and query backends: a
        NumPy array with one row per item (following ``iter_items`` order,
        including all-zero rows for selected-but-absent items) and one
        column per requested instance.  Returns ``(keys, matrix)``.
        """
        import numpy as np

        idx = tuple(instances) if instances is not None else tuple(
            range(self.num_instances)
        )
        keys: List[ItemKey] = []
        rows: List[Tuple[float, ...]] = []
        for key, tup in self.iter_items(selection):
            keys.append(key)
            rows.append(tuple(tup[i] for i in idx))
        matrix = (
            np.asarray(rows, dtype=float)
            if rows
            else np.empty((0, len(idx)), dtype=float)
        )
        return tuple(keys), matrix

    def restrict(self, selection: Iterable[ItemKey]) -> "MultiInstanceDataset":
        """A new dataset containing only the selected items."""
        restricted = MultiInstanceDataset(self._instance_names)
        for key in selection:
            if key in self._columns:
                restricted.set_item(key, self._columns[key])
        return restricted

    def columns(self) -> List[_ItemColumn]:
        """Materialised columns, mostly for reporting."""
        return [_ItemColumn(key=k, weights=t) for k, t in self._columns.items()]


def example1_dataset() -> MultiInstanceDataset:
    """The 3-instance, 8-item dataset of Example 1 in the paper."""
    data = {
        "a": (0.95, 0.15, 0.25),
        "b": (0.00, 0.44, 0.00),
        "c": (0.23, 0.00, 0.00),
        "d": (0.70, 0.80, 0.10),
        "e": (0.10, 0.05, 0.00),
        "f": (0.42, 0.50, 0.22),
        "g": (0.00, 0.20, 0.00),
        "h": (0.32, 0.00, 0.00),
    }
    return MultiInstanceDataset(["v1", "v2", "v3"], data)
