"""Measured per-unit cost model behind the experiment scheduler.

The scheduler's original heuristic sized and ordered shards by raw *unit
counts* — one Monte-Carlo replication of E9 weighed the same as one
sweep point of E7 even though their wall-clock costs differ by orders of
magnitude, so ``--jobs N`` balanced unit counts, not seconds.

:class:`CostModel` replaces the guess with a measurement.  Every shard
the runner executes is timed; the first completed run of a given
``(experiment key, spec digest)`` records its measured
*seconds per unit* — weights are measured once and keyed by the same
content digest the cache uses, so a parameter or code change that would
invalidate cached records also retires its cost weight.  Later batches
use the stored weight to

* size shards by a target *duration* instead of a fixed per-job split
  (cheap experiments collapse to one shard, expensive ones split finely
  enough for the pool to balance), and
* order the global queue by predicted seconds, so the most expensive
  work starts first.

The model influences only the shard layout and the queue order.  Records
are a pure function of the unit index (see the determinism contract in
:mod:`repro.api.experiments`), so runs are bit-identical with the model
on, off, stale, or wrong — the scheduler tests assert exactly that.

Persistence is a single JSON file (default name ``costmodel.json``,
conventionally alongside the result cache; the ``REPRO_COST_MODEL``
environment variable or ``run_all --cost-model`` names it explicitly).
A missing or corrupt file simply means an empty model: the next batch
re-measures.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["ENV_COST_MODEL", "CostEntry", "CostModel"]

#: Environment variable naming the persisted cost-model file.
ENV_COST_MODEL = "REPRO_COST_MODEL"

#: Bump to discard every stored weight on a schema change.
MODEL_VERSION = 1

#: Default file name when the runner derives the path from a cache or
#: records directory.
DEFAULT_FILENAME = "costmodel.json"


@dataclass(frozen=True)
class CostEntry:
    """One measured weight: seconds per unit of one spec digest."""

    key: str
    digest: str
    seconds_per_unit: float
    units: int

    def to_dict(self) -> Dict[str, object]:
        """The entry as a plain JSON-able mapping."""
        return {
            "key": self.key,
            "digest": self.digest,
            "seconds_per_unit": self.seconds_per_unit,
            "units": self.units,
        }


class CostModel:
    """Per-``(key, digest)`` seconds-per-unit weights, JSON-persisted.

    Parameters
    ----------
    path:
        File to load from and save to; ``None`` keeps the model
        in-memory only (weights measured in this process still inform
        later batches of the same runner).
    """

    def __init__(self, path: Union[None, str, os.PathLike] = None) -> None:
        self._path = None if path is None else Path(path)
        self._entries: Dict[str, CostEntry] = {}
        self._dirty = False
        if self._path is not None and self._path.exists():
            self._load()

    @property
    def path(self) -> Optional[Path]:
        """The backing file, or ``None`` for an in-memory model."""
        return self._path

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def seconds_per_unit(self, key: str, digest: str) -> Optional[float]:
        """The measured weight for ``(key, digest)``, with a same-key
        fallback.

        An exact digest match is authoritative.  When the digest is new
        (changed parameters or code) but the experiment key has *any*
        stored weight, the entry measured over the most units (digest as
        the tie-break) is returned as an estimate — a deterministic rule
        that survives the save/load round-trip, unlike insertion order.
        Scale changes rarely alter the per-unit cost by more than the
        gap between experiments, and a stale estimate only shifts the
        heuristic shard layout, never the records.  Returns ``None`` for
        a fully unknown experiment.
        """
        exact = self._entries.get(f"{key}@{digest}")
        if exact is not None:
            return exact.seconds_per_unit
        candidates = [e for e in self._entries.values() if e.key == key]
        if not candidates:
            return None
        best = max(candidates, key=lambda e: (e.units, e.digest))
        return best.seconds_per_unit

    def has_measurement(self, key: str, digest: str) -> bool:
        """Whether ``(key, digest)`` already has an exact stored weight."""
        return f"{key}@{digest}" in self._entries

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def observe(
        self, key: str, digest: str, units: int, seconds: float
    ) -> bool:
        """Record a measured run: ``units`` executed in ``seconds``.

        Weights are measured *once* per digest: an existing exact entry
        is kept (re-runs of a cached digest are typically partial or
        contended, so the first complete measurement is the cleanest).
        Returns whether the observation was stored.
        """
        if units <= 0 or seconds <= 0.0 or self.has_measurement(key, digest):
            return False
        self._entries[f"{key}@{digest}"] = CostEntry(
            key=key,
            digest=digest,
            seconds_per_unit=seconds / units,
            units=int(units),
        )
        self._dirty = True
        return True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self) -> Optional[Path]:
        """Write the model atomically (no-op when pathless or unchanged).

        Returns
        -------
        Path or None
            The file written, or ``None`` when nothing was written.
        """
        if self._path is None or not self._dirty:
            return None
        self._path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": MODEL_VERSION,
            "entries": [
                self._entries[k].to_dict() for k in sorted(self._entries)
            ],
        }
        tmp = self._path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(self._path)
        self._dirty = False
        return self._path

    def _load(self) -> None:
        """Load entries from the backing file; corrupt files load empty."""
        try:
            payload = json.loads(self._path.read_text())
        except (OSError, ValueError):
            return
        if payload.get("version") != MODEL_VERSION:
            return
        for raw in payload.get("entries", ()):
            try:
                entry = CostEntry(
                    key=str(raw["key"]),
                    digest=str(raw["digest"]),
                    seconds_per_unit=float(raw["seconds_per_unit"]),
                    units=int(raw["units"]),
                )
            except (KeyError, TypeError, ValueError):
                continue
            if entry.seconds_per_unit > 0:
                self._entries[f"{entry.key}@{entry.digest}"] = entry
