"""repro.api — the unified estimation-session facade.

One import point for the whole pipeline:

* :class:`EstimationSession` (alias :class:`Session`) — fluent builder
  owning scheme construction, seed management, backend policy, and
  result objects;
* :class:`BackendPolicy` / :func:`set_default_backend` — one dispatch
  rule replacing the scattered ``backend=`` keywords;
* the plugin registries (:func:`register_estimator`,
  :func:`register_target`, :func:`register_query`,
  :func:`register_scheme`) that the library's own layers self-register
  into and user code extends with one call;
* the sketch-serving layer's entry points
  (:class:`~repro.serving.store.SketchStore`,
  :class:`~repro.serving.store.StoreConfig`,
  :func:`~repro.serving.store.merge_stores`,
  :class:`~repro.serving.events.Event`,
  :class:`~repro.serving.server.SketchServer`,
  :class:`~repro.serving.ingest.ParallelIngestor`,
  :class:`~repro.serving.retention.RetentionPolicy`), re-exported here
  so serving a store and estimating offline share one import point.

Import-order note: the registry and backend modules are dependency-free
and imported eagerly, so lower layers (``repro.core``,
``repro.estimators``, ``repro.aggregates``) can self-register at import
time without cycles; the session and result classes — which import those
layers — load lazily on first attribute access (PEP 562).
"""

from .backend import (
    BACKEND_MODES,
    BackendPolicy,
    default_backend,
    set_default_backend,
)
from .registry import (
    ESTIMATORS,
    QUERIES,
    SCHEMES,
    TARGETS,
    Registry,
    register_estimator,
    register_query,
    register_scheme,
    register_target,
)

__all__ = [
    "BACKEND_MODES",
    "BackendPolicy",
    "default_backend",
    "set_default_backend",
    "ESTIMATORS",
    "QUERIES",
    "SCHEMES",
    "TARGETS",
    "Registry",
    "register_estimator",
    "register_query",
    "register_scheme",
    "register_target",
    "EstimateResult",
    "EstimationSession",
    "Session",
    "ExperimentSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "WorkPlan",
    "ReplicationPlan",
    "SweepPlan",
    "WorkUnit",
    "BatchResult",
    "EstimationPlan",
    "EXPERIMENT_SPECS",
    "register_experiment",
    "RecordStore",
    "StoredRun",
    "read_run",
    "CostModel",
    "SketchStore",
    "StoreConfig",
    "Event",
    "merge_stores",
    "ParallelIngestor",
    "QueryBatcher",
    "RetentionPolicy",
    "ServingClient",
    "SketchServer",
]

#: Lazily-loaded attributes: they import the estimation layers, which in
#: turn import this package's registries during their own initialisation.
#: Values are submodules of this package, or absolute module paths (with
#: a dot) for re-exports from sibling packages such as the serving layer.
_LAZY = {
    "EstimationSession": "session",
    "Session": "session",
    "EstimateResult": "results",
    "ExperimentSpec": "experiments",
    "ExperimentResult": "experiments",
    "ExperimentRunner": "experiments",
    "WorkPlan": "experiments",
    "ReplicationPlan": "experiments",
    "SweepPlan": "experiments",
    "WorkUnit": "experiments",
    "BatchResult": "experiments",
    "EstimationPlan": "experiments",
    "EXPERIMENT_SPECS": "experiments",
    "register_experiment": "experiments",
    "RecordStore": "records",
    "StoredRun": "records",
    "read_run": "records",
    "CostModel": "costmodel",
    "SketchStore": "repro.serving.store",
    "StoreConfig": "repro.serving.store",
    "merge_stores": "repro.serving.store",
    "Event": "repro.serving.events",
    "ParallelIngestor": "repro.serving.ingest",
    "QueryBatcher": "repro.serving.batcher",
    "RetentionPolicy": "repro.serving.retention",
    "ServingClient": "repro.serving.server",
    "SketchServer": "repro.serving.server",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    if "." in module_name:
        module = import_module(module_name)
    else:
        module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
