"""Backend selection policy: one object instead of scattered ``backend=``.

Before the facade existed, every entry point grew its own
``backend="scalar"|"vectorized"|"auto"`` keyword with its own default.
:class:`BackendPolicy` centralises the decision:

* ``mode`` — ``"scalar"`` (reference path), ``"vectorized"`` (engine
  kernels, raising when none applies), or ``"auto"``;
* ``auto_threshold`` — under ``"auto"``, inputs smaller than this many
  per-item estimates stay on the scalar path (NumPy dispatch overhead
  beats the loop only past a few hundred items), larger inputs use a
  kernel whenever one exists.

The process-wide default is ``auto`` and can be overridden without code
changes through the environment (``REPRO_BACKEND=scalar|vectorized|auto``
and ``REPRO_BACKEND_THRESHOLD=<int>``) or programmatically with
:func:`set_default_backend` — which is what ``run_all --backend`` uses.

Every legacy ``backend=`` argument now accepts ``None`` (use the default
policy), one of the three mode strings, or a :class:`BackendPolicy`, and
resolves it through :meth:`BackendPolicy.coerce` — so the scattered
keywords share one default and one resolution rule.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "BACKEND_MODES",
    "BackendPolicy",
    "BackendSpec",
    "default_backend",
    "set_default_backend",
]

#: The three recognised dispatch modes.
BACKEND_MODES = ("scalar", "vectorized", "auto")

#: Environment variables consulted for the process-wide default.
ENV_MODE = "REPRO_BACKEND"
ENV_THRESHOLD = "REPRO_BACKEND_THRESHOLD"

#: Below this many per-item estimates, ``auto`` stays scalar.
#:
#: Measured, not guessed: ``python benchmarks/run_bench.py
#: --threshold-sweep`` times the same replication × item simulate grid
#: (identical setup, seeds, and results) under both forced backends
#: across grid sizes.  On the reference container (Linux, CPython 3.11,
#: NumPy 2.x) the vectorized path crosses over at a grid of ~32
#: estimates (1.3x), wins ~2.5x at 64, ~10x at 512 — the previous,
#: guessed threshold, which was therefore leaving an order of magnitude
#: on the table for mid-sized grids — and ~35x at 8192.  The default is
#: set to 64, one doubling above the measured crossover, so machines
#: with slower NumPy dispatch still never lose by engaging the engine;
#: below it the scalar loop's lower constant genuinely wins.  Re-run the
#: sweep and update this constant (and these numbers) when the kernels
#: or the hardware change materially.
DEFAULT_AUTO_THRESHOLD = 64


@dataclass(frozen=True)
class BackendPolicy:
    """An immutable backend decision rule.

    ``resolve(size)`` returns the legacy backend string the low-level
    estimation code understands; ``resolve_exact(size)`` is the variant
    for exact (ground-truth) queries, which have no kernel-availability
    question and therefore never return ``"auto"``.
    """

    mode: str = "auto"
    auto_threshold: int = DEFAULT_AUTO_THRESHOLD

    def __post_init__(self) -> None:
        if self.mode not in BACKEND_MODES:
            raise ValueError(
                f"backend mode must be one of {BACKEND_MODES}, got {self.mode!r}"
            )
        if self.auto_threshold < 0:
            raise ValueError("auto_threshold must be nonnegative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "BackendPolicy":
        """The process-wide policy: override > environment > ``auto``."""
        if _DEFAULT_OVERRIDE is not None:
            return _DEFAULT_OVERRIDE
        mode = os.environ.get(ENV_MODE, "").strip().lower() or "auto"
        if mode not in BACKEND_MODES:
            raise ValueError(
                f"{ENV_MODE}={mode!r} is not a valid backend mode "
                f"(expected one of {BACKEND_MODES})"
            )
        raw_threshold = os.environ.get(ENV_THRESHOLD, "").strip()
        threshold = int(raw_threshold) if raw_threshold else DEFAULT_AUTO_THRESHOLD
        return cls(mode=mode, auto_threshold=threshold)

    @classmethod
    def coerce(cls, spec: "BackendSpec") -> "BackendPolicy":
        """Normalise ``None`` / a mode string / a policy into a policy."""
        if spec is None:
            return cls.default()
        if isinstance(spec, BackendPolicy):
            return spec
        if isinstance(spec, str):
            return cls(mode=spec)
        raise TypeError(
            "backend must be None, one of "
            f"{BACKEND_MODES}, or a BackendPolicy; got {spec!r}"
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, size: Optional[int] = None) -> str:
        """Dispatch decision for estimation paths.

        Returns ``"scalar"``, ``"vectorized"``, or ``"auto"`` (meaning
        "use an engine kernel when one applies, scalar otherwise") — the
        contract the estimation layers already implement.  Under
        ``mode="auto"`` a known-small input short-circuits to scalar.
        """
        if self.mode != "auto":
            return self.mode
        if size is not None and size < self.auto_threshold:
            return "scalar"
        return "auto"

    def resolve_exact(self, size: Optional[int] = None) -> str:
        """Dispatch decision for exact queries: scalar or vectorized only."""
        if self.mode != "auto":
            return self.mode
        if size is not None and size < self.auto_threshold:
            return "scalar"
        return "vectorized"


#: Accepted forms of a backend specification throughout the library.
BackendSpec = Union[None, str, BackendPolicy]

_DEFAULT_OVERRIDE: Optional[BackendPolicy] = None


def default_backend() -> BackendPolicy:
    """The current process-wide default policy."""
    return BackendPolicy.default()


def set_default_backend(spec: BackendSpec) -> Optional[BackendPolicy]:
    """Install (or with ``None`` clear) a process-wide default policy.

    Takes precedence over the ``REPRO_BACKEND`` environment variable; the
    CLI entry points use it so one flag governs a whole run.  Returns the
    previously installed override (or ``None``) so a temporary change can
    be restored exactly::

        previous = set_default_backend("vectorized")
        try:
            ...
        finally:
            set_default_backend(previous)
    """
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    _DEFAULT_OVERRIDE = None if spec is None else BackendPolicy.coerce(spec)
    return previous
