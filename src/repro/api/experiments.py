"""Declarative experiment specs and the cross-experiment scheduler.

The paper's empirical claims (E1–E11) used to live in ad-hoc scripts that
hand-rolled replication loops and returned pre-formatted strings.  This
module turns each experiment into *data* and its execution into
*scheduling*:

* :class:`ExperimentSpec` — a declarative description: which task
  computes the records, the parameter sets per scale (``smoke`` /
  ``quick`` / ``full``), an optional :class:`WorkPlan` describing how the
  computation shards (a Monte-Carlo :class:`ReplicationPlan` or a
  parameter-grid :class:`SweepPlan`), and an optional
  :class:`EstimationPlan` naming the scheme/target/estimators through the
  PR 2 registries;
* :class:`ExperimentRunner` — executes *batches* of specs: every
  experiment's shards are flattened into **one global queue**, ordered
  largest-work-first, and drained by a single ``ProcessPoolExecutor`` so
  ``--jobs N`` saturates ``N`` workers across experiment boundaries
  instead of draining one experiment at a time.  Completed shard records
  stream to an append-only :class:`~repro.api.records.RecordStore` and
  completed runs are memoized in an on-disk cache keyed by a content
  hash of the spec;
* :class:`ExperimentResult` — structured records plus metadata; rendering
  lives in :mod:`repro.experiments.report`, not here.

Work plans
----------
A :class:`WorkPlan` splits an experiment into *units* — the smallest
independently computable pieces — which the scheduler groups into shards
``[lo, hi)``:

* :class:`ReplicationPlan` — unit ``i`` is Monte-Carlo replication ``i``;
  the task runs as ``task(params, children, lo)`` where ``children`` are
  the replications' :class:`~numpy.random.SeedSequence` objects;
* :class:`SweepPlan` — unit ``i`` is point ``i`` of a deterministic
  parameter grid enumerated by the plan's ``points`` hook; the task runs
  as ``task(params, points, lo)`` over its slice of the grid;
* a spec with neither plan is a single opaque unit (the whole task).

Determinism
-----------
Replicated experiments draw their randomness from
``numpy.random.SeedSequence(plan.seed).spawn(units)`` — one child
sequence *per unit*, independent of how units are grouped into shards —
and sweep grids are pure functions of the parameters.  Shard outputs are
merged in unit order no matter when each shard finished, so the records
are bit-identical for any ``--jobs`` value, for a cache replay, and for
a resumed run.

Record streaming and resume
---------------------------
With a records directory configured, every run streams its per-unit
records to ``<records_dir>/<key>-<digest>.jsonl`` as shards complete and
finalizes the file atomically (see :mod:`repro.api.records` for the line
protocol).  An interrupted or failed run leaves a ``.jsonl.partial``
file; ``resume=True`` (CLI ``--resume``) re-opens it, keeps the recorded
shard layout, skips every shard whose records were sealed, and re-runs
only the rest — reproducing the exact records of an uninterrupted run.

Caching
-------
A run is cached under ``<cache_dir>/<key>-<digest>.json`` where
``digest`` is the SHA-256 of the canonical JSON of the run's identity:
the cache format version, the spec's key and task/finalize/points hooks
(including their *source text*, so editing a task invalidates its
entries), the fully merged parameters, the work plan, the estimation
plan, the scale name and the *effective* backend policy (mode and
auto-threshold, whether it came from the runner's ``backend=`` argument,
``set_default_backend`` or the environment).  When a record store is
active, the cache entry is a *pointer* into the store (the records are
not duplicated); deleting the store file simply turns the next lookup
into a miss.  Changes in library code the hooks call are *not* hashed —
bump ``CACHE_VERSION`` (or delete the directory) after such changes.  No
``cache_dir`` means no caching.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.seeds import spawn_children
from .backend import BackendPolicy, BackendSpec, default_backend, set_default_backend
from .costmodel import CostModel, ENV_COST_MODEL
from .records import ENV_RECORDS_DIR, RecordStore, RecordWriter, STORE_VERSION
from .registry import Registry

__all__ = [
    "SCALES",
    "WorkPlan",
    "ReplicationPlan",
    "SweepPlan",
    "EstimationPlan",
    "ExperimentSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "WorkUnit",
    "BatchResult",
    "EXPERIMENT_SPECS",
    "register_experiment",
    "spec_digest",
]

#: Recognised parameter scales, smallest first.
SCALES = ("smoke", "quick", "full")

#: Bumping this invalidates every existing cache entry (schema changes).
#: Version 2: work-plan hierarchy (sweep plans) + record-store pointers.
CACHE_VERSION = 2

#: Environment variable supplying a default cache directory.
ENV_CACHE_DIR = "REPRO_EXPERIMENT_CACHE"


class WorkPlan:
    """How an experiment's computation splits into shardable units.

    Subclasses define the unit semantics (`ReplicationPlan`: one unit per
    Monte-Carlo replication; `SweepPlan`: one unit per grid point) and
    the matching task signature.  A spec with no plan is one opaque unit.
    ``kind`` discriminates plans in digests and record-store manifests.
    """

    #: Discriminator used in digests and store manifests.
    kind: ClassVar[str] = "task"

    def describe(self) -> Dict[str, Any]:
        """JSON-able description of the plan (feeds :func:`spec_digest`)."""
        return {"kind": self.kind}


@dataclass(frozen=True)
class ReplicationPlan(WorkPlan):
    """Monte-Carlo replication: how many independent runs, from which seed.

    ``replications`` is the default count; a spec's per-scale parameters
    may override it with a ``"replications"`` entry.  ``seed`` feeds the
    root :class:`numpy.random.SeedSequence` from which every
    replication's child sequence is spawned.  The spec's task runs per
    shard as ``task(params, children, start) -> records`` where
    ``children`` are the shard's child sequences and ``start`` the index
    of the first one.

    Raises
    ------
    ValueError
        If ``replications`` is less than 1.
    """

    kind: ClassVar[str] = "replication"

    seed: int = 0
    replications: int = 1

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be at least 1")

    def describe(self) -> Dict[str, Any]:
        """Seed and default count (the effective count is parameterised)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "replications": self.replications,
        }


@dataclass(frozen=True)
class SweepPlan(WorkPlan):
    """A deterministic parameter grid: one unit per sweep point.

    ``points`` names a hook ``"module.path:function"`` with signature
    ``points(params) -> Sequence[point]`` enumerating the grid as a pure
    function of the merged parameters (no hidden state — the scheduler
    and every resumed run must re-derive the identical list).  The spec's
    task runs per shard as ``task(params, points, start) -> records``
    where ``points`` is the shard's slice ``grid[lo:hi]`` and ``start``
    is ``lo``.

    Raises
    ------
    ValueError
        If ``points`` is not a ``module:function`` hook path.
    """

    kind: ClassVar[str] = "sweep"

    points: str = ""

    def __post_init__(self) -> None:
        if ":" not in self.points:
            raise ValueError(
                "SweepPlan.points must name a 'package.module:function' hook"
            )

    def describe(self) -> Dict[str, Any]:
        """The points hook path (its source is hashed separately)."""
        return {"kind": self.kind, "points": self.points}


@dataclass(frozen=True)
class EstimationPlan:
    """Registry-resolved estimation pipeline used by a spec's task.

    Names refer to the :mod:`repro.api.registry` registries, so the same
    keys work in :class:`~repro.api.session.EstimationSession`; the task
    receives the plan through its parameters (key ``"estimation"``) and
    builds sessions from it instead of importing estimator classes.
    ``estimators`` maps report labels (``"L*"``) to estimator registry
    keys (``"lstar_symmetric"``).
    """

    scheme: str = "pps"
    target: str = "one_sided_range"
    estimators: Mapping[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """The plan as a plain JSON-able mapping."""
        return {
            "scheme": self.scheme,
            "target": self.target,
            "estimators": dict(self.estimators),
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of the paper, as data.

    Attributes
    ----------
    key:
        Canonical id (``"E9"``).
    title:
        Human-readable title used by the reports.
    task:
        ``"module.path:function"`` computing the records.  Plain specs
        use ``task(params) -> (records, metadata)``; replicated specs use
        ``task(params, children, start) -> records`` where ``children``
        are the replication :class:`~numpy.random.SeedSequence` objects
        of the shard; sweep specs use ``task(params, points, start) ->
        records`` over the shard's grid slice.
    finalize:
        For sharded specs: ``"module.path:function"`` reducing the merged
        per-unit records, ``finalize(params, records) -> (records,
        metadata)``.
    params:
        Base parameters common to every scale.
    scales:
        Scale name -> parameter overrides (merged over ``params``).
    replication:
        Present exactly when the task is sharded Monte Carlo.
    sweep:
        Present exactly when the task shards over a deterministic grid.
    estimation:
        Optional registry-resolved pipeline description, passed to the
        task as ``params["estimation"]``.
    aliases:
        Additional registry names (``"lp_difference"`` for ``"E9"``).

    Raises
    ------
    ValueError
        If both ``replication`` and ``sweep`` are set (a spec has at most
        one work plan).
    """

    key: str
    title: str
    task: str
    finalize: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    scales: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    replication: Optional[ReplicationPlan] = None
    sweep: Optional[SweepPlan] = None
    estimation: Optional[EstimationPlan] = None
    aliases: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.replication is not None and self.sweep is not None:
            raise ValueError(
                f"spec {self.key!r} declares both a replication and a sweep "
                "plan; an experiment shards one way or the other"
            )

    @property
    def plan(self) -> Optional[WorkPlan]:
        """The spec's work plan (replication or sweep), or ``None``."""
        return self.replication if self.replication is not None else self.sweep

    def merged_params(self, scale: str = "quick") -> Dict[str, Any]:
        """Base params overlaid with the scale's overrides (and the
        estimation plan, when one is declared).

        Raises
        ------
        ValueError
            If ``scale`` is not one of :data:`SCALES`.
        """
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
        params = dict(self.params)
        params.update(self.scales.get(scale, {}))
        if self.estimation is not None:
            params.setdefault("estimation", self.estimation.as_dict())
        return params

    def replications_for(self, params: Mapping[str, Any]) -> int:
        """Effective replication count under ``params`` (0 when not
        replicated)."""
        if self.replication is None:
            return 0
        return int(params.get("replications", self.replication.replications))


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment run.

    ``records`` is a tuple of flat JSON-serialisable mappings (one table
    row each); ``metadata`` carries experiment-level extras — check
    outcomes, winner summaries, ``notes`` (plain lines for the text
    report), and the runner's provenance block.
    """

    key: str
    title: str
    scale: str
    records: Tuple[Mapping[str, Any], ...]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The result as a plain JSON-able mapping."""
        return {
            "key": self.key,
            "title": self.title,
            "scale": self.scale,
            "records": [dict(r) for r in self.records],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (cache / store)."""
        return cls(
            key=payload["key"],
            title=payload["title"],
            scale=payload["scale"],
            records=tuple(dict(r) for r in payload["records"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def with_metadata(self, **extra: Any) -> "ExperimentResult":
        """A copy with ``extra`` merged over the metadata."""
        merged = dict(self.metadata)
        merged.update(extra)
        return replace(self, metadata=merged)


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable shard of one experiment in a batch.

    Attributes
    ----------
    key:
        The owning experiment's canonical key.
    shard:
        Index into the experiment's shard layout.
    lo, hi:
        The unit range ``[lo, hi)`` the shard covers.
    kind:
        The work-plan kind (``"replication"`` / ``"sweep"`` / ``"task"``).
    weight:
        Unit count of the shard.
    cost_s:
        Predicted wall-clock seconds: unit count × the cost model's
        seconds per unit (the run's own measurement, or the batch's
        median measured weight for still-unmeasured runs, so the queue
        never compares seconds against raw unit counts).  ``None`` when
        the batch has no measurements at all — the queue then drains by
        descending unit count.
    """

    key: str
    shard: int
    lo: int
    hi: int
    kind: str
    weight: int
    cost_s: Optional[float] = None


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :meth:`ExperimentRunner.run_batch` call.

    Attributes
    ----------
    results:
        One entry per requested spec, in request order; ``None`` where
        that experiment failed.
    failures:
        ``(label, exception)`` pairs for every failed entry.
    schedule:
        The global largest-work-first shard order the batch executed
        (cache/store hits contribute no units).
    """

    results: Tuple[Optional[ExperimentResult], ...]
    failures: Tuple[Tuple[str, Exception], ...]
    schedule: Tuple[WorkUnit, ...]

    @property
    def ok(self) -> bool:
        """Whether every requested experiment produced a result."""
        return not self.failures


#: The experiment-spec registry; the canonical specs self-register from
#: :mod:`repro.experiments.specs` on first lookup.
EXPERIMENT_SPECS = Registry("experiment")


def register_experiment(spec: ExperimentSpec, *, overwrite: bool = False) -> ExperimentSpec:
    """Register ``spec`` under its key and every alias.

    Returns
    -------
    ExperimentSpec
        The spec itself, for decorator-style chaining.

    Raises
    ------
    ValueError
        If a name is already registered and ``overwrite`` is false.
    """
    EXPERIMENT_SPECS.register(spec.key, spec, overwrite=overwrite)
    for alias in spec.aliases:
        EXPERIMENT_SPECS.register(alias, spec, overwrite=overwrite)
    return spec


def _canonical(value: Any) -> Any:
    """Reduce a parameter structure to canonical JSON-able form."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _hook_source(path: Optional[str]) -> Optional[str]:
    """Source text of a task hook, for the cache digest.

    Hashing the hook's source (not just its dotted path) means editing a
    task function invalidates its cached results automatically.  Changes
    in code the hook *calls* are not captured — that is what the manual
    ``CACHE_VERSION`` bump (or deleting the cache directory) is for.
    """
    if path is None:
        return None
    import inspect

    try:
        return inspect.getsource(_resolve_hook(path))
    except (OSError, TypeError):  # pragma: no cover - builtins/C hooks
        return None


def spec_digest(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    scale: str,
    backend: Optional[str] = None,
) -> str:
    """Content hash identifying a run for the cache and the record store.

    Covers everything in the spec that can change the records — the
    task/finalize/points hooks (by source text), the merged parameters,
    the work plan, the estimation plan, the scale and the backend mode —
    plus the cache format version; see the module docstring for the
    invalidation rule.

    Returns
    -------
    str
        A 16-hex-digit digest.
    """
    payload = {
        "version": CACHE_VERSION,
        "key": spec.key,
        "task": spec.task,
        "task_source": _hook_source(spec.task),
        "finalize": spec.finalize,
        "finalize_source": _hook_source(spec.finalize),
        "scale": scale,
        "params": _canonical(params),
        "plan": _plan_payload(spec, params),
        "estimation": None if spec.estimation is None
        else _canonical(spec.estimation.as_dict()),
        "backend": backend,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _plan_payload(
    spec: ExperimentSpec, params: Mapping[str, Any]
) -> Optional[Dict[str, Any]]:
    """The work plan's digest payload: ``plan.describe()`` plus the
    parameter-effective replication count / the points hook's source."""
    plan = spec.plan
    if plan is None:
        return None
    payload = dict(plan.describe())
    if spec.replication is not None:
        payload["replications"] = spec.replications_for(params)
    if spec.sweep is not None:
        payload["points_source"] = _hook_source(spec.sweep.points)
    return payload


def _resolve_hook(path: str):
    """Import ``"module.path:function"`` (tasks must be module-level so
    shards can resolve them in worker processes).

    Raises
    ------
    ValueError
        If ``path`` does not contain a ``:`` separator.
    """
    from importlib import import_module

    module_name, _, func_name = path.partition(":")
    if not func_name:
        raise ValueError(
            f"task path {path!r} must look like 'package.module:function'"
        )
    return getattr(import_module(module_name), func_name)


@dataclass(frozen=True)
class _ShardJob:
    """Everything a worker needs to execute one shard (picklable)."""

    kind: str
    task: str
    params: Mapping[str, Any]
    lo: int
    hi: int
    seed: int = 0
    total: int = 0
    points: Optional[Tuple[Any, ...]] = None
    backend: Tuple[str, int] = ("auto", 0)


def _run_job(
    job: _ShardJob,
) -> Tuple[List[Mapping[str, Any]], Dict[str, Any], float]:
    """Execute one shard in a worker process (or inline for ``jobs=1`` —
    same code path, so the two are bit-identical).

    ``job.backend`` is the parent's *effective* policy (mode,
    auto_threshold): installing it explicitly keeps workers on the
    parent's dispatch rule even under spawn-style start methods, where an
    in-process ``set_default_backend`` override would otherwise not be
    inherited.  Replicated shards construct exactly their own range of
    replication children (:func:`repro.core.seeds.spawn_children` — child
    ``i`` depends only on the plan seed and ``i``, never on the shard
    boundaries), so a worker's seed setup is O(shard), not O(total).

    Returns
    -------
    (records, metadata, elapsed)
        The shard's records, the task metadata (non-empty only for plain
        single-unit tasks that return a ``(records, metadata)`` pair),
        and the shard's wall-clock seconds — the cost model's raw
        measurement.
    """
    set_default_backend(
        BackendPolicy(mode=job.backend[0], auto_threshold=job.backend[1])
    )
    task = _resolve_hook(job.task)
    started = time.perf_counter()
    if job.kind == "replication":
        children = spawn_children(job.seed, job.lo, job.hi)
        records, meta = list(task(dict(job.params), children, job.lo)), {}
    elif job.kind == "sweep":
        records, meta = (
            list(task(dict(job.params), list(job.points or ()), job.lo)),
            {},
        )
    else:
        records, meta = _normalise_task_output(task(dict(job.params)))
    return records, meta, time.perf_counter() - started


class ResultCache:
    """On-disk JSON memo of completed :class:`ExperimentResult` runs.

    An entry either embeds the whole result (no record store configured)
    or is a *pointer* to the finalized record-store file holding it — in
    which case loading follows the pointer and a deleted store file turns
    the entry into a miss.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    def path_for(self, key: str, digest: str) -> Path:
        """The cache entry path for ``(key, digest)``."""
        return self._root / f"{key}-{digest}.json"

    def load(self, key: str, digest: str) -> Optional[ExperimentResult]:
        """Load a cached result, following store pointers.

        Returns
        -------
        ExperimentResult or None
            ``None`` on any miss: no entry, digest mismatch, or a pointer
            whose store file is gone or was never finalized.
        """
        path = self.path_for(key, digest)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("digest") != digest:
            return None
        pointer = payload.get("store")
        if pointer is not None:
            from .records import read_run

            run = read_run(pointer)
            if run is None or not run.is_complete or run.digest != digest:
                return None
            return run.to_experiment_result()
        return ExperimentResult.from_dict(payload["result"])

    def store(
        self,
        key: str,
        digest: str,
        result: ExperimentResult,
        store_path: Union[None, str, os.PathLike] = None,
    ) -> Path:
        """Write a cache entry (atomically).

        Parameters
        ----------
        store_path:
            When given, the entry becomes a pointer to this finalized
            record-store file instead of embedding the result.

        Returns
        -------
        Path
            The entry's path.
        """
        self._root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key, digest)
        if store_path is not None:
            payload: Dict[str, Any] = {"digest": digest, "store": str(store_path)}
        else:
            payload = {"digest": digest, "result": result.to_dict()}
        # Per-writer tmp name: concurrent runs storing the same digest
        # must not consume each other's tmp file mid-replace.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        return path


class _PreparedRun:
    """Mutable batch-execution state of one requested experiment."""

    def __init__(self, label: str, position: int) -> None:
        self.label = label
        self.position = position
        self.spec: Optional[ExperimentSpec] = None
        self.scale = "quick"
        self.params: Dict[str, Any] = {}
        self.digest = ""
        self.kind = "task"
        self.units = 1
        self.shards: List[Tuple[int, int]] = []
        self.points: Optional[List[Any]] = None
        self.records_by_shard: Dict[int, List[Mapping[str, Any]]] = {}
        self.shard_seconds: Dict[int, float] = {}
        self.seconds_per_unit: Optional[float] = None
        self.task_metadata: Dict[str, Any] = {}
        self.resumed: List[int] = []
        self.writer: Optional[RecordWriter] = None
        self.duplicate_of: Optional["_PreparedRun"] = None
        self.result: Optional[ExperimentResult] = None
        self.error: Optional[Exception] = None
        self.finished_at: Optional[float] = None

    @property
    def pending(self) -> List[int]:
        """Shard indices still to execute."""
        return [
            i for i in range(len(self.shards))
            if i not in self.records_by_shard
        ]


class ExperimentRunner:
    """Schedules :class:`ExperimentSpec` batches with sharding, streaming
    records, and caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs every shard inline (same code path,
        bit-identical records); larger values drain the *global* shard
        queue — shards of different experiments interleave freely.
    cache_dir:
        Directory for the result cache; ``None`` consults the
        ``REPRO_EXPERIMENT_CACHE`` environment variable and, when that is
        unset too, disables caching.
    backend:
        Backend policy installed (process-wide, restored afterwards) for
        the duration of each batch; shards install it in their workers.
    records_dir:
        Directory for the streamed :class:`~repro.api.records.RecordStore`;
        ``None`` consults ``REPRO_EXPERIMENT_RECORDS`` and, when that is
        unset too, disables record streaming.
    resume:
        Resume from the record store: finalized runs are loaded outright,
        partial runs keep their recorded shard layout and skip every
        sealed shard.  Requires a records directory.
    parquet:
        Mirror finalized runs to parquet files (requires pyarrow).
    cost_model:
        Measured per-unit cost weights for shard sizing and queue order
        (see :mod:`repro.api.costmodel`).  ``None`` consults the
        ``REPRO_COST_MODEL`` environment variable and, when that is unset
        too, falls back to unit-count scheduling; ``True`` stores the
        model as ``costmodel.json`` next to the result cache (or the
        record store) when one is configured, in memory otherwise;
        ``False`` disables it outright; a path or a ready
        :class:`~repro.api.costmodel.CostModel` is used as given.  The
        model never changes the records — only how they are scheduled.

    Raises
    ------
    ValueError
        If ``jobs < 1``, or ``resume=True`` without a records directory.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[None, str, os.PathLike] = None,
        backend: BackendSpec = None,
        records_dir: Union[None, str, os.PathLike] = None,
        resume: bool = False,
        parquet: bool = False,
        cost_model: Union[None, bool, str, os.PathLike, CostModel] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self._jobs = int(jobs)
        if cache_dir is None:
            cache_dir = os.environ.get(ENV_CACHE_DIR, "").strip() or None
        self._cache = None if cache_dir is None else ResultCache(cache_dir)
        if records_dir is None:
            records_dir = os.environ.get(ENV_RECORDS_DIR, "").strip() or None
        self._records = (
            None if records_dir is None
            else RecordStore(records_dir, parquet=parquet)
        )
        if resume and self._records is None:
            raise ValueError(
                "resume=True requires a records directory (records_dir= or "
                f"the {ENV_RECORDS_DIR} environment variable)"
            )
        self._resume = bool(resume)
        self._backend_mode = (
            None if backend is None else BackendPolicy.coerce(backend).mode
        )
        self._cost_model = self._resolve_cost_model(
            cost_model, cache_dir, records_dir
        )

    @staticmethod
    def _resolve_cost_model(
        spec: Union[None, bool, str, os.PathLike, CostModel],
        cache_dir: Union[None, str, os.PathLike],
        records_dir: Union[None, str, os.PathLike],
    ) -> Optional[CostModel]:
        """Normalise the ``cost_model`` argument (see the class docstring)."""
        from .costmodel import DEFAULT_FILENAME

        if spec is None:
            spec = os.environ.get(ENV_COST_MODEL, "").strip() or False
        if spec is False:
            return None
        if isinstance(spec, CostModel):
            return spec
        if spec is True:
            base = cache_dir if cache_dir is not None else records_dir
            if base is None:
                return CostModel()
            return CostModel(Path(base) / DEFAULT_FILENAME)
        return CostModel(spec)

    @property
    def jobs(self) -> int:
        """Worker-process count shards are scheduled across."""
        return self._jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        """The result cache, or ``None`` when caching is off."""
        return self._cache

    @property
    def records(self) -> Optional[RecordStore]:
        """The record store, or ``None`` when streaming is off."""
        return self._records

    @property
    def cost_model(self) -> Optional[CostModel]:
        """The scheduler's cost model, or ``None`` for unit counts."""
        return self._cost_model

    # ------------------------------------------------------------------
    # Public execution API
    # ------------------------------------------------------------------
    def run(
        self,
        spec: Union[str, ExperimentSpec],
        scale: str = "quick",
    ) -> ExperimentResult:
        """Run one experiment (cache-aware) and return its result.

        Raises
        ------
        Exception
            Whatever the experiment raised (resolution errors included).
        """
        batch = self.run_batch([spec], scale=scale)
        if batch.failures:
            raise batch.failures[0][1]
        result = batch.results[0]
        assert result is not None
        return result

    def run_many(
        self,
        specs: Optional[Sequence[Union[str, ExperimentSpec]]] = None,
        scale: str = "quick",
    ) -> List[ExperimentResult]:
        """Run several experiments (all canonical ones by default) through
        the global scheduler and return their results in request order.

        Raises
        ------
        Exception
            The first failure, after the rest of the batch has completed.
        """
        batch = self.run_batch(specs, scale=scale)
        if batch.failures:
            raise batch.failures[0][1]
        return [r for r in batch.results if r is not None]

    def run_batch(
        self,
        specs: Optional[Sequence[Union[str, ExperimentSpec]]] = None,
        scale: str = "quick",
    ) -> BatchResult:
        """Run a batch of experiments as one global shard schedule.

        Every selected experiment's shards are flattened into a single
        queue ordered largest-work-first (ties broken by shard index then
        request position, which round-robins equal-size shards across
        experiments) and drained by one ``ProcessPoolExecutor``; completed
        shards stream to the record store the moment they finish.  A
        failing experiment never aborts the others — it is reported in
        :attr:`BatchResult.failures` and, when streaming, leaves a
        resumable ``.partial`` file.

        Returns
        -------
        BatchResult
            Results in request order, failures, and the executed schedule.
        """
        chosen = list(specs) if specs is not None else canonical_keys()
        policy = self._effective_policy()
        started = time.perf_counter()
        previous = set_default_backend(policy)
        try:
            runs: List[_PreparedRun] = []
            seen: Dict[Tuple[str, str], _PreparedRun] = {}
            for position, item in enumerate(chosen):
                runs.append(self._prepare(item, scale, policy, position, seen))
            active = [
                r for r in runs
                if r.error is None and r.result is None and r.duplicate_of is None
            ]
            schedule = self._schedule(active)
            self._execute(schedule, (policy.mode, policy.auto_threshold))
            for run in active:
                if run.error is None:
                    try:
                        self._collect(run, policy, started)
                    except Exception as exc:  # noqa: BLE001 - isolate runs
                        run.error = exc
                if run.error is not None and run.writer is not None:
                    run.writer.abandon()
            for run in runs:
                if run.duplicate_of is not None:
                    run.result = run.duplicate_of.result
                    run.error = run.duplicate_of.error
            self._record_costs(active)
        finally:
            set_default_backend(previous)
        return BatchResult(
            results=tuple(r.result for r in runs),
            failures=tuple(
                (r.label, r.error) for r in runs if r.error is not None
            ),
            schedule=tuple(unit for unit, _ in schedule),
        )

    # ------------------------------------------------------------------
    # Batch internals
    # ------------------------------------------------------------------
    def _effective_policy(self) -> BackendPolicy:
        """The dispatch policy this run actually uses: the runner's own
        ``backend=`` argument, else the ambient process default (which
        reflects ``set_default_backend`` and the environment)."""
        if self._backend_mode is not None:
            return BackendPolicy.coerce(self._backend_mode)
        return default_backend()

    def _prepare(
        self,
        item: Union[str, ExperimentSpec],
        scale: str,
        policy: BackendPolicy,
        position: int,
        seen: Dict[Tuple[str, str], _PreparedRun],
    ) -> _PreparedRun:
        """Resolve one requested experiment into schedulable state.

        Resolves the spec, computes the digest, replays the cache or a
        finalized store file when possible, derives the work plan's units
        and shard layout (adopting a resumed partial file's layout), and
        opens the record-store writer.  A ``(key, digest)`` already in
        ``seen`` becomes a duplicate *before* any writer is opened — two
        writers on one ``.partial`` path would truncate each other.  Any
        exception is captured on the returned run instead of raised.
        """
        label = item.key if isinstance(item, ExperimentSpec) else str(item)
        run = _PreparedRun(label, position)
        run.scale = scale
        try:
            spec = resolve_spec(item)
            run.spec = spec
            params = spec.merged_params(scale)
            run.digest = spec_digest(
                spec, params, scale, f"{policy.mode}@{policy.auto_threshold}"
            )
            first = seen.get((spec.key, run.digest))
            if first is not None:
                run.duplicate_of = first
                return run
            seen[(spec.key, run.digest)] = run
            if self._cache is not None:
                cached = self._cache.load(spec.key, run.digest)
                if cached is not None:
                    # Re-stamp the provenance: jobs/backend/elapsed describe
                    # *this* invocation, not the run that filled the cache
                    # (whose wall-clock moves into the cache block).
                    run.result = cached.with_metadata(
                        jobs=self._jobs,
                        backend=policy.mode,
                        elapsed_s=0.0,
                        cache={
                            "digest": run.digest,
                            "hit": True,
                            "path": str(
                                self._cache.path_for(spec.key, run.digest)
                            ),
                            "stored_elapsed_s": cached.metadata.get("elapsed_s"),
                        },
                    )
                    return run
            if spec.replication is not None:
                run.kind = "replication"
                run.units = spec.replications_for(params)
                # Tasks may need the *total* unit count (e.g. for a
                # shard-invariant dispatch decision) — guarantee it is
                # present even when the spec relies on the plan's default.
                params = dict(params, replications=run.units)
            elif spec.sweep is not None:
                run.kind = "sweep"
                run.points = list(
                    _resolve_hook(spec.sweep.points)(dict(params))
                )
                run.units = len(run.points)
                if run.units == 0:
                    raise ValueError(
                        f"sweep plan of {spec.key!r} enumerated no points"
                    )
            else:
                run.kind = "task"
                run.units = 1
            run.params = dict(params)
            if self._cost_model is not None:
                run.seconds_per_unit = self._cost_model.seconds_per_unit(
                    spec.key, run.digest
                )
            run.shards = self._shard_bounds(
                run.units, seconds_per_unit=run.seconds_per_unit
            )
            if self._records is not None:
                if self._resume:
                    stored = self._records.load(spec.key, run.digest)
                    if stored is not None and stored.is_complete:
                        run.result = stored.to_experiment_result().with_metadata(
                            jobs=self._jobs,
                            backend=policy.mode,
                            elapsed_s=0.0,
                            records={
                                "path": str(stored.path),
                                "hit": True,
                                "resumed_shards": sorted(
                                    stored.completed_shards()
                                ),
                            },
                        )
                        return run
                writer = self._records.begin(
                    spec.key,
                    run.digest,
                    {
                        "version": STORE_VERSION,
                        "key": spec.key,
                        "title": spec.title,
                        "scale": scale,
                        "digest": run.digest,
                        "plan": run.kind,
                        "units": run.units,
                        "shards": [list(b) for b in run.shards],
                    },
                    resume=self._resume,
                )
                run.writer = writer
                carried = writer.carried_records
                if carried:
                    # The resumed layout wins; sealed shards are done.
                    run.shards = [
                        (int(lo), int(hi))
                        for lo, hi in writer.manifest.get("shards", [])
                    ]
                    for shard, records in carried.items():
                        if 0 <= shard < len(run.shards):
                            run.records_by_shard[shard] = records
                            run.resumed.append(shard)
        except Exception as exc:  # noqa: BLE001 - isolate requested runs
            run.error = exc
        return run

    def _schedule(
        self, active: Sequence[_PreparedRun]
    ) -> List[Tuple[WorkUnit, _PreparedRun]]:
        """The global largest-work-first shard queue for ``active`` runs.

        Sorted by descending predicted cost (measured seconds when the
        cost model knows the experiment, unit counts otherwise), then
        shard index, then request position — so equal-cost shards
        round-robin across experiments and every worker stays busy across
        experiment boundaries.

        A partially measured batch never compares seconds against raw
        unit counts: unmeasured runs borrow the median measured
        seconds-per-unit, so the whole queue sorts in one consistent
        unit.  Only when *no* run is measured does the order fall back to
        unit counts outright.
        """
        measured = sorted(
            r.seconds_per_unit for r in active if r.seconds_per_unit
        )
        fallback_spu = (
            measured[len(measured) // 2] if measured else None
        )
        entries: List[Tuple[WorkUnit, _PreparedRun]] = []
        for run in active:
            assert run.spec is not None
            spu = (
                run.seconds_per_unit
                if run.seconds_per_unit is not None
                else fallback_spu
            )
            for shard in run.pending:
                lo, hi = run.shards[shard]
                cost = None if spu is None else (hi - lo) * spu
                entries.append(
                    (
                        WorkUnit(
                            key=run.spec.key,
                            shard=shard,
                            lo=lo,
                            hi=hi,
                            kind=run.kind,
                            weight=hi - lo,
                            cost_s=cost,
                        ),
                        run,
                    )
                )
        entries.sort(
            key=lambda e: (
                -(e[0].cost_s if e[0].cost_s is not None else float(e[0].weight)),
                e[0].shard,
                e[1].position,
            )
        )
        return entries

    def _record_costs(self, active: Sequence[_PreparedRun]) -> None:
        """Feed this batch's shard timings into the cost model and persist.

        Only fully executed runs count — a resumed run's carried shards
        were never timed here, and a failed run's timings are partial —
        and each digest is measured once (the model ignores repeats).
        """
        if self._cost_model is None:
            return
        for run in active:
            if run.error is not None or run.spec is None:
                continue
            if len(run.shard_seconds) < len(run.shards):
                continue
            self._cost_model.observe(
                run.spec.key,
                run.digest,
                run.units,
                sum(run.shard_seconds.values()),
            )
        try:
            self._cost_model.save()
        except OSError:  # pragma: no cover - unwritable model path
            # The model is a scheduling hint; failing to persist it must
            # never fail a batch that computed its records successfully.
            pass

    def _job_for(
        self, run: _PreparedRun, unit: WorkUnit, backend: Tuple[str, int]
    ) -> _ShardJob:
        """The picklable worker payload for one scheduled shard."""
        assert run.spec is not None
        if run.kind == "replication":
            assert run.spec.replication is not None
            return _ShardJob(
                kind="replication",
                task=run.spec.task,
                params=run.params,
                lo=unit.lo,
                hi=unit.hi,
                seed=run.spec.replication.seed,
                total=run.units,
                backend=backend,
            )
        if run.kind == "sweep":
            assert run.points is not None
            return _ShardJob(
                kind="sweep",
                task=run.spec.task,
                params=run.params,
                lo=unit.lo,
                hi=unit.hi,
                points=tuple(run.points[unit.lo:unit.hi]),
                backend=backend,
            )
        return _ShardJob(
            kind="task",
            task=run.spec.task,
            params=run.params,
            lo=unit.lo,
            hi=unit.hi,
            backend=backend,
        )

    def _execute(
        self,
        schedule: Sequence[Tuple[WorkUnit, _PreparedRun]],
        backend: Tuple[str, int],
    ) -> None:
        """Drain the global shard queue, streaming records as shards land.

        ``jobs=1`` (or a single shard) executes inline in schedule order;
        otherwise every shard is submitted to one shared pool in schedule
        order and absorbed as it completes.  A shard failure poisons only
        its own experiment.
        """
        if not schedule:
            return
        if self._jobs == 1 or len(schedule) == 1:
            for unit, run in schedule:
                if run.error is not None:
                    continue
                try:
                    records, meta, elapsed = _run_job(
                        self._job_for(run, unit, backend)
                    )
                except Exception as exc:  # noqa: BLE001 - isolate runs
                    run.error = exc
                    continue
                self._absorb(run, unit.shard, records, meta, elapsed)
            return
        with ProcessPoolExecutor(max_workers=self._jobs) as pool:
            futures = {
                pool.submit(_run_job, self._job_for(run, unit, backend)): (unit, run)
                for unit, run in schedule
            }
            for future in as_completed(futures):
                unit, run = futures[future]
                try:
                    records, meta, elapsed = future.result()
                except Exception as exc:  # noqa: BLE001 - isolate runs
                    run.error = exc
                    continue
                self._absorb(run, unit.shard, records, meta, elapsed)

    def _absorb(
        self,
        run: _PreparedRun,
        shard: int,
        records: Sequence[Mapping[str, Any]],
        meta: Mapping[str, Any],
        elapsed: float = 0.0,
    ) -> None:
        """Bank one completed shard and stream it to the record store."""
        run.records_by_shard[shard] = list(records)
        run.shard_seconds[shard] = float(elapsed)
        run.finished_at = time.perf_counter()
        if meta:
            run.task_metadata.update(meta)
        if run.writer is not None:
            run.writer.append_shard(shard, records)

    def _collect(
        self, run: _PreparedRun, policy: BackendPolicy, started: float
    ) -> None:
        """Merge a finished run's shards, finalize, store, and cache.

        Shard records are concatenated in unit order (by each shard's
        ``lo``), the spec's ``finalize`` hook reduces them, provenance is
        stamped, the record stream is atomically finalized, and the cache
        entry (a store pointer when streaming) is written.

        Raises
        ------
        RuntimeError
            If a shard's records never arrived (a scheduler bug).
        """
        assert run.spec is not None
        missing = run.pending
        if missing:
            raise RuntimeError(
                f"experiment {run.spec.key} finished with shards {missing} "
                "missing"
            )
        records: List[Mapping[str, Any]] = []
        for shard in sorted(
            run.records_by_shard, key=lambda s: run.shards[s][0]
        ):
            records.extend(run.records_by_shard[shard])
        metadata: Dict[str, Any] = {}
        if run.kind == "replication":
            assert run.spec.replication is not None
            metadata.update(
                replications=run.units,
                seed=run.spec.replication.seed,
                shards=[list(b) for b in run.shards],
            )
        elif run.kind == "sweep":
            metadata.update(
                units=run.units,
                shards=[list(b) for b in run.shards],
            )
        if run.spec.finalize is not None:
            records, extra = _normalise_task_output(
                _resolve_hook(run.spec.finalize)(dict(run.params), list(records))
            )
            metadata.update(extra)
        else:
            metadata.update(run.task_metadata)
        # elapsed_s: batch start to this run's last completed shard —
        # per-run provenance, not the whole batch's wall-clock (shards of
        # other experiments interleave freely before that point).
        finished = run.finished_at if run.finished_at is not None \
            else time.perf_counter()
        metadata.update(
            scale=run.scale,
            jobs=self._jobs,
            backend=policy.mode,
            elapsed_s=round(finished - started, 6),
        )
        if self._cost_model is not None:
            metadata["cost"] = {
                "predicted_seconds_per_unit": run.seconds_per_unit,
                "measured_s": round(sum(run.shard_seconds.values()), 6),
            }
        store_path: Optional[Path] = None
        if run.writer is not None and self._records is not None:
            metadata["records"] = {
                "path": str(run.writer.final_path),
                "format": "jsonl+parquet" if self._records.parquet else "jsonl",
                "resumed_shards": sorted(run.resumed),
            }
        result = ExperimentResult(
            key=run.spec.key,
            title=run.spec.title,
            scale=run.scale,
            records=tuple(dict(r) for r in records),
            metadata=metadata,
        )
        if run.writer is not None and self._records is not None:
            store_path = self._records.finalize(run.writer, result.to_dict())
        if self._cache is not None:
            path = self._cache.store(
                run.spec.key, run.digest, result, store_path=store_path
            )
            result = result.with_metadata(
                cache={"digest": run.digest, "hit": False, "path": str(path)}
            )
        run.result = result

    #: Smallest worthwhile shard duration: below this, process and
    #: pickling overhead dominates the shard's own work.
    MIN_SHARD_SECONDS: ClassVar[float] = 0.2

    #: How many shards per worker the cost model aims for — enough slack
    #: for the pool to rebalance around mispredictions and stragglers.
    OVERPARTITION: ClassVar[int] = 4

    def _shard_bounds(
        self, units: int, seconds_per_unit: Optional[float] = None
    ) -> List[Tuple[int, int]]:
        """Split ``units`` into contiguous shards.

        Without a cost weight, the legacy unit-count rule applies: at most
        ``jobs`` equal shards.  With a measured ``seconds_per_unit`` the
        shard count targets a *duration* — the run's predicted seconds
        divided by a target shard length of
        ``max(MIN_SHARD_SECONDS, predicted / (OVERPARTITION * jobs))`` —
        so cheap experiments collapse to one shard (no pointless fan-out)
        and expensive ones split finely enough for the global queue to
        load-balance.  The boundaries never affect the records (units are
        seed-addressable), only the schedule.
        """
        if seconds_per_unit is not None and seconds_per_unit > 0:
            predicted = units * seconds_per_unit
            target = max(
                self.MIN_SHARD_SECONDS,
                predicted / (self.OVERPARTITION * self._jobs),
            )
            shards = int(np.ceil(predicted / target))
            shards = max(1, min(units, shards))
        else:
            shards = max(1, min(self._jobs, units))
        edges = np.linspace(0, units, shards + 1).astype(int)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(edges[:-1], edges[1:])
            if hi > lo
        ]


def _normalise_task_output(output: Any) -> Tuple[List[Mapping[str, Any]], Dict[str, Any]]:
    """Accept ``records`` or ``(records, metadata)`` from task hooks."""
    if (
        isinstance(output, tuple)
        and len(output) == 2
        and isinstance(output[1], Mapping)
    ):
        return list(output[0]), dict(output[1])
    return list(output), {}


def resolve_spec(spec: Union[str, ExperimentSpec]) -> ExperimentSpec:
    """A spec object, or a registry lookup (loading the canonical specs
    on first use).

    Raises
    ------
    KeyError
        If ``spec`` names no registered experiment.
    """
    if isinstance(spec, ExperimentSpec):
        return spec
    _ensure_canonical_specs()
    return EXPERIMENT_SPECS.get(str(spec))


def canonical_keys() -> List[str]:
    """The canonical experiment ids E1..E11, in paper order."""
    _ensure_canonical_specs()
    seen: Dict[str, ExperimentSpec] = {}
    for name in EXPERIMENT_SPECS:
        spec = EXPERIMENT_SPECS.get(name)
        seen.setdefault(spec.key, spec)
    def _order(key: str) -> Tuple[int, str]:
        if key.upper().startswith("E") and key[1:].isdigit():
            return (int(key[1:]), key)
        return (10 ** 6, key)
    return sorted(seen, key=_order)


def _ensure_canonical_specs() -> None:
    from importlib import import_module

    if "e1" not in EXPERIMENT_SPECS:
        import_module("repro.experiments.specs")
