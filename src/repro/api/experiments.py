"""Declarative experiment specs and the sharded, cached experiment runner.

The paper's empirical claims (E1–E11) used to live in ad-hoc scripts that
hand-rolled replication loops and returned pre-formatted strings.  This
module turns each experiment into *data*:

* :class:`ExperimentSpec` — a declarative description: which task
  computes the records, the parameter sets per scale (``smoke`` /
  ``quick`` / ``full``), an optional :class:`ReplicationPlan` (Monte
  Carlo experiments), and an optional :class:`EstimationPlan` naming the
  scheme/target/estimators through the PR 2 registries so the estimation
  pipeline is resolved by the facade, not hard-wired in the script;
* :class:`ExperimentRunner` — executes specs, shards replications across
  processes (``ProcessPoolExecutor``), and memoizes completed runs in an
  on-disk JSON cache keyed by a content hash of the spec;
* :class:`ExperimentResult` — structured records plus metadata; rendering
  lives in :mod:`repro.experiments.report`, not here.

Determinism
-----------
Replicated experiments draw their randomness from
``numpy.random.SeedSequence(plan.seed).spawn(replications)`` — one child
sequence *per replication*, independent of how replications are grouped
into shards.  Shard ``[lo, hi)`` consumes children ``lo..hi-1`` and the
runner merges shard outputs in index order, so the records are
bit-identical for any ``--jobs`` value (and for a cache replay).

Caching
-------
A run is cached under ``<cache_dir>/<key>-<digest>.json`` where
``digest`` is the SHA-256 of the canonical JSON of the run's identity:
the cache format version, the spec's key and task/finalize hooks
(including their *source text*, so editing a task invalidates its
entries), the fully merged parameters, the replication plan, the
estimation plan, the scale name and the *effective* backend policy
(mode and auto-threshold, whether it came from the runner's ``backend=``
argument, ``set_default_backend`` or the environment).  Changing any of
them produces a new digest (old entries are simply never read again);
deleting the directory clears the cache.  Changes in library code the
hooks call are *not* hashed — bump ``CACHE_VERSION`` (or delete the
directory) after such changes.  No ``cache_dir`` means no caching.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import BackendPolicy, BackendSpec, default_backend, set_default_backend
from .registry import Registry

__all__ = [
    "SCALES",
    "ReplicationPlan",
    "EstimationPlan",
    "ExperimentSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "EXPERIMENT_SPECS",
    "register_experiment",
    "spec_digest",
]

#: Recognised parameter scales, smallest first.
SCALES = ("smoke", "quick", "full")

#: Bumping this invalidates every existing cache entry (schema changes).
CACHE_VERSION = 1

#: Environment variable supplying a default cache directory.
ENV_CACHE_DIR = "REPRO_EXPERIMENT_CACHE"


@dataclass(frozen=True)
class ReplicationPlan:
    """Monte-Carlo replication: how many independent runs, from which seed.

    ``replications`` is the default count; a spec's per-scale parameters
    may override it with a ``"replications"`` entry.  ``seed`` feeds the
    root :class:`numpy.random.SeedSequence` from which every
    replication's child sequence is spawned.
    """

    seed: int = 0
    replications: int = 1

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be at least 1")


@dataclass(frozen=True)
class EstimationPlan:
    """Registry-resolved estimation pipeline used by a spec's task.

    Names refer to the :mod:`repro.api.registry` registries, so the same
    keys work in :class:`~repro.api.session.EstimationSession`; the task
    receives the plan through its parameters (key ``"estimation"``) and
    builds sessions from it instead of importing estimator classes.
    ``estimators`` maps report labels (``"L*"``) to estimator registry
    keys (``"lstar_symmetric"``).
    """

    scheme: str = "pps"
    target: str = "one_sided_range"
    estimators: Mapping[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "target": self.target,
            "estimators": dict(self.estimators),
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of the paper, as data.

    Attributes
    ----------
    key:
        Canonical id (``"E9"``).
    title:
        Human-readable title used by the reports.
    task:
        ``"module.path:function"`` computing the records.  Plain specs
        use ``task(params) -> (records, metadata)``; replicated specs use
        ``task(params, children, start) -> records`` where ``children``
        are the replication :class:`~numpy.random.SeedSequence` objects
        of the shard and ``start`` the index of the first one.
    finalize:
        For replicated specs: ``"module.path:function"`` reducing the
        merged per-replication records, ``finalize(params, records) ->
        (records, metadata)``.
    params:
        Base parameters common to every scale.
    scales:
        Scale name -> parameter overrides (merged over ``params``).
    replication:
        Present exactly when the task is sharded Monte Carlo.
    estimation:
        Optional registry-resolved pipeline description, passed to the
        task as ``params["estimation"]``.
    aliases:
        Additional registry names (``"lp_difference"`` for ``"E9"``).
    """

    key: str
    title: str
    task: str
    finalize: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    scales: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    replication: Optional[ReplicationPlan] = None
    estimation: Optional[EstimationPlan] = None
    aliases: Tuple[str, ...] = ()

    def merged_params(self, scale: str = "quick") -> Dict[str, Any]:
        """Base params overlaid with the scale's overrides (and the
        estimation plan, when one is declared)."""
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
        params = dict(self.params)
        params.update(self.scales.get(scale, {}))
        if self.estimation is not None:
            params.setdefault("estimation", self.estimation.as_dict())
        return params

    def replications_for(self, params: Mapping[str, Any]) -> int:
        if self.replication is None:
            return 0
        return int(params.get("replications", self.replication.replications))


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment run.

    ``records`` is a tuple of flat JSON-serialisable mappings (one table
    row each); ``metadata`` carries experiment-level extras — check
    outcomes, winner summaries, ``notes`` (plain lines for the text
    report), and the runner's provenance block.
    """

    key: str
    title: str
    scale: str
    records: Tuple[Mapping[str, Any], ...]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "title": self.title,
            "scale": self.scale,
            "records": [dict(r) for r in self.records],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            key=payload["key"],
            title=payload["title"],
            scale=payload["scale"],
            records=tuple(dict(r) for r in payload["records"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def with_metadata(self, **extra: Any) -> "ExperimentResult":
        merged = dict(self.metadata)
        merged.update(extra)
        return replace(self, metadata=merged)


#: The experiment-spec registry; the canonical specs self-register from
#: :mod:`repro.experiments.specs` on first lookup.
EXPERIMENT_SPECS = Registry("experiment")


def register_experiment(spec: ExperimentSpec, *, overwrite: bool = False) -> ExperimentSpec:
    """Register ``spec`` under its key and every alias."""
    EXPERIMENT_SPECS.register(spec.key, spec, overwrite=overwrite)
    for alias in spec.aliases:
        EXPERIMENT_SPECS.register(alias, spec, overwrite=overwrite)
    return spec


def _canonical(value: Any) -> Any:
    """Reduce a parameter structure to canonical JSON-able form."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _hook_source(path: Optional[str]) -> Optional[str]:
    """Source text of a task hook, for the cache digest.

    Hashing the hook's source (not just its dotted path) means editing a
    task function invalidates its cached results automatically.  Changes
    in code the hook *calls* are not captured — that is what the manual
    ``CACHE_VERSION`` bump (or deleting the cache directory) is for.
    """
    if path is None:
        return None
    import inspect

    try:
        return inspect.getsource(_resolve_hook(path))
    except (OSError, TypeError):  # pragma: no cover - builtins/C hooks
        return None


def spec_digest(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    scale: str,
    backend: Optional[str] = None,
) -> str:
    """Content hash identifying a run for the cache.

    Covers everything in the spec that can change the records — the
    task/finalize hooks (by source text), the merged parameters, the
    replication and estimation plans, the scale and the backend mode —
    plus the cache format version; see the module docstring for the
    invalidation rule.
    """
    payload = {
        "version": CACHE_VERSION,
        "key": spec.key,
        "task": spec.task,
        "task_source": _hook_source(spec.task),
        "finalize": spec.finalize,
        "finalize_source": _hook_source(spec.finalize),
        "scale": scale,
        "params": _canonical(params),
        "replication": None
        if spec.replication is None
        else {
            "seed": spec.replication.seed,
            "replications": spec.replications_for(params),
        },
        "estimation": None if spec.estimation is None
        else _canonical(spec.estimation.as_dict()),
        "backend": backend,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _resolve_hook(path: str):
    """Import ``"module.path:function"`` (tasks must be module-level so
    shards can resolve them in worker processes)."""
    from importlib import import_module

    module_name, _, func_name = path.partition(":")
    if not func_name:
        raise ValueError(
            f"task path {path!r} must look like 'package.module:function'"
        )
    return getattr(import_module(module_name), func_name)


def _run_shard(
    task_path: str,
    params: Mapping[str, Any],
    seed: int,
    total: int,
    lo: int,
    hi: int,
    backend: Tuple[str, int],
) -> List[Mapping[str, Any]]:
    """Execute replications ``[lo, hi)`` of a replicated task.

    Runs in a worker process (or inline for ``jobs=1`` — same code path,
    so the two are bit-identical).  ``backend`` is the parent's
    *effective* policy (mode, auto_threshold): installing it explicitly
    keeps workers on the parent's dispatch rule even under spawn-style
    start methods, where an in-process ``set_default_backend`` override
    would otherwise not be inherited.  The full child-sequence list is
    spawned and sliced, which is what makes the result independent of the
    shard boundaries.
    """
    set_default_backend(BackendPolicy(mode=backend[0], auto_threshold=backend[1]))
    task = _resolve_hook(task_path)
    children = np.random.SeedSequence(seed).spawn(total)[lo:hi]
    return task(dict(params), children, lo)


class ResultCache:
    """On-disk JSON store of completed :class:`ExperimentResult` runs."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, key: str, digest: str) -> Path:
        return self._root / f"{key}-{digest}.json"

    def load(self, key: str, digest: str) -> Optional[ExperimentResult]:
        path = self.path_for(key, digest)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("digest") != digest:
            return None
        return ExperimentResult.from_dict(payload["result"])

    def store(self, key: str, digest: str, result: ExperimentResult) -> Path:
        self._root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key, digest)
        # Per-writer tmp name: concurrent runs storing the same digest
        # must not consume each other's tmp file mid-replace.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(
            {"digest": digest, "result": result.to_dict()}, sort_keys=True
        ))
        tmp.replace(path)
        return path


class ExperimentRunner:
    """Executes :class:`ExperimentSpec` runs with sharding and caching.

    Parameters
    ----------
    jobs:
        Worker processes for replicated specs.  ``1`` runs everything
        inline; any value yields bit-identical records (see module
        docstring).
    cache_dir:
        Directory for the result cache; ``None`` consults the
        ``REPRO_EXPERIMENT_CACHE`` environment variable and, when that is
        unset too, disables caching.
    backend:
        Backend policy installed (process-wide, restored afterwards) for
        the duration of each run; shards install it in their workers.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[None, str, os.PathLike] = None,
        backend: BackendSpec = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self._jobs = int(jobs)
        if cache_dir is None:
            cache_dir = os.environ.get(ENV_CACHE_DIR, "").strip() or None
        self._cache = None if cache_dir is None else ResultCache(cache_dir)
        self._backend_mode = (
            None if backend is None else BackendPolicy.coerce(backend).mode
        )

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _effective_policy(self) -> BackendPolicy:
        """The dispatch policy this run actually uses: the runner's own
        ``backend=`` argument, else the ambient process default (which
        reflects ``set_default_backend`` and the environment)."""
        if self._backend_mode is not None:
            return BackendPolicy.coerce(self._backend_mode)
        return default_backend()

    def run(
        self,
        spec: Union[str, ExperimentSpec],
        scale: str = "quick",
    ) -> ExperimentResult:
        """Run one experiment (cache-aware) and return its result."""
        spec = resolve_spec(spec)
        params = spec.merged_params(scale)
        policy = self._effective_policy()
        # The digest keys on the *effective* policy, so runs under
        # different REPRO_BACKEND / set_default_backend settings never
        # share cache entries (the two paths agree only to 1e-9, not
        # bit for bit).
        digest = spec_digest(
            spec, params, scale, f"{policy.mode}@{policy.auto_threshold}"
        )
        if self._cache is not None:
            cached = self._cache.load(spec.key, digest)
            if cached is not None:
                # Re-stamp the provenance: jobs/backend/elapsed describe
                # *this* invocation, not the run that filled the cache
                # (whose wall-clock moves into the cache block).
                return cached.with_metadata(
                    jobs=self._jobs,
                    backend=policy.mode,
                    elapsed_s=0.0,
                    cache={
                        "digest": digest,
                        "hit": True,
                        "path": str(self._cache.path_for(spec.key, digest)),
                        "stored_elapsed_s": cached.metadata.get("elapsed_s"),
                    },
                )
        started = time.perf_counter()
        previous = set_default_backend(policy)
        try:
            if spec.replication is not None:
                records, metadata = self._run_replicated(spec, params, policy)
            else:
                records, metadata = _normalise_task_output(
                    _resolve_hook(spec.task)(dict(params))
                )
        finally:
            set_default_backend(previous)
        elapsed = time.perf_counter() - started
        metadata = dict(metadata)
        metadata.update(
            scale=scale,
            jobs=self._jobs,
            backend=policy.mode,
            elapsed_s=round(elapsed, 6),
        )
        result = ExperimentResult(
            key=spec.key,
            title=spec.title,
            scale=scale,
            records=tuple(dict(r) for r in records),
            metadata=metadata,
        )
        if self._cache is not None:
            path = self._cache.store(spec.key, digest, result)
            result = result.with_metadata(
                cache={"digest": digest, "hit": False, "path": str(path)}
            )
        return result

    def run_many(
        self,
        specs: Optional[Sequence[Union[str, ExperimentSpec]]] = None,
        scale: str = "quick",
    ) -> List[ExperimentResult]:
        """Run several experiments (all canonical ones by default)."""
        chosen = specs if specs is not None else canonical_keys()
        return [self.run(spec, scale=scale) for spec in chosen]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_replicated(
        self, spec: ExperimentSpec, params: Mapping[str, Any],
        policy: BackendPolicy,
    ) -> Tuple[List[Mapping[str, Any]], Dict[str, Any]]:
        replications = spec.replications_for(params)
        seed = spec.replication.seed
        # Tasks may need the *total* replication count (e.g. for a
        # shard-invariant dispatch decision) — guarantee it is present
        # even when the spec relies on the plan's default.
        params = dict(params, replications=replications)
        backend = (policy.mode, policy.auto_threshold)
        shards = self._shard_bounds(replications)
        if len(shards) == 1:
            lo, hi = shards[0]
            records = _run_shard(
                spec.task, params, seed, replications, lo, hi, backend,
            )
        else:
            records = []
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                futures = [
                    pool.submit(
                        _run_shard, spec.task, params, seed, replications,
                        lo, hi, backend,
                    )
                    for lo, hi in shards
                ]
                for future in futures:  # submission order == index order
                    records.extend(future.result())
        metadata: Dict[str, Any] = {
            "replications": replications,
            "seed": seed,
            "shards": [list(b) for b in shards],
        }
        if spec.finalize is not None:
            records, extra = _normalise_task_output(
                _resolve_hook(spec.finalize)(dict(params), list(records))
            )
            metadata.update(extra)
        return list(records), metadata

    def _shard_bounds(self, replications: int) -> List[Tuple[int, int]]:
        shards = max(1, min(self._jobs, replications))
        edges = np.linspace(0, replications, shards + 1).astype(int)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(edges[:-1], edges[1:])
            if hi > lo
        ]


def _normalise_task_output(output: Any) -> Tuple[List[Mapping[str, Any]], Dict[str, Any]]:
    """Accept ``records`` or ``(records, metadata)`` from task hooks."""
    if (
        isinstance(output, tuple)
        and len(output) == 2
        and isinstance(output[1], Mapping)
    ):
        return list(output[0]), dict(output[1])
    return list(output), {}


def resolve_spec(spec: Union[str, ExperimentSpec]) -> ExperimentSpec:
    """A spec object, or a registry lookup (loading the canonical specs
    on first use)."""
    if isinstance(spec, ExperimentSpec):
        return spec
    _ensure_canonical_specs()
    return EXPERIMENT_SPECS.get(str(spec))


def canonical_keys() -> List[str]:
    """The canonical experiment ids E1..E11, in paper order."""
    _ensure_canonical_specs()
    seen: Dict[str, ExperimentSpec] = {}
    for name in EXPERIMENT_SPECS:
        spec = EXPERIMENT_SPECS.get(name)
        seen.setdefault(spec.key, spec)
    def _order(key: str) -> Tuple[int, str]:
        if key.upper().startswith("E") and key[1:].isdigit():
            return (int(key[1:]), key)
        return (10 ** 6, key)
    return sorted(seen, key=_order)


def _ensure_canonical_specs() -> None:
    from importlib import import_module

    if "e1" not in EXPERIMENT_SPECS:
        import_module("repro.experiments.specs")
