"""The estimation-session facade: one fluent surface over the pipeline.

The paper's framework is a single coherent pipeline — monotone sampling
scheme → outcome → customized estimator → aggregate query — previously
exposed as four disconnected module surfaces.  :class:`EstimationSession`
owns the whole flow:

* **scheme construction** from a registry name (``scheme="pps"``) plus
  per-instance weights, or any ready-made scheme object;
* **target / estimator resolution** through the plugin registries, so
  strings, classes and instances are interchangeable;
* **seed management** — explicit per-item seeds, a shared generator, or
  deterministic key hashing, with the same precedence everywhere;
* **backend policy** — one :class:`~repro.api.backend.BackendPolicy`
  replaces every scattered ``backend=`` keyword and auto-dispatches by
  input size;
* **result objects** (:class:`~repro.api.results.EstimateResult`)
  carrying the estimate, its variance when available, and sample
  metadata.

Quickstart::

    from repro.api import EstimationSession

    session = (
        EstimationSession([1.0, 1.0], scheme="pps", backend="auto")
        .target("one_sided_range", p=1)
        .estimator("lstar")
    )
    session.estimate((0.6, 0.2), seed=0.35).value      # one item
    session.estimate(dataset, rng=7).value             # a whole dataset
    session.query("lpp", dataset, p=1.0)               # exact ground truth
    session.simulate([(0.6, 0.2)] * 50, replications=200).std_error
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from .backend import BackendPolicy, BackendSpec
from .registry import ESTIMATORS, QUERIES, SCHEMES, TARGETS
from .results import EstimateResult
from ..core.functions import EstimationTarget
from ..core.schemes import MonotoneSamplingScheme

__all__ = ["EstimationSession", "Session"]


class EstimationSession:
    """Fluent builder and runner for monotone-sampling estimation.

    Parameters
    ----------
    weights:
        Per-instance scheme weights — for ``scheme="pps"`` the PPS rates
        ``tau*`` (``[1.0, 1.0]`` is the canonical two-instance setting of
        the paper's examples).  Ignored when ``scheme`` is already a
        scheme object.
    scheme:
        A registry name (``"pps"``, ``"step"``, ...) or a ready
        :class:`~repro.core.schemes.MonotoneSamplingScheme`.
    backend:
        ``None`` (process default), a mode string, or a
        :class:`~repro.api.backend.BackendPolicy`.
    salt:
        Salt for deterministic (hashed) per-item seeds.
    """

    def __init__(
        self,
        weights: Optional[Sequence[float]] = None,
        scheme: Union[str, MonotoneSamplingScheme] = "pps",
        backend: BackendSpec = None,
        *,
        salt: str = "",
    ) -> None:
        # Scheme construction is lazy: exact queries need no scheme, so a
        # bare ``EstimationSession()`` is a valid query runner.
        if isinstance(scheme, MonotoneSamplingScheme):
            self._scheme_obj: Optional[MonotoneSamplingScheme] = scheme
        else:
            self._scheme_obj = None
            self._scheme_name = scheme
            self._weights = weights
        self._policy = BackendPolicy.coerce(backend)
        self._salt = salt
        self._target: Optional[EstimationTarget] = None
        self._estimator_spec: Any = None
        self._estimator_params: Mapping[str, Any] = {}
        self._instances: Optional[Sequence[int]] = None

    # ------------------------------------------------------------------
    # Fluent configuration
    # ------------------------------------------------------------------
    def target(self, target: Union[str, EstimationTarget], **params: Any) -> "EstimationSession":
        """Set the per-item target function (registry name or instance).

        Parameters
        ----------
        target:
            A target registry key (``"one_sided_range"``) or a ready
            :class:`~repro.core.functions.EstimationTarget`.
        **params:
            Factory parameters for registry-name targets (``p=2.0``).

        Returns
        -------
        EstimationSession
            ``self``, for fluent chaining.

        Raises
        ------
        TypeError
            If ``params`` are passed alongside a target instance.
        KeyError
            If the name is not registered.
        """
        if isinstance(target, str):
            self._target = TARGETS.get(target)(**params)
        else:
            if params:
                raise TypeError("params only apply to registry-name targets")
            self._target = target
        return self

    def estimator(self, estimator: Any = "lstar", **params: Any) -> "EstimationSession":
        """Set the per-item estimator (registry name, factory, or instance).

        ``params`` are forwarded to the factory when ``estimator`` is a
        registry name or callable.  Returns ``self`` for chaining;
        resolution (and therefore unknown-name ``KeyError``) happens at
        the first estimating call.
        """
        self._estimator_spec = estimator
        self._estimator_params = dict(params)
        return self

    def backend(self, spec: BackendSpec) -> "EstimationSession":
        """Replace the backend policy (``None`` / mode string / policy).

        Returns ``self`` for chaining; raises :class:`TypeError` or
        :class:`ValueError` on an unrecognised spec.
        """
        self._policy = BackendPolicy.coerce(spec)
        return self

    def instances(self, instances: Optional[Sequence[int]]) -> "EstimationSession":
        """Select (and order) the instances forming each item tuple.

        ``None`` restores the default (all instances, scheme order).
        Returns ``self`` for chaining.
        """
        self._instances = None if instances is None else tuple(instances)
        return self

    def fork(self) -> "EstimationSession":
        """An independent copy (same scheme object, separate config)."""
        if self._scheme_obj is not None:
            clone = EstimationSession(scheme=self._scheme_obj,
                                      salt=self._salt, backend=self._policy)
        else:
            clone = EstimationSession(self._weights, scheme=self._scheme_name,
                                      salt=self._salt, backend=self._policy)
        clone._target = self._target
        clone._estimator_spec = self._estimator_spec
        clone._estimator_params = dict(self._estimator_params)
        clone._instances = self._instances
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> MonotoneSamplingScheme:
        """The session's sampling scheme, constructed on first access.

        Raises
        ------
        ValueError
            If the session was built without weights and no ready-made
            scheme object was supplied.
        """
        if self._scheme_obj is None:
            if self._weights is None:
                raise ValueError(
                    "this operation needs a sampling scheme; construct the "
                    "session with per-instance weights, e.g. "
                    "EstimationSession([1.0, 1.0], scheme='pps')"
                )
            self._scheme_obj = SCHEMES.get(self._scheme_name)(self._weights)
        return self._scheme_obj

    @property
    def policy(self) -> BackendPolicy:
        """The backend policy governing this session's dispatch."""
        return self._policy

    def describe(self) -> Mapping[str, Any]:
        """The session configuration as a flat dict."""
        scheme = self._scheme_obj
        return {
            "scheme": type(scheme).__name__ if scheme is not None
            else self._scheme_name,
            "dimension": getattr(scheme, "dimension", None),
            "target": repr(self._target) if self._target is not None else None,
            "estimator": self._resolved_estimator().name
            if self._target is not None or self._is_estimator_instance()
            else self._estimator_spec,
            "backend": self._policy.mode,
            "auto_threshold": self._policy.auto_threshold,
            "instances": self._instances,
        }

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        data: Any,
        *,
        seed: Optional[float] = None,
        seeds: Optional[Mapping[Any, float]] = None,
        rng: Any = None,
        salt: Optional[str] = None,
        selection: Optional[Iterable[Any]] = None,
    ) -> EstimateResult:
        """Estimate the target (sum-)aggregate from sampled ``data``.

        ``data`` may be a single item tuple (``seed`` required — the
        item's uniform seed in ``(0, 1]``), an already coordinated
        :class:`~repro.aggregates.coordinated.CoordinatedSample`, a
        :class:`~repro.aggregates.dataset.MultiInstanceDataset`, a mapping
        ``key -> weight tuple``, or a dense ``(n, r)`` array of weights.
        For collection inputs the seed precedence matches the samplers:
        explicit ``seeds`` mapping, then ``rng`` (a generator or an int
        seeding one), then a salted hash of each key.
        """
        from ..aggregates.coordinated import CoordinatedSample

        if isinstance(data, CoordinatedSample):
            return self._estimate_sample(data, selection)
        if self._looks_like_vector(data):
            return self._estimate_single(data, seed)
        dataset = self._as_dataset(data)
        return self._estimate_dataset(
            dataset, seeds=seeds, rng=_as_rng(rng, seed), salt=salt,
            selection=selection,
        )

    def sample(
        self,
        dataset: Any,
        *,
        seeds: Optional[Mapping[Any, float]] = None,
        rng: Any = None,
        salt: Optional[str] = None,
    ):
        """Coordinated-PPS-sample a dataset under this session's scheme."""
        from ..aggregates.coordinated import CoordinatedPPSSampler

        sampler = CoordinatedPPSSampler(
            self._linear_rates(), salt=self._salt if salt is None else salt
        )
        return sampler.sample(self._as_dataset(dataset), rng=_as_rng(rng, None),
                              seeds=seeds)

    def query(self, query: str, dataset: Any, **kwargs: Any) -> EstimateResult:
        """Evaluate an exact (ground-truth) query from the query registry.

        The backend policy picks scalar or vectorized evaluation by
        dataset size; pass ``backend=`` (a mode string or a policy) to
        override for this call.  Queries flagged
        ``explicit_backend_only`` — the built-in ``"sum"``, whose scalar
        and vectorized paths hand the item function different inputs —
        stay scalar under an ``"auto"`` policy and switch only on an
        explicit fixed mode.  For the ``"custom"`` query the session's
        target is used when none is given.
        """
        func = QUERIES.get(query)
        dataset = self._as_dataset(dataset)
        override = kwargs.pop("backend", None)
        policy = (
            self._policy if override is None else BackendPolicy.coerce(override)
        )
        if getattr(func, "explicit_backend_only", False):
            backend = policy.mode if policy.mode != "auto" else "scalar"
        else:
            backend = policy.resolve_exact(len(dataset))
        if "target" in _kwarg_names(func) and "target" not in kwargs \
                and self._target is not None:
            kwargs["target"] = self._target
        value = float(func(dataset, backend=backend, **kwargs))
        target_obj = kwargs.get("target")
        return EstimateResult(
            value=value,
            estimator="exact",
            target=repr(target_obj) if target_obj is not None else "",
            backend=backend,
            items_seen=len(dataset),
            metadata={"query": query},
        )

    def simulate(
        self,
        tuples: Sequence[Sequence[float]],
        replications: int = 200,
        rng: Any = None,
        *,
        seeds: Any = None,
    ) -> EstimateResult:
        """Monte-Carlo sum-aggregate estimation over many replications.

        Wraps :func:`repro.analysis.simulation.simulate_sum_estimate`
        with the session's scheme, target, estimator and backend policy;
        the result carries the empirical mean, variance and error
        statistics.  ``seeds`` (shape ``(replications, len(tuples))``)
        supplies every replication's per-item seeds explicitly instead of
        drawing from ``rng`` — the hook the experiment runner uses for
        shard-invariant, replication-addressable randomness.
        """
        from ..analysis.simulation import simulate_sum_estimate

        estimator = self._resolved_estimator()
        summary = simulate_sum_estimate(
            estimator,
            self.scheme,
            self._require_target(),
            tuples,
            replications=replications,
            rng=_as_rng(rng, None),
            backend=self._policy,
            seeds=seeds,
        )
        return EstimateResult(
            value=summary.mean,
            estimator=estimator.name,
            target=repr(self._target),
            backend=self._policy.resolve(replications * len(tuples)),
            items_seen=len(tuples),
            variance=summary.variance,
            metadata={
                "replications": replications,
                "true_value": summary.true_value,
                "bias": summary.bias,
                "rmse": summary.rmse,
                "summary": summary,
            },
        )

    def moments(self, vector: Sequence[float], rtol: float = 1e-8) -> EstimateResult:
        """Exact per-item moments (quadrature over the seed) for ``vector``."""
        from ..analysis.variance import moments as exact_moments

        estimator = self._resolved_estimator()
        report = exact_moments(
            estimator, self.scheme, self._require_target(), vector, rtol=rtol
        )
        return EstimateResult(
            value=report.mean,
            estimator=estimator.name,
            target=repr(self._target),
            backend="scalar",
            items_seen=1,
            variance=report.variance,
            metadata={
                "true_value": report.true_value,
                "second_moment": report.second_moment,
                "bias": report.bias,
                "report": report,
            },
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_target(self) -> EstimationTarget:
        if self._target is None:
            raise ValueError(
                "no target set; call .target(name_or_instance) first "
                f"(registered targets: {', '.join(TARGETS.names())})"
            )
        return self._target

    def _is_estimator_instance(self) -> bool:
        from ..estimators.base import Estimator

        return isinstance(self._estimator_spec, Estimator)

    def _resolved_estimator(self):
        from ..estimators.base import Estimator

        spec = self._estimator_spec if self._estimator_spec is not None else "lstar"
        if isinstance(spec, Estimator):
            return spec
        if isinstance(spec, str):
            factory = ESTIMATORS.get(spec)
            return factory(self._require_target(), **self._estimator_params)
        if callable(spec):
            return spec(self._require_target(), **self._estimator_params)
        raise TypeError(f"cannot resolve estimator from {spec!r}")

    def _linear_rates(self) -> Sequence[float]:
        from ..core.schemes import CoordinatedScheme, LinearThreshold

        if not isinstance(self.scheme, CoordinatedScheme):
            raise TypeError(
                "dataset sampling requires a coordinated scheme"
            )
        rates = []
        for threshold in self.scheme.thresholds:
            if not isinstance(threshold, LinearThreshold):
                raise TypeError(
                    "dataset sampling requires PPS (linear) thresholds; "
                    "sample items individually for other schemes"
                )
            rates.append(threshold.tau_star)
        return rates

    @staticmethod
    def _looks_like_vector(data: Any) -> bool:
        if isinstance(data, np.ndarray):
            return data.ndim == 1
        if isinstance(data, (list, tuple)):
            return len(data) > 0 and isinstance(data[0], Real)
        return False

    def _as_dataset(self, data: Any):
        from ..aggregates.dataset import MultiInstanceDataset

        if isinstance(data, MultiInstanceDataset):
            return data
        dimension = self.scheme.dimension
        names = [f"instance{i}" for i in range(dimension)]
        if isinstance(data, Mapping):
            return MultiInstanceDataset(names, dict(data))
        rows = np.asarray(data, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != dimension:
            raise ValueError(
                f"cannot interpret data of shape {rows.shape} as items over "
                f"{dimension} instances"
            )
        return MultiInstanceDataset(
            names, {k: tuple(row) for k, row in enumerate(rows)}
        )

    def _estimate_single(self, vector: Sequence[float], seed: Optional[float]) -> EstimateResult:
        if seed is None:
            raise ValueError(
                "estimating a single item requires its uniform seed in "
                "(0, 1]: estimate(vector, seed=...)"
            )
        estimator = self._resolved_estimator()
        self._require_target()
        outcome = self.scheme.sample(vector, float(seed))
        if self._instances is not None:
            # Mirror CoordinatedSample.outcome_for: the target sees the
            # selected entries under the matching restricted scheme.
            from ..core.outcome import Outcome
            from ..core.schemes import CoordinatedScheme

            if not isinstance(self.scheme, CoordinatedScheme):
                raise TypeError(
                    "instance selection requires a coordinated scheme"
                )
            outcome = Outcome(
                seed=outcome.seed,
                values=tuple(outcome.values[i] for i in self._instances),
                scheme=CoordinatedScheme(
                    [self.scheme.thresholds[i] for i in self._instances]
                ),
            )
        value = float(estimator.estimate(outcome))
        return EstimateResult(
            value=value,
            estimator=estimator.name,
            target=repr(self._target),
            backend="scalar",
            items_seen=1,
            items_contributing=int(value != 0.0),
            metadata={"seed": float(seed), "outcome": outcome.values},
        )

    def _estimate_sample(self, sample, selection) -> EstimateResult:
        from ..aggregates.sum_estimator import SumAggregateEstimator

        aggregator = SumAggregateEstimator(
            self._require_target(),
            estimator=self._resolved_estimator(),
            instances=self._instances,
            backend=self._policy,
        )
        estimate = aggregator.estimate(sample, selection=selection)
        n_keys = len(estimate.items)
        return EstimateResult(
            value=estimate.value,
            estimator=estimate.estimator,
            target=repr(self._target),
            backend=self._policy.resolve(n_keys),
            items_seen=n_keys,
            items_contributing=estimate.contributing_items,
            metadata={"sum_estimate": estimate},
        )

    def _estimate_dataset(
        self, dataset, *, seeds, rng, salt, selection
    ) -> EstimateResult:
        resolved = self._policy.resolve(len(dataset))
        if resolved != "scalar":
            return self._estimate_dataset_engine(
                dataset, seeds=seeds, rng=rng, salt=salt, selection=selection,
                resolved=resolved,
            )
        sample = self.sample(dataset, seeds=seeds, rng=rng, salt=salt)
        return self._estimate_sample(sample, selection)

    def _estimate_dataset_engine(
        self, dataset, *, seeds, rng, salt, selection, resolved
    ) -> EstimateResult:
        """Stream the dataset through the chunked batch engine.

        The engine consumes seeds in the same order as the scalar sampler,
        so the estimate matches the scalar path exactly (engine parity
        tests); ``backend="vectorized"`` additionally insists on a kernel.
        """
        from ..engine.driver import BatchSumEngine

        estimator = self._resolved_estimator()
        self._require_target()
        engine = BatchSumEngine(
            estimator, rates=self._linear_rates(), instances=self._instances
        )
        if resolved == "vectorized" and engine.kernel is None:
            raise ValueError(
                "no vectorized kernel covers this estimator/scheme pair; "
                "use backend='scalar' or backend='auto'"
            )
        result = engine.estimate_dataset(
            dataset,
            seeds=seeds,
            rng=rng,
            salt=self._salt if salt is None else salt,
            selection=selection,
        )
        return EstimateResult(
            value=result.value,
            estimator=result.estimator,
            target=repr(self._target),
            backend=resolved,
            items_seen=result.items_seen,
            items_contributing=result.items_contributing,
            metadata={"batch_result": result},
        )


def _as_rng(rng: Any, fallback_seed: Any) -> Optional[np.random.Generator]:
    """Accept a Generator, an int seed, or None (then try ``fallback_seed``)."""
    if rng is None and fallback_seed is not None:
        rng = fallback_seed
    if rng is None:
        return None
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _kwarg_names(func) -> Sequence[str]:
    """Parameter names of ``func`` (used to feed ``target=`` only where it fits)."""
    import inspect

    try:
        return tuple(inspect.signature(func).parameters)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return ()


#: Short alias used in the docs and the quickstart.
Session = EstimationSession
