"""Result objects returned by :class:`~repro.api.session.EstimationSession`.

Low-level entry points return bare floats or layer-specific records
(:class:`~repro.aggregates.sum_estimator.SumEstimate`,
:class:`~repro.engine.driver.BatchSumResult`,
:class:`~repro.analysis.simulation.EstimateSummary`).  The facade wraps
them all in one shape: the estimate, the variance when the operation
produces one, and the sample/dispatch metadata a caller needs to judge the
number (which estimator ran, which backend, how many items contributed).

``EstimateResult`` supports ``float(result)`` and arithmetic comparison
through ``value`` so quick scripts can treat it as a number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["EstimateResult"]


@dataclass(frozen=True)
class EstimateResult:
    """One estimate (or exact value) with its provenance.

    Attributes
    ----------
    value:
        The estimate / query value.
    estimator:
        Name of the per-item estimator, or ``"exact"`` for ground-truth
        queries.
    target:
        ``repr`` of the target function being aggregated (``""`` when the
        operation has no target, e.g. the built-in similarity queries).
    backend:
        The backend the policy resolved to for this call.
    items_seen:
        Items enumerated by the operation, when known.
    items_contributing:
        Items with a nonzero contribution, when known.
    variance:
        Variance attached to the value: empirical across replications for
        ``simulate``, exact (quadrature) for ``moments``; ``None`` for a
        single-pass estimate.
    metadata:
        Operation-specific extras (seed, replications, true value, ...).
    """

    value: float
    estimator: str = ""
    target: str = ""
    backend: str = ""
    items_seen: Optional[int] = None
    items_contributing: Optional[int] = None
    variance: Optional[float] = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def std_error(self) -> Optional[float]:
        """Square root of ``variance`` when one is attached."""
        if self.variance is None:
            return None
        return math.sqrt(max(0.0, self.variance))

    def __float__(self) -> float:
        return float(self.value)

    def describe(self) -> Dict[str, Any]:
        """A flat dict view (handy for tables and logging)."""
        out: Dict[str, Any] = {
            "value": self.value,
            "estimator": self.estimator,
            "target": self.target,
            "backend": self.backend,
        }
        if self.items_seen is not None:
            out["items_seen"] = self.items_seen
        if self.items_contributing is not None:
            out["items_contributing"] = self.items_contributing
        if self.variance is not None:
            out["variance"] = self.variance
        out.update(self.metadata)
        return out
