"""String-keyed plugin registries for the estimation facade.

The paper's framework is one pipeline — monotone sampling scheme →
outcome → customized estimator → aggregate query — and every stage admits
user-supplied components.  The registries here are the extension seam:
:mod:`repro.core` registers its target functions and scheme constructors,
:mod:`repro.estimators` its estimator factories, and
:mod:`repro.aggregates` its exact query evaluators, all at import time.
A new workload then becomes one registration call::

    from repro.api import register_target

    @register_target("clipped_range")
    def _clipped_range(p=1.0, cap=1.0):
        return GenericTarget(lambda v: min(cap, abs(v[0] - v[1]) ** p), 2)

after which ``EstimationSession(...).target("clipped_range", p=2)`` works
exactly like the built-ins.

This module is deliberately dependency-free (it imports nothing from the
rest of :mod:`repro`) so that any layer can register into it without
creating an import cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

__all__ = [
    "Registry",
    "ESTIMATORS",
    "TARGETS",
    "QUERIES",
    "SCHEMES",
    "register_estimator",
    "register_target",
    "register_query",
    "register_scheme",
]


class Registry:
    """A case-insensitive name → factory mapping with strict registration.

    Keys are normalised (lower case, ``-`` treated as ``_``) so that
    ``"one-sided-range"`` and ``"One_Sided_Range"`` resolve to the same
    entry.  Registering an existing key raises unless ``overwrite=True``
    is passed — silent replacement of a built-in is a debugging nightmare
    in a plugin system.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: Dict[str, Any] = {}

    @property
    def kind(self) -> str:
        """What the registry holds (``"estimator"``, ``"query"``, ...)."""
        return self._kind

    @staticmethod
    def _normalise(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise TypeError("registry keys must be non-empty strings")
        return name.strip().lower().replace("-", "_")

    def register(
        self,
        name: str,
        obj: Optional[Any] = None,
        *,
        overwrite: bool = False,
    ) -> Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        ``register("x", factory)`` registers directly and returns the
        factory; ``@register("x")`` decorates.  A duplicate key raises
        :class:`ValueError` unless ``overwrite=True``.
        """
        key = self._normalise(name)

        def _store(value: Any) -> Any:
            if not overwrite and key in self._entries:
                raise ValueError(
                    f"{self._kind} {name!r} is already registered; pass "
                    "overwrite=True to replace it"
                )
            self._entries[key] = value
            return value

        if obj is None:
            return _store
        return _store(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry (mostly for tests tearing down plugins)."""
        self._entries.pop(self._normalise(name), None)

    def get(self, name: str) -> Any:
        """Look up an entry, raising a helpful ``KeyError`` when absent."""
        key = self._normalise(name)
        try:
            return self._entries[key]
        except KeyError:
            known = ", ".join(self.names()) or "(none registered)"
            raise KeyError(
                f"unknown {self._kind} {name!r}; registered {self._kind}s: "
                f"{known}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All registered keys, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return self._normalise(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Registry {self._kind}: {', '.join(self.names())}>"


#: Estimator factories ``(target, **params) -> Estimator``.
ESTIMATORS = Registry("estimator")
#: Target factories ``(**params) -> EstimationTarget``.
TARGETS = Registry("target")
#: Exact query evaluators ``(dataset, *args, **kwargs) -> float``.
QUERIES = Registry("query")
#: Scheme factories ``(weights, **params) -> MonotoneSamplingScheme``.
SCHEMES = Registry("scheme")


def register_estimator(
    name: str, factory: Optional[Callable[..., Any]] = None, *, overwrite: bool = False
) -> Any:
    """Register an estimator factory ``(target, **params) -> Estimator``."""
    return ESTIMATORS.register(name, factory, overwrite=overwrite)


def register_target(
    name: str, factory: Optional[Callable[..., Any]] = None, *, overwrite: bool = False
) -> Any:
    """Register a target factory ``(**params) -> EstimationTarget``."""
    return TARGETS.register(name, factory, overwrite=overwrite)


def register_query(
    name: str, func: Optional[Callable[..., float]] = None, *, overwrite: bool = False
) -> Any:
    """Register an exact query ``(dataset, ..., backend=...) -> float``."""
    return QUERIES.register(name, func, overwrite=overwrite)


def register_scheme(
    name: str, factory: Optional[Callable[..., Any]] = None, *, overwrite: bool = False
) -> Any:
    """Register a scheme factory ``(weights, **params) -> scheme``."""
    return SCHEMES.register(name, factory, overwrite=overwrite)
