"""Durable, streamed experiment records: the append-only record store.

:class:`~repro.api.experiments.ExperimentResult` objects used to exist
only in memory (and, when caching was on, as opaque JSON blobs).  This
module gives every experiment run a durable, *streamed* on-disk form:

* one file per experiment run — ``<key>-<digest>.jsonl`` — where
  ``digest`` is the same content hash the result cache uses, so a store
  file is invalidated exactly when the cache entry would be;
* shard outputs are **appended as they complete** (the scheduler streams
  them in, it never buffers a whole experiment), each line one JSON
  object, so an interrupted run leaves a readable, resumable prefix;
* the finalize step is **atomic**: the stream is written to a
  ``*.jsonl.partial`` file and renamed to its final name only after the
  reduced result has been appended and flushed, so a ``.jsonl`` file
  always holds a complete run and a ``.jsonl.partial`` file never lies
  about which shards finished.

Line protocol
-------------
A store file is a sequence of JSON objects, one per line, discriminated
by their ``"kind"`` field:

``manifest``
    Always the first line: store version, experiment key/title/scale,
    the run digest, the work-plan kind, the total unit count and the
    shard layout ``[[lo, hi), ...]`` — everything a resumed run needs to
    re-create the exact same shards.
``record``
    One per-unit record (a replication's row, a sweep point's row),
    tagged with its shard index and a shard-local sequence number.
``shard_done``
    Appended after a shard's records are flushed; a shard counts as
    complete on resume *only* when its marker is present with the right
    count, so a line torn by a crash discards at most that one shard.
``final``
    The reduced :class:`~repro.api.experiments.ExperimentResult` payload;
    present exactly in finalized (``.jsonl``) files.

Readers tolerate truncation: parsing stops at the first malformed line,
which simply marks the remaining shards as not-yet-complete.

Readers and writers
-------------------
:class:`RecordStore` is the directory-level API (open a writer, load a
run, resolve paths); :class:`RecordWriter` is the append-only writer the
scheduler drives; :class:`StoredRun` is the parsed read view whose
:meth:`StoredRun.to_experiment_result` feeds
:func:`repro.experiments.report.render_result` and the cache replay
path.  :func:`write_parquet` / :func:`read_parquet` provide an optional
columnar mirror of the raw record stream, gated on :data:`HAVE_PYARROW`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "STORE_VERSION",
    "ENV_RECORDS_DIR",
    "HAVE_PYARROW",
    "RecordStore",
    "RecordWriter",
    "StoredRun",
    "read_run",
    "write_parquet",
    "read_parquet",
]

#: Format version stamped into every manifest; bump on layout changes.
STORE_VERSION = 1

#: Environment variable supplying a default record-store directory.
ENV_RECORDS_DIR = "REPRO_EXPERIMENT_RECORDS"

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow  # noqa: F401
    import pyarrow.parquet  # noqa: F401

    HAVE_PYARROW = True
except ImportError:  # pragma: no cover - the common case in CI
    #: Whether the optional parquet mirror is available in this process.
    HAVE_PYARROW = False


class StoredRun:
    """Parsed read view of one run file (finalized or partial).

    Parameters
    ----------
    path:
        The file the run was parsed from.
    manifest:
        The manifest line's payload (key, digest, scale, plan, shards).
    shard_records:
        Records of every *completed* shard, keyed by shard index, in
        their original append order.
    final:
        The ``final`` line's result payload when present, else ``None``.
    """

    def __init__(
        self,
        path: Path,
        manifest: Mapping[str, Any],
        shard_records: Mapping[int, Sequence[Mapping[str, Any]]],
        final: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self._path = Path(path)
        self._manifest = dict(manifest)
        self._shard_records = {
            int(s): [dict(r) for r in records]
            for s, records in shard_records.items()
        }
        self._final = None if final is None else dict(final)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The file this run was parsed from."""
        return self._path

    @property
    def manifest(self) -> Dict[str, Any]:
        """The manifest payload (copy)."""
        return dict(self._manifest)

    @property
    def key(self) -> str:
        """Experiment key the run belongs to."""
        return str(self._manifest.get("key", ""))

    @property
    def digest(self) -> str:
        """Content digest identifying the run (same hash as the cache)."""
        return str(self._manifest.get("digest", ""))

    @property
    def scale(self) -> str:
        """Parameter scale the run executed at."""
        return str(self._manifest.get("scale", ""))

    @property
    def shards(self) -> List[List[int]]:
        """The shard layout ``[[lo, hi], ...]`` recorded in the manifest."""
        return [list(map(int, b)) for b in self._manifest.get("shards", [])]

    @property
    def is_complete(self) -> bool:
        """Whether the run was finalized (a ``final`` line is present)."""
        return self._final is not None

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def completed_shards(self) -> Dict[int, List[Dict[str, Any]]]:
        """Completed shards' raw records, keyed by shard index (copy)."""
        return {
            s: [dict(r) for r in records]
            for s, records in self._shard_records.items()
        }

    def raw_records(self) -> List[Dict[str, Any]]:
        """The per-unit record stream of every completed shard.

        Returns
        -------
        list of dict
            Records ordered by the manifest's shard layout (ascending
            ``lo``) and, within a shard, by append order — i.e. global
            unit order for a complete run.
        """
        order = sorted(
            self._shard_records,
            key=lambda s: self._bounds().get(s, (s, s))[0],
        )
        out: List[Dict[str, Any]] = []
        for shard in order:
            out.extend(dict(r) for r in self._shard_records[shard])
        return out

    def to_experiment_result(self):
        """The finalized run as an :class:`~repro.api.experiments.ExperimentResult`.

        Returns
        -------
        ExperimentResult
            Rebuilt from the ``final`` payload — ready for
            :func:`repro.experiments.report.render_result`.

        Raises
        ------
        ValueError
            If the run was never finalized (no ``final`` line).
        """
        if self._final is None:
            raise ValueError(
                f"record store file {self._path} holds an unfinished run; "
                "only finalized (.jsonl) runs carry a result"
            )
        from .experiments import ExperimentResult

        return ExperimentResult.from_dict(self._final)

    def _bounds(self) -> Dict[int, tuple]:
        return {
            i: (int(lo), int(hi))
            for i, (lo, hi) in enumerate(self._manifest.get("shards", []))
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "complete" if self.is_complete else "partial"
        return (
            f"<StoredRun {self.key}-{self.digest} {state} "
            f"shards={sorted(self._shard_records)}>"
        )


def read_run(path: Union[str, os.PathLike]) -> Optional[StoredRun]:
    """Parse one run file, tolerating truncation.

    Parameters
    ----------
    path:
        A ``.jsonl`` or ``.jsonl.partial`` store file.

    Returns
    -------
    StoredRun or None
        The parsed run, or ``None`` when the file is missing, empty, or
        does not start with a valid manifest line.  A malformed line in
        the middle (a torn write) stops parsing there: records already
        sealed by a ``shard_done`` marker survive, the rest are dropped.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError:
        return None
    manifest: Optional[Dict[str, Any]] = None
    pending: Dict[int, List[Dict[str, Any]]] = {}
    completed: Dict[int, List[Dict[str, Any]]] = {}
    final: Optional[Dict[str, Any]] = None
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            break  # torn write: everything after it is unsealed
        if not isinstance(payload, Mapping):
            break
        kind = payload.get("kind")
        if manifest is None:
            if kind != "manifest":
                return None
            manifest = dict(payload)
            continue
        if kind == "record":
            pending.setdefault(int(payload["shard"]), []).append(
                dict(payload["data"])
            )
        elif kind == "shard_done":
            shard = int(payload["shard"])
            records = pending.pop(shard, [])
            if len(records) == int(payload.get("count", -1)):
                completed[shard] = records
        elif kind == "final":
            final = dict(payload["result"])
    if manifest is None:
        return None
    return StoredRun(path, manifest, completed, final)


class RecordWriter:
    """Append-only writer for one experiment run's record stream.

    Created through :meth:`RecordStore.begin`; the scheduler appends each
    shard's records the moment the shard completes and finalizes (or
    abandons) the stream when the experiment finishes (or fails).

    Parameters
    ----------
    partial_path:
        The ``.jsonl.partial`` file to stream into.
    final_path:
        The name the stream atomically takes on :meth:`finalize`.
    manifest:
        Manifest payload (without the ``kind`` discriminator).
    carried_shards:
        Shards carried over from a resumed partial file; rewritten at the
        head of the fresh stream so the file never contains torn lines.
    """

    def __init__(
        self,
        partial_path: Path,
        final_path: Path,
        manifest: Mapping[str, Any],
        carried_shards: Optional[Mapping[int, Sequence[Mapping[str, Any]]]] = None,
    ) -> None:
        self._partial = Path(partial_path)
        self._final = Path(final_path)
        self._manifest = dict(manifest)
        self._carried = {
            int(s): [dict(r) for r in records]
            for s, records in (carried_shards or {}).items()
        }
        self._partial.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._partial, "w", encoding="utf-8")
        self._closed = False
        self._write({"kind": "manifest", **self._manifest})
        for shard in sorted(self._carried):
            self.append_shard(shard, self._carried[shard])

    @property
    def partial_path(self) -> Path:
        """The in-progress (``.partial``) file being appended to."""
        return self._partial

    @property
    def manifest(self) -> Dict[str, Any]:
        """The effective manifest (the resumed layout wins on resume)."""
        return dict(self._manifest)

    @property
    def carried_records(self) -> Dict[int, List[Dict[str, Any]]]:
        """Shards carried over from a resumed partial file (copy)."""
        return {s: [dict(r) for r in rs] for s, rs in self._carried.items()}

    @property
    def final_path(self) -> Path:
        """The name the file takes after :meth:`finalize`."""
        return self._final

    def _write(self, payload: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def append_shard(
        self, shard: int, records: Sequence[Mapping[str, Any]]
    ) -> None:
        """Append one completed shard's records, sealed by a done marker.

        Parameters
        ----------
        shard:
            The shard's index in the manifest layout.
        records:
            Its per-unit records, in unit order.

        Raises
        ------
        ValueError
            If the writer was already finalized or abandoned.
        """
        if self._closed:
            raise ValueError("record writer is closed")
        for seq, record in enumerate(records):
            self._write(
                {"kind": "record", "shard": int(shard), "seq": seq,
                 "data": dict(record)}
            )
        self._write(
            {"kind": "shard_done", "shard": int(shard), "count": len(records)}
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def finalize(self, result_payload: Mapping[str, Any]) -> Path:
        """Seal the stream with the reduced result and rename atomically.

        Parameters
        ----------
        result_payload:
            ``ExperimentResult.to_dict()`` of the finished experiment.

        Returns
        -------
        Path
            The finalized ``.jsonl`` path.

        Raises
        ------
        ValueError
            If the writer was already finalized or abandoned.
        """
        if self._closed:
            raise ValueError("record writer is closed")
        self._write({"kind": "final", "result": dict(result_payload)})
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True
        os.replace(self._partial, self._final)
        return self._final

    def abandon(self) -> None:
        """Close the stream leaving the ``.partial`` file for a resume."""
        if not self._closed:
            self._handle.flush()
            self._handle.close()
            self._closed = True


class RecordStore:
    """Directory of streamed experiment-run record files.

    Parameters
    ----------
    root:
        Directory holding the run files (created on first write).
    parquet:
        When true, every finalized run is mirrored to a sibling
        ``.parquet`` file holding the raw record stream (requires
        :mod:`pyarrow`; see :data:`HAVE_PYARROW`).

    Raises
    ------
    RuntimeError
        When ``parquet=True`` and :mod:`pyarrow` is not installed.
    """

    def __init__(
        self, root: Union[str, os.PathLike], parquet: bool = False
    ) -> None:
        self._root = Path(root)
        if parquet and not HAVE_PYARROW:
            raise RuntimeError(
                "parquet record mirrors require pyarrow, which is not "
                "installed; drop parquet=True to keep JSONL-only records"
            )
        self._parquet = bool(parquet)

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    @property
    def parquet(self) -> bool:
        """Whether finalized runs are mirrored to parquet."""
        return self._parquet

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def final_path(self, key: str, digest: str) -> Path:
        """The finalized run file for ``(key, digest)``."""
        return self._root / f"{key}-{digest}.jsonl"

    def partial_path(self, key: str, digest: str) -> Path:
        """The in-progress run file for ``(key, digest)``."""
        return self._root / f"{key}-{digest}.jsonl.partial"

    def parquet_path(self, key: str, digest: str) -> Path:
        """The parquet mirror for ``(key, digest)``."""
        return self._root / f"{key}-{digest}.parquet"

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def finalized_digests(self, key: str) -> List[str]:
        """Digests of every finalized run filed under ``key``, sorted.

        Only ``.jsonl`` files count — a ``.jsonl.partial`` stream is an
        interrupted run, not a usable one.  The sketch-serving layer uses
        this to find the newest snapshot (its digests are zero-padded
        watermarks, so lexical order is recency order).

        Returns
        -------
        list of str
            The digests, lexically sorted; empty when none exist.
        """
        prefix = f"{key}-"
        suffix = ".jsonl"
        out = []
        if self._root.is_dir():
            for path in self._root.iterdir():
                name = path.name
                if name.startswith(prefix) and name.endswith(suffix):
                    out.append(name[len(prefix):-len(suffix)])
        return sorted(out)

    def load(self, key: str, digest: str) -> Optional[StoredRun]:
        """Load a run, preferring the finalized file over a partial one.

        Returns
        -------
        StoredRun or None
            ``None`` when neither file exists (or neither parses) or the
            stored digest does not match ``digest``.
        """
        for path in (self.final_path(key, digest), self.partial_path(key, digest)):
            run = read_run(path)
            if run is not None and run.digest == digest:
                return run
        return None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def begin(
        self,
        key: str,
        digest: str,
        manifest: Mapping[str, Any],
        resume: bool = False,
    ) -> "RecordWriter":
        """Open the streamed writer for one run.

        With ``resume=True`` and a matching ``.partial`` file on disk,
        the prior run's completed shards are carried into the fresh
        stream (rewritten clean, so torn trailing lines disappear) and
        show up in the returned writer via :meth:`carried`.  Otherwise a
        fresh stream containing only the manifest is started.

        Returns
        -------
        RecordWriter
            The open writer; its :attr:`RecordWriter.carried_records`
            maps already-complete shard indices to their records, and its
            :attr:`RecordWriter.manifest` holds the effective layout.
        """
        carried: Dict[int, List[Dict[str, Any]]] = {}
        manifest = dict(manifest)
        if resume:
            prior = read_run(self.partial_path(key, digest))
            if prior is not None and prior.digest == digest:
                carried = prior.completed_shards()
                # The prior shard layout wins: pending shards must re-run
                # at the recorded bounds for records to stay identical.
                manifest["shards"] = prior.manifest.get(
                    "shards", manifest.get("shards", [])
                )
        return RecordWriter(
            self.partial_path(key, digest),
            self.final_path(key, digest),
            manifest,
            carried_shards=carried,
        )

    def finalize(
        self, writer: RecordWriter, result_payload: Mapping[str, Any]
    ) -> Path:
        """Finalize ``writer`` and, when enabled, write the parquet mirror.

        Returns
        -------
        Path
            The finalized ``.jsonl`` path.
        """
        path = writer.finalize(result_payload)
        if self._parquet:
            run = read_run(path)
            if run is not None:
                write_parquet(run, path.with_suffix(".parquet"))
        return path


# ----------------------------------------------------------------------
# Optional parquet mirror
# ----------------------------------------------------------------------
def write_parquet(run: StoredRun, path: Union[str, os.PathLike]) -> Path:
    """Write ``run``'s raw record stream as a parquet table.

    Parameters
    ----------
    run:
        A parsed run (its completed shards are written in unit order).
    path:
        Destination ``.parquet`` file.

    Returns
    -------
    Path
        The written path.

    Raises
    ------
    RuntimeError
        When :mod:`pyarrow` is not installed.
    """
    if not HAVE_PYARROW:
        raise RuntimeError(
            "writing parquet records requires pyarrow, which is not "
            "installed; use the JSONL store file instead"
        )
    import pyarrow as pa
    import pyarrow.parquet as pq

    path = Path(path)
    table = pa.Table.from_pylist(run.raw_records())
    pq.write_table(table, path)
    return path


def read_parquet(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Read a parquet record mirror back into the JSONL reader's shape.

    Parameters
    ----------
    path:
        A ``.parquet`` file written by :func:`write_parquet`.

    Returns
    -------
    list of dict
        The records in unit order — the same list the JSONL reader's
        :meth:`StoredRun.raw_records` returns (agreement is enforced by
        ``tests/api/test_records.py``).

    Raises
    ------
    RuntimeError
        When :mod:`pyarrow` is not installed.
    """
    if not HAVE_PYARROW:
        raise RuntimeError(
            "reading parquet records requires pyarrow, which is not "
            "installed; read the JSONL store file instead"
        )
    import pyarrow.parquet as pq

    return pq.read_table(Path(path)).to_pylist()
