"""Synthetic workloads standing in for the paper's experimental datasets.

Section 7 of the paper reports follow-up experiments on two real datasets
we cannot redistribute:

* **IP flow records** — bandwidth per flow key measured in two periods;
  weights are heavy-tailed and change a lot between periods, so the
  per-item differences are large relative to the values (the regime the
  U* estimator is customised for);
* **Surnames** — frequencies of surnames in published books in different
  years; the distribution is Zipf-like and very stable year over year, so
  differences are small (the regime the L* estimator is customised for).

The generators below produce multi-instance datasets with exactly those
characteristics (heavy-tailed marginals; controlled similarity between
instances), plus a "temperature measurements" workload (near-identical
instances, the paper's motivating example for order customisation).  The
absolute numbers differ from the originals, but the *shape* of the
estimator comparison — who wins in which regime — only depends on the
similarity structure, which the generators control explicitly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..aggregates.dataset import MultiInstanceDataset

__all__ = [
    "ip_flow_pairs",
    "surname_pairs",
    "temperature_instances",
    "similarity_controlled_pairs",
]


def _normalise(weights: np.ndarray, target_total: float) -> np.ndarray:
    total = weights.sum()
    if total <= 0:
        return weights
    return weights * (target_total / total)


def ip_flow_pairs(
    num_items: int = 2000,
    churn: float = 0.3,
    volatility: float = 1.5,
    pareto_shape: float = 1.2,
    rng: Optional[np.random.Generator] = None,
    normalise_to: Optional[float] = None,
) -> MultiInstanceDataset:
    """Two instances of heavy-tailed, highly volatile per-key weights.

    Parameters
    ----------
    num_items:
        Number of flow keys.
    churn:
        Probability that a key present in one period is absent from the
        other (flow birth/death), the main source of large one-sided
        differences.
    volatility:
        Scale of the multiplicative log-normal noise applied between the
        two periods for surviving keys.
    pareto_shape:
        Shape of the Pareto marginal (smaller = heavier tail).
    normalise_to:
        If given, rescale every instance to this total weight; with the
        default the values stay in a range comparable to the unit-box
        examples of the paper.
    """
    rng = rng if rng is not None else np.random.default_rng()
    base = rng.pareto(pareto_shape, size=num_items) + 1.0
    noise = np.exp(rng.normal(0.0, volatility, size=num_items))
    second = base * noise
    # Key churn: some flows disappear, new ones appear.
    vanish = rng.random(num_items) < churn
    appear = rng.random(num_items) < churn
    first = np.where(appear, 0.0, base)
    second = np.where(vanish, 0.0, second)
    if normalise_to is not None:
        first = _normalise(first, normalise_to)
        second = _normalise(second, normalise_to)
    dataset = MultiInstanceDataset(["period1", "period2"])
    for i in range(num_items):
        dataset.set_item(f"flow{i}", (float(first[i]), float(second[i])))
    return dataset


def surname_pairs(
    num_items: int = 2000,
    zipf_exponent: float = 1.3,
    drift: float = 0.05,
    rng: Optional[np.random.Generator] = None,
    normalise_to: Optional[float] = None,
) -> MultiInstanceDataset:
    """Two instances of Zipf-distributed, very stable frequencies.

    Year-over-year drift is a small multiplicative perturbation, so most
    items change little — the "similar instances" regime in which the L*
    estimator (optimised for small differences) shines.
    """
    rng = rng if rng is not None else np.random.default_rng()
    ranks = np.arange(1, num_items + 1, dtype=float)
    base = 1.0 / ranks ** zipf_exponent
    rng.shuffle(base)
    noise = np.exp(rng.normal(0.0, drift, size=num_items))
    second = base * noise
    if normalise_to is not None:
        base = _normalise(base, normalise_to)
        second = _normalise(second, normalise_to)
    dataset = MultiInstanceDataset(["year1", "year2"])
    for i in range(num_items):
        dataset.set_item(f"name{i}", (float(base[i]), float(second[i])))
    return dataset


def temperature_instances(
    num_items: int = 500,
    num_instances: int = 3,
    daily_drift: float = 0.02,
    rng: Optional[np.random.Generator] = None,
) -> MultiInstanceDataset:
    """Several nearly identical instances (hourly temperatures by location).

    The paper's introduction uses temperature measurements and daily
    Wikipedia summaries as examples of data where instances are expected
    to be very similar; this workload reproduces that structure with
    bounded values in ``[0, 1]`` (think normalised temperatures).
    """
    rng = rng if rng is not None else np.random.default_rng()
    base = rng.uniform(0.2, 0.9, size=num_items)
    instances = [base]
    for _ in range(num_instances - 1):
        previous = instances[-1]
        step = rng.normal(0.0, daily_drift, size=num_items)
        instances.append(np.clip(previous + step, 0.0, 1.0))
    dataset = MultiInstanceDataset(
        [f"day{i + 1}" for i in range(num_instances)]
    )
    for i in range(num_items):
        dataset.set_item(
            f"location{i}", tuple(float(inst[i]) for inst in instances)
        )
    return dataset


def similarity_controlled_pairs(
    num_items: int,
    similarity: float,
    churn: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> MultiInstanceDataset:
    """Two instances in ``[0, 1]`` with a tunable similarity level.

    ``similarity = 1`` makes the instances identical; as it decreases the
    second instance mixes in an independent draw *and* an increasing
    amount of item churn (one side dropping to zero), mirroring the two
    ways real snapshots diverge (value drift and key birth/death — the IP
    flow workload has plenty of both).  Used by the ablation experiment
    (E11) to map out where each estimator wins as the data moves between
    the regimes the paper discusses.

    Parameters
    ----------
    churn:
        Fraction of items that are zeroed on one (random) side when the
        similarity is 0.  The effective churn scales with
        ``(1 - similarity)**2``: stable snapshots (surnames, temperatures)
        essentially never lose keys, while volatile ones (IP flows) lose
        many, so churn should vanish faster than value drift as the
        similarity rises.
    """
    if not 0.0 <= similarity <= 1.0:
        raise ValueError("similarity must be in [0, 1]")
    if not 0.0 <= churn <= 1.0:
        raise ValueError("churn must be in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng()
    first = rng.uniform(0.0, 1.0, size=num_items)
    independent = rng.uniform(0.0, 1.0, size=num_items)
    second = similarity * first + (1.0 - similarity) * independent
    churn_mask = rng.random(num_items) < ((1.0 - similarity) ** 2) * churn
    drop_first = rng.random(num_items) < 0.5
    first = np.where(churn_mask & drop_first, 0.0, first)
    second = np.where(churn_mask & ~drop_first, 0.0, second)
    dataset = MultiInstanceDataset(["a", "b"])
    for i in range(num_items):
        dataset.set_item(f"item{i}", (float(first[i]), float(second[i])))
    return dataset
