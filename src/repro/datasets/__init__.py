"""Synthetic workload generators used by the experiments."""

from .synthetic import (
    ip_flow_pairs,
    similarity_controlled_pairs,
    surname_pairs,
    temperature_instances,
)

__all__ = [
    "ip_flow_pairs",
    "similarity_controlled_pairs",
    "surname_pairs",
    "temperature_instances",
]
