"""Outcomes of monotone sampling.

An *outcome* is everything the estimator is allowed to see: the seed
``rho`` that was drawn and, for each entry of the data tuple, either the
exact value (the entry was sampled) or the knowledge that the value is
below the sampling threshold at ``rho`` (the entry was not sampled).

The crucial property of monotone sampling is that the outcome at seed
``rho`` determines the outcome that *would have been obtained* for any
larger (less informative) seed ``u >= rho``.  Estimators such as L* and U*
rely on this: they integrate the lower-bound function over ``u in
[rho, 1]``, and every value they need is computable from the single
observed outcome.  :class:`Outcome` therefore exposes ``known_at(u)`` /
``upper_bounds_at(u)`` for any ``u >= rho``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .schemes import MonotoneSamplingScheme

__all__ = ["Outcome"]


@dataclass(frozen=True)
class Outcome:
    """The result of sampling one data tuple with one seed.

    Attributes
    ----------
    seed:
        The seed ``rho`` in ``(0, 1]`` used to obtain the sample.
    values:
        One entry per coordinate of the data tuple: the sampled value, or
        ``None`` when the entry was not sampled (so the only information
        is that it lies strictly below the threshold at ``rho``).
    scheme:
        The sampling scheme that produced this outcome.  Needed so the
        outcome can answer questions about hypothetical larger seeds.
    """

    seed: float
    values: Tuple[Optional[float], ...]
    scheme: "MonotoneSamplingScheme" = field(compare=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.seed <= 1.0:
            raise ValueError(f"seed must be in (0, 1], got {self.seed}")

    @property
    def dimension(self) -> int:
        """Number of entries in the underlying data tuple."""
        return len(self.values)

    @property
    def sampled_indices(self) -> Tuple[int, ...]:
        """Indices of the entries whose exact value is known."""
        return tuple(i for i, v in enumerate(self.values) if v is not None)

    @property
    def is_empty(self) -> bool:
        """True when no entry was sampled."""
        return all(v is None for v in self.values)

    def known_at(self, u: float) -> Dict[int, float]:
        """Entries whose exact value would be known at seed ``u >= seed``.

        An entry sampled at ``rho`` remains sampled at ``u`` only while its
        value stays at or above the (non-decreasing) threshold ``tau_i(u)``.
        Entries unsampled at ``rho`` are also unsampled at any larger seed.
        """
        self._check_seed(u)
        known: Dict[int, float] = {}
        for i, value in enumerate(self.values):
            if value is None:
                continue
            if value >= self.scheme.threshold(i, u):
                known[i] = value
        return known

    def upper_bounds_at(self, u: float) -> Dict[int, float]:
        """Strict upper bounds on the entries unknown at seed ``u >= seed``."""
        self._check_seed(u)
        bounds: Dict[int, float] = {}
        for i, value in enumerate(self.values):
            threshold = self.scheme.threshold(i, u)
            if value is None or value < threshold:
                bounds[i] = threshold
        return bounds

    def consistent_with(self, vector: Sequence[float]) -> bool:
        """Whether ``vector`` belongs to the consistency set ``S*`` at ``seed``."""
        if len(vector) != self.dimension:
            return False
        for i, value in enumerate(self.values):
            threshold = self.scheme.threshold(i, self.seed)
            if value is None:
                if vector[i] >= threshold:
                    return False
            else:
                if vector[i] != value:
                    return False
        return True

    def information_breakpoints(self) -> Tuple[float, ...]:
        """Seeds ``u >= seed`` at which the hypothetical outcome changes shape.

        These are the seeds at which a currently-known entry would cross
        its threshold and drop out of the sample.  Between consecutive
        breakpoints the set of known entries is constant, which is what
        piecewise integration of the lower-bound function relies on.
        """
        points = []
        for i, value in enumerate(self.values):
            if value is None or value <= 0:
                continue
            drop = self.scheme.inclusion_probability(i, value)
            if self.seed < drop < 1.0:
                points.append(drop)
        return tuple(sorted(set(points)))

    def _check_seed(self, u: float) -> None:
        if u < self.seed - 1e-12:
            raise ValueError(
                f"outcome at seed {self.seed} cannot describe the more "
                f"informative seed {u}"
            )
        if u > 1.0 + 1e-12:
            raise ValueError(f"seed must be at most 1, got {u}")
