"""Lower convex hulls of lower-bound functions.

The paper's v-optimal estimates (Theorem 2.1, eq. 15) are the *negated
slopes of the lower convex hull* of the lower-bound function
``f^{(v)}(u)`` on ``(0, 1]``.  This module provides:

* :func:`lower_hull_points` — the lower convex hull of a finite point set;
* :class:`PiecewiseLinearHull` — evaluation and slope queries on a hull;
* :func:`hull_of_curve` — build the hull of a :class:`LowerBoundCurve`
  by sampling it on a breakpoint-aware grid (including left-limits of
  jumps, since lower-bound functions are left-continuous step-like
  curves).

The hull is anchored on the left at ``(0, limit_at_zero)``: by eq. (9)
this limit equals ``f(v)`` whenever a nonnegative unbiased estimator
exists, and the v-optimal estimator "spends" the full expectation budget
``f(v)`` as the seed approaches zero.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

import numpy as np

from .lower_bound import LowerBoundCurve

__all__ = [
    "lower_hull_points",
    "PiecewiseLinearHull",
    "hull_of_curve",
    "sample_curve",
]


def lower_hull_points(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Lower convex hull of the points ``(xs[i], ys[i])``.

    Returns the hull vertices sorted by ``x``.  Ties in ``x`` keep only
    the lowest ``y``.  The classic monotone-chain construction is used.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        raise ValueError("at least one point is required")
    # Deduplicate x keeping the minimum y (the hull only sees the lowest
    # point above each abscissa).
    best = {}
    for x, y in zip(xs, ys):
        x = float(x)
        y = float(y)
        if x not in best or y < best[x]:
            best[x] = y
    points = sorted(best.items())
    hull: List[Tuple[float, float]] = []
    for x, y in points:
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            # Keep the chain convex: the middle point must lie strictly
            # below the segment joining its neighbours.  Collinear (or
            # above-the-chord) middle points are dropped; the comparison is
            # exact so that extremely skewed point spacings are still
            # handled correctly.
            cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
            if cross <= 0.0:
                hull.pop()
            else:
                break
        hull.append((x, y))
    hull_x = tuple(p[0] for p in hull)
    hull_y = tuple(p[1] for p in hull)
    return hull_x, hull_y


class PiecewiseLinearHull:
    """A lower convex hull represented by its vertices.

    Provides evaluation, (one-sided) slope queries and the "negated slope"
    view that equals the v-optimal estimate of the paper.
    """

    def __init__(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        if len(xs) < 1:
            raise ValueError("a hull needs at least one vertex")
        self._xs = tuple(float(x) for x in xs)
        self._ys = tuple(float(y) for y in ys)
        for a, b in zip(self._xs, self._xs[1:]):
            if b <= a:
                raise ValueError("hull vertices must have increasing x")

    @property
    def vertices(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        return self._xs, self._ys

    def value(self, x: float) -> float:
        """Evaluate the hull (linear interpolation, clamped at the ends)."""
        xs, ys = self._xs, self._ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        idx = bisect.bisect_right(xs, x) - 1
        x0, x1 = xs[idx], xs[idx + 1]
        y0, y1 = ys[idx], ys[idx + 1]
        t = (x - x0) / (x1 - x0)
        return y0 + t * (y1 - y0)

    def slope_left_of(self, x: float) -> float:
        """Slope of the hull segment immediately to the left of ``x``.

        The v-optimal estimate at seed ``u`` is ``-slope_left_of(u)``: the
        estimate governs the outcomes with seeds *below* ``u`` down to the
        previous hull vertex.
        """
        xs, ys = self._xs, self._ys
        if len(xs) == 1:
            return 0.0
        if x <= xs[0]:
            idx = 0
        elif x > xs[-1]:
            idx = len(xs) - 2
        else:
            idx = bisect.bisect_left(xs, x) - 1
            idx = max(0, min(idx, len(xs) - 2))
            # When x coincides with a vertex, the segment to its left is
            # wanted, which bisect_left already gives us.
        x0, x1 = xs[idx], xs[idx + 1]
        y0, y1 = ys[idx], ys[idx + 1]
        return (y1 - y0) / (x1 - x0)

    def negated_slope(self, x: float) -> float:
        """The v-optimal estimate at seed ``x`` (nonnegative by convexity)."""
        return max(0.0, -self.slope_left_of(x))

    def negated_slopes(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`negated_slope` over an array of seeds.

        One ``searchsorted`` replaces the per-seed bisection; the segment
        choice and the arithmetic match the scalar method exactly, so the
        two agree to the last bit (the curve-tracing experiments rely on
        this when they batch whole seed grids).
        """
        query = np.asarray(xs, dtype=float)
        if len(self._xs) == 1:
            return np.zeros(query.shape)
        hull_x = np.asarray(self._xs)
        hull_y = np.asarray(self._ys)
        idx = np.searchsorted(hull_x, query, side="left") - 1
        idx = np.clip(idx, 0, len(hull_x) - 2)
        slopes = (hull_y[idx + 1] - hull_y[idx]) / (
            hull_x[idx + 1] - hull_x[idx]
        )
        return np.maximum(0.0, -slopes)

    def squared_slope_integral(self) -> float:
        """``∫_0^1 (hull slope)^2 du`` — the minimum attainable
        ``E[estimate^2]`` for the corresponding data vector.

        The hull is piecewise linear, so the integral is a finite sum.
        The leftmost vertex is treated as the limit point at ``x -> 0``;
        if it sits at ``x > 0`` the slope is constant on ``(0, x]``.
        """
        xs, ys = self._xs, self._ys
        if len(xs) == 1:
            return 0.0
        total = 0.0
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            slope = (y1 - y0) / (x1 - x0)
            total += slope * slope * (x1 - x0)
        # Left of the first vertex the hull is flat (slope 0) because the
        # construction anchors the first vertex at the x -> 0 limit.
        return total


def sample_curve(
    curve: LowerBoundCurve,
    lower: float,
    upper: float = 1.0,
    grid: int = 512,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``curve`` on ``[lower, upper]`` with breakpoint refinement.

    Lower-bound functions are left-continuous and may jump at the
    breakpoints; we therefore evaluate both a hair to the left and a hair
    to the right of every breakpoint so the hull sees the jump.
    """
    if not 0.0 <= lower < upper <= 1.0 + 1e-12:
        raise ValueError("need 0 <= lower < upper <= 1")
    lo = max(lower, 1e-9)
    # Mix linearly and geometrically spaced abscissae: lower-bound curves
    # (and their hulls) often change fastest near u -> 0, where the
    # geometric points provide the resolution the linear grid lacks.
    xs = set(np.linspace(lo, upper, grid).tolist())
    xs.update(np.geomspace(lo, upper, grid).tolist())
    eps = 1e-9
    for b in curve.breakpoints():
        if lo < b < upper:
            xs.add(b)
            xs.add(max(lo, b - eps))
            xs.add(min(upper, b + eps))
    xs_sorted = np.array(sorted(xs))
    ys = curve.values_at(xs_sorted)
    return xs_sorted, ys


def hull_of_curve(
    curve: LowerBoundCurve,
    limit_at_zero: float = None,
    grid: int = 512,
) -> PiecewiseLinearHull:
    """Lower convex hull of a lower-bound curve on ``(0, 1]``.

    Parameters
    ----------
    curve:
        The lower-bound curve (typically a :class:`VectorLowerBound`).
    limit_at_zero:
        Value to anchor the hull at ``u = 0``.  Defaults to
        ``curve.limit_at_zero()``; pass ``f(v)`` explicitly when known.
    grid:
        Number of sample points (plus breakpoints) used to trace the curve.
    """
    if limit_at_zero is None:
        limit_at_zero = curve.limit_at_zero()
    xs, ys = sample_curve(curve, lower=0.0, upper=1.0, grid=grid)
    all_x = np.concatenate(([0.0], xs))
    all_y = np.concatenate(([float(limit_at_zero)], ys))
    hull_x, hull_y = lower_hull_points(all_x.tolist(), all_y.tolist())
    if math.isinf(hull_y[0]) or math.isnan(hull_y[0]):
        raise ValueError("lower-bound curve produced a non-finite value")
    return PiecewiseLinearHull(hull_x, hull_y)
