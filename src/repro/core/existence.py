"""Existence characterisations for unbiased nonnegative estimators.

Section 2 of the paper recalls (from Cohen & Kaplan) exact conditions on
the lower-bound function under which estimators with the desired global
properties exist:

* eq. (9)  — an unbiased nonnegative estimator exists iff
  ``lim_{u->0+} f^{(v)}(u) = f(v)`` for every data vector;
* eq. (10) — given (9), an unbiased nonnegative estimator with finite
  variance *for a specific* ``v`` exists iff the squared slope of the
  lower hull of ``f^{(v)}`` is integrable;
* eq. (11) — an unbiased nonnegative estimator that is *bounded on v*
  exists iff ``lim_{u->0+} (f(v) - f^{(v)}(u)) / u`` is finite.

The functions here check these conditions numerically for a given scheme,
target and data vector (or over a finite domain).  They are used by the
tests, by the experiment harness (to make sure each experiment only runs
on instances where the estimators it compares are well defined), and they
are useful to downstream users designing their own targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .functions import EstimationTarget
from .lower_bound import VectorLowerBound
from .lower_hull import hull_of_curve
from .schemes import MonotoneSamplingScheme

__all__ = [
    "ExistenceReport",
    "check_vector",
    "check_domain",
]


@dataclass(frozen=True)
class ExistenceReport:
    """Existence of well-behaved estimators for one data vector."""

    vector: tuple
    true_value: float
    lower_bound_limit: float
    unbiased_nonnegative_exists: bool
    finite_variance_exists: bool
    bounded_exists: bool
    minimal_expected_square: float

    def summary(self) -> str:
        flags = []
        flags.append("unbiased+nonneg" if self.unbiased_nonnegative_exists else "NO unbiased+nonneg")
        flags.append("finite-variance" if self.finite_variance_exists else "NO finite-variance")
        flags.append("bounded" if self.bounded_exists else "NO bounded")
        return (
            f"v={self.vector} f(v)={self.true_value:.6g} "
            f"lim f_v(0+)={self.lower_bound_limit:.6g} [{', '.join(flags)}]"
        )


def check_vector(
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vector: Sequence[float],
    tolerance: float = 1e-6,
    hull_grid: int = 1024,
) -> ExistenceReport:
    """Numerically check conditions (9), (10) and (11) for one vector."""
    curve = VectorLowerBound(scheme, target, vector)
    true_value = curve.true_value()
    limit = curve.limit_at_zero()
    unbiased_ok = abs(limit - true_value) <= tolerance * max(1.0, abs(true_value))

    finite_var_ok = False
    minimal_sq = float("inf")
    if unbiased_ok:
        hull = hull_of_curve(curve, limit_at_zero=true_value, grid=hull_grid)
        minimal_sq = hull.squared_slope_integral()
        finite_var_ok = minimal_sq < float("inf")

    bounded_ok = False
    if unbiased_ok:
        bounded_ok = _bounded_condition(curve, true_value)

    return ExistenceReport(
        vector=tuple(float(x) for x in vector),
        true_value=true_value,
        lower_bound_limit=limit,
        unbiased_nonnegative_exists=unbiased_ok,
        finite_variance_exists=finite_var_ok,
        bounded_exists=bounded_ok,
        minimal_expected_square=minimal_sq,
    )


def _bounded_condition(
    curve: VectorLowerBound, true_value: float, samples: int = 12
) -> bool:
    """Check eq. (11): ``(f(v) - f^{(v)}(u)) / u`` stays bounded as ``u -> 0``.

    The ratio is evaluated on a geometric sequence of seeds; the condition
    is declared to hold when the ratio stops growing (within a small
    multiplicative slack) along the sequence.
    """
    u = 1e-2
    previous_ratio = None
    growth = []
    for _ in range(samples):
        gap = true_value - curve(u)
        ratio = gap / u if u > 0 else float("inf")
        if previous_ratio is not None and previous_ratio > 0:
            growth.append(ratio / previous_ratio)
        previous_ratio = ratio
        u /= 4.0
    if previous_ratio is None:
        return True
    if previous_ratio <= 1e-12:
        return True
    # A bounded difference quotient settles to a constant; an unbounded
    # one keeps growing by a factor close to the seed shrink factor.
    tail_growth = growth[-3:] if len(growth) >= 3 else growth
    return all(g <= 1.5 for g in tail_growth)


def check_domain(
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vectors: Iterable[Sequence[float]],
    tolerance: float = 1e-6,
) -> list:
    """Run :func:`check_vector` over an iterable of vectors."""
    return [check_vector(scheme, target, v, tolerance=tolerance) for v in vectors]
