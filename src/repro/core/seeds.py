"""Deterministic seed generation for coordinated (shared-seed) sampling.

Coordinated sampling requires that the *same* item receives the *same*
uniform seed in every instance, while different items receive independent
seeds.  The standard way to achieve this with very little state — and the
one the paper recommends — is to hash the item key into ``(0, 1]``.

This module provides:

* :func:`hash_to_unit` — a deterministic 64-bit hash of an arbitrary item
  key (plus a salt) mapped into ``(0, 1]``;
* :class:`SeedAssigner` — assigns and memoises seeds per item key, either
  by hashing (deterministic, coordination-friendly) or from a
  pseudo-random generator (useful in Monte-Carlo experiments where many
  independent replications are needed).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Hashable, Iterable, Optional

import numpy as np

__all__ = ["hash_to_unit", "spawn_children", "SeedAssigner"]

# 2**64; used to map a 64-bit digest into (0, 1].
_TWO_64 = float(1 << 64)


def hash_to_unit(key: Hashable, salt: str = "") -> float:
    """Map ``key`` deterministically into the half-open interval ``(0, 1]``.

    The mapping uses the first 8 bytes of a SHA-256 digest of the key's
    string representation together with ``salt``.  The value ``0`` is never
    produced (the paper's seeds live in ``(0, 1]``), and the same
    ``(key, salt)`` always yields the same seed — which is exactly what
    coordination requires.

    Parameters
    ----------
    key:
        Item key.  Any object with a stable ``repr`` works; strings,
        integers and tuples thereof are typical.
    salt:
        Optional salt allowing several independent coordinated samplings
        of the same item universe.
    """
    payload = f"{salt}\x1f{key!r}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    (value,) = struct.unpack(">Q", digest[:8])
    # Map {0, ..., 2^64 - 1} to (0, 1] via (value + 1) / 2^64.
    return (value + 1) / _TWO_64


def spawn_children(
    root: int, lo: int, hi: int
) -> "list[np.random.SeedSequence]":
    """Children ``lo..hi-1`` of ``SeedSequence(root)``, without the parent.

    ``SeedSequence(root).spawn(total)[lo:hi]`` materialises *every* child
    up to ``hi`` as a Python object just to slice a shard out of the
    middle — O(total) allocations per shard, which is what the experiment
    runner used to pay in every worker.  A spawned child is, by the
    ``numpy`` spawning contract, nothing but
    ``SeedSequence(root, spawn_key=(i,))``; constructing exactly the
    shard's range is O(hi - lo) and yields children whose entropy,
    spawn key, and generated state are identical to the sliced spawn
    (asserted by ``tests/core/test_seeds.py``).

    Parameters
    ----------
    root:
        The root entropy (the experiment plan's ``seed``).
    lo, hi:
        The half-open child-index range ``[lo, hi)``.
    """
    if lo < 0 or hi < lo:
        raise ValueError(f"need 0 <= lo <= hi, got [{lo}, {hi})")
    return [
        np.random.SeedSequence(root, spawn_key=(i,)) for i in range(lo, hi)
    ]


class SeedAssigner:
    """Assigns a uniform seed in ``(0, 1]`` to each item key.

    Two modes are supported:

    * *hashed* (default): seeds come from :func:`hash_to_unit`.  Seeds are
      reproducible across processes and runs, which is what a production
      coordinated-sampling deployment uses.
    * *random*: seeds come from a ``numpy`` generator.  This is what
      Monte-Carlo experiments use, so that repeated replications with
      different generator seeds give independent samples.

    The assigner memoises seeds so that the same key always maps to the
    same seed within one assigner instance regardless of mode.
    """

    def __init__(
        self,
        salt: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._salt = salt
        self._rng = rng
        self._cache: Dict[Hashable, float] = {}

    @classmethod
    def random(cls, seed: Optional[int] = None) -> "SeedAssigner":
        """Build an assigner backed by a pseudo-random generator."""
        return cls(rng=np.random.default_rng(seed))

    def seed_for(self, key: Hashable) -> float:
        """Return the seed assigned to ``key`` (assigning one if needed)."""
        if key in self._cache:
            return self._cache[key]
        if self._rng is None:
            value = hash_to_unit(key, self._salt)
        else:
            # Map to (0, 1]: random() yields [0, 1), so take 1 - x.
            value = 1.0 - float(self._rng.random())
        self._cache[key] = value
        return value

    def seeds_for(self, keys: Iterable[Hashable]) -> Dict[Hashable, float]:
        """Return a dictionary of seeds for ``keys``."""
        return {key: self.seed_for(key) for key in keys}

    def __contains__(self, key: Hashable) -> bool:
        return key in self._cache

    def known_seeds(self) -> Dict[Hashable, float]:
        """Return a copy of all seeds assigned so far."""
        return dict(self._cache)
