"""Estimation targets (the functions ``f`` of a monotone estimation problem).

A target wraps the nonnegative function ``f : V -> R_{>=0}`` we want to
estimate, together with the two pieces of structural knowledge the
estimators need:

* ``infimum_over_box`` — the infimum of ``f`` over a *consistency box*,
  i.e. the set of vectors that agree with the sampled entries and lie
  strictly below the per-entry upper bounds on the unsampled entries.
  Evaluated at the boxes ``S*(u, v)`` this is exactly the paper's
  lower-bound function ``f^{(v)}(u)``, the object from which L*, U* and
  the v-optimal estimates are all built.
* ``supremum_over_box`` — the supremum over the same box, used by the
  Horvitz–Thompson estimator (to decide whether ``f`` is fully revealed)
  and by the U* machinery.

Targets included: the exponentiated range ``RG_p``, the one-sided range
``RG_p+``, absolute linear combinations (Example 1's ``G``), logical
OR/distinct, max/min/sum of entries, and a generic wrapper that falls back
to grid search for arbitrary user functions.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

__all__ = [
    "EstimationTarget",
    "ExponentiatedRange",
    "OneSidedRange",
    "AbsoluteCombination",
    "DistinctOr",
    "MaxPower",
    "MinPower",
    "WeightedSum",
    "GenericTarget",
]


class EstimationTarget:
    """Base class for estimation targets.

    ``known`` maps entry index to its exact value; ``upper`` maps entry
    index to a strict upper bound on its (unknown) value.  Together they
    describe the consistency box of an outcome.  Every entry index in
    ``range(dimension)`` appears in exactly one of the two mappings.
    """

    #: Number of tuple entries the target is defined over, or ``None``
    #: when the target works for any dimension.
    dimension: int = None  # type: ignore[assignment]

    def __call__(self, vector: Sequence[float]) -> float:
        raise NotImplementedError

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        raise NotImplementedError

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers shared by subclasses.
    # ------------------------------------------------------------------
    @staticmethod
    def _box_dimension(
        known: Mapping[int, float], upper: Mapping[int, float]
    ) -> int:
        return len(known) + len(upper)

    @staticmethod
    def _corner_vectors(
        known: Mapping[int, float], upper: Mapping[int, float]
    ) -> Tuple[Tuple[float, ...], ...]:
        """All corners of the consistency box (upper bounds taken closed).

        The supremum of a convex function over a box is attained at a
        corner, so enumerating corners is exact for convex ``f`` (range,
        absolute linear combinations).  The open upper faces only matter
        for attainment, not for the value of the supremum/infimum.
        """
        dim = len(known) + len(upper)
        choices = []
        for i in range(dim):
            if i in known:
                choices.append((known[i],))
            else:
                choices.append((0.0, upper[i]))
        return tuple(itertools.product(*choices))


def _check_power(p: float) -> float:
    p = float(p)
    if p <= 0:
        raise ValueError("the exponent p must be positive")
    return p


@dataclass(frozen=True)
class ExponentiatedRange(EstimationTarget):
    """``RG_p(v) = (max(v) - min(v))**p``.

    Sum-aggregating ``RG_p`` over items yields the ``L_p^p`` difference of
    two instances (and its multi-instance generalisation), which is the
    paper's flagship application.
    """

    p: float = 1.0

    def __post_init__(self) -> None:
        _check_power(self.p)

    def __call__(self, vector: Sequence[float]) -> float:
        vec = [float(x) for x in vector]
        return (max(vec) - min(vec)) ** self.p

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        if not known:
            # Every entry can be set to 0, collapsing the range.
            return 0.0
        kmax = max(known.values())
        kmin = min(known.values())
        # An unknown entry with upper bound above kmin can hide inside the
        # interval [kmin, kmax] (or hug its own bound) without widening the
        # range; an unknown entry bounded below kmin necessarily drags the
        # minimum down to (just below) its bound.
        floor = kmin
        for bound in upper.values():
            if bound < floor:
                floor = bound
        return max(0.0, kmax - floor) ** self.p

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        # The range is convex (max of affine minus min of affine), so its
        # supremum over the box is attained at a corner.
        best = 0.0
        for corner in self._corner_vectors(known, upper):
            value = (max(corner) - min(corner)) ** self.p
            if value > best:
                best = value
        return best


@dataclass(frozen=True)
class OneSidedRange(EstimationTarget):
    """``RG_p+(v1, v2) = max(0, v1 - v2)**p`` (two-entry tuples only).

    Sum-aggregating yields the "increase only" difference ``L_p^p+`` of
    Example 1; adding the estimate with the roles of the instances swapped
    recovers the full ``L_p^p``.
    """

    p: float = 1.0
    dimension: int = 2

    def __post_init__(self) -> None:
        _check_power(self.p)

    def __call__(self, vector: Sequence[float]) -> float:
        if len(vector) != 2:
            raise ValueError("RG_p+ is defined for two-entry tuples")
        v1, v2 = float(vector[0]), float(vector[1])
        return max(0.0, v1 - v2) ** self.p

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        if 0 not in known:
            # v1 may be as small as 0 (or as small as v2), so the
            # difference can vanish.
            return 0.0
        v1 = known[0]
        if 1 in known:
            return max(0.0, v1 - known[1]) ** self.p
        # v2 is only known to be below its bound; pushing it up towards
        # the bound minimises the difference.
        return max(0.0, v1 - upper[1]) ** self.p

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        v1 = known.get(0, upper.get(0, 0.0))
        v2 = known[1] if 1 in known else 0.0
        return max(0.0, v1 - v2) ** self.p


@dataclass(frozen=True)
class AbsoluteCombination(EstimationTarget):
    """``f(v) = |sum_i c_i v_i| ** p``.

    With coefficients ``(1, -2, 1)`` and ``p = 2`` this is the query ``G``
    of Example 1, illustrating that arbitrary linear-combination queries
    fit the framework.
    """

    coefficients: Tuple[float, ...]
    p: float = 1.0

    def __init__(self, coefficients: Sequence[float], p: float = 1.0):
        object.__setattr__(
            self, "coefficients", tuple(float(c) for c in coefficients)
        )
        object.__setattr__(self, "p", _check_power(p))
        object.__setattr__(self, "dimension", len(self.coefficients))

    def __call__(self, vector: Sequence[float]) -> float:
        if len(vector) != len(self.coefficients):
            raise ValueError("vector dimension does not match coefficients")
        total = sum(c * float(v) for c, v in zip(self.coefficients, vector))
        return abs(total) ** self.p

    def _linear_range(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> Tuple[float, float]:
        low = high = 0.0
        for i, c in enumerate(self.coefficients):
            if i in known:
                low += c * known[i]
                high += c * known[i]
            else:
                bound = upper[i]
                if c >= 0:
                    high += c * bound
                else:
                    low += c * bound
        return low, high

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        low, high = self._linear_range(known, upper)
        if low <= 0.0 <= high:
            return 0.0
        return min(abs(low), abs(high)) ** self.p

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        low, high = self._linear_range(known, upper)
        return max(abs(low), abs(high)) ** self.p


@dataclass(frozen=True)
class DistinctOr(EstimationTarget):
    """Logical OR: 1 when any entry is positive, else 0.

    Sum-aggregating over items gives the distinct count over the union of
    the instances.
    """

    def __call__(self, vector: Sequence[float]) -> float:
        return 1.0 if any(float(v) > 0 for v in vector) else 0.0

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        return 1.0 if any(v > 0 for v in known.values()) else 0.0

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        if any(v > 0 for v in known.values()):
            return 1.0
        return 1.0 if any(b > 0 for b in upper.values()) else 0.0


@dataclass(frozen=True)
class MaxPower(EstimationTarget):
    """``f(v) = max(v) ** p``."""

    p: float = 1.0

    def __post_init__(self) -> None:
        _check_power(self.p)

    def __call__(self, vector: Sequence[float]) -> float:
        return max(float(v) for v in vector) ** self.p

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        return (max(known.values()) if known else 0.0) ** self.p

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        candidates = list(known.values()) + list(upper.values())
        return (max(candidates) if candidates else 0.0) ** self.p


@dataclass(frozen=True)
class MinPower(EstimationTarget):
    """``f(v) = min(v) ** p``."""

    p: float = 1.0

    def __post_init__(self) -> None:
        _check_power(self.p)

    def __call__(self, vector: Sequence[float]) -> float:
        return min(float(v) for v in vector) ** self.p

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        if upper:
            # Any unknown entry may be zero, collapsing the minimum.
            return 0.0
        return min(known.values()) ** self.p

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        values = list(known.values()) + list(upper.values())
        return min(values) ** self.p if values else 0.0


@dataclass(frozen=True)
class WeightedSum(EstimationTarget):
    """``f(v) = sum_i w_i v_i`` with nonnegative weights.

    Linear targets admit the classical Horvitz–Thompson treatment, so they
    make good sanity baselines: L*, U*, and HT should all behave sensibly.
    """

    weights: Tuple[float, ...]

    def __init__(self, weights: Sequence[float]):
        ws = tuple(float(w) for w in weights)
        if any(w < 0 for w in ws):
            raise ValueError("weights must be nonnegative")
        object.__setattr__(self, "weights", ws)
        object.__setattr__(self, "dimension", len(ws))

    def __call__(self, vector: Sequence[float]) -> float:
        return sum(w * float(v) for w, v in zip(self.weights, vector))

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        return sum(self.weights[i] * v for i, v in known.items())

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        total = sum(self.weights[i] * v for i, v in known.items())
        total += sum(self.weights[i] * b for i, b in upper.items())
        return total


class GenericTarget(EstimationTarget):
    """Wrap an arbitrary nonnegative function with grid-search box bounds.

    The infimum and supremum over a consistency box are approximated by
    evaluating the function on a regular grid of the unknown entries
    (always including the corners).  This is exact for functions that are
    monotone or convex in each unknown entry — which covers every target
    used in the paper — and a controlled approximation otherwise.

    Parameters
    ----------
    func:
        The nonnegative function of the data tuple.
    dimension:
        Tuple dimension.
    grid_points:
        Number of grid values per unknown entry used in the search.
    """

    def __init__(
        self,
        func: Callable[[Sequence[float]], float],
        dimension: int,
        grid_points: int = 17,
    ) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if grid_points < 2:
            raise ValueError("grid_points must be at least 2")
        self._func = func
        self.dimension = dimension
        self._grid_points = grid_points

    def __call__(self, vector: Sequence[float]) -> float:
        return float(self._func(tuple(float(v) for v in vector)))

    def _search(
        self,
        known: Mapping[int, float],
        upper: Mapping[int, float],
        minimise: bool,
    ) -> float:
        grids: Dict[int, Sequence[float]] = {}
        for i, bound in upper.items():
            if bound <= 0:
                grids[i] = (0.0,)
            else:
                step = bound / (self._grid_points - 1)
                grids[i] = tuple(step * k for k in range(self._grid_points))
        unknown_indices = sorted(grids)
        best = math.inf if minimise else -math.inf
        for combo in itertools.product(*(grids[i] for i in unknown_indices)):
            vector = [0.0] * self.dimension
            for i, v in known.items():
                vector[i] = v
            for i, v in zip(unknown_indices, combo):
                vector[i] = v
            value = float(self._func(tuple(vector)))
            if minimise:
                best = min(best, value)
            else:
                best = max(best, value)
        if math.isinf(best):
            # No unknown entries: evaluate at the single known point.
            vector = [0.0] * self.dimension
            for i, v in known.items():
                vector[i] = v
            best = float(self._func(tuple(vector)))
        return best

    def infimum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        return self._search(known, upper, minimise=True)

    def supremum_over_box(
        self, known: Mapping[int, float], upper: Mapping[int, float]
    ) -> float:
        return self._search(known, upper, minimise=False)
