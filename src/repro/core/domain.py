"""Data domains for monotone estimation problems.

A *data domain* ``V`` is the set of data vectors that the sampling scheme
may be applied to.  The paper works with two flavours:

* continuous box domains ``V ⊆ R_{>=0}^r`` (e.g. ``[0, 1]^2`` in
  Examples 3 and 4), and
* finite grid domains (e.g. ``{0, 1, 2, 3}^2`` in Example 5), which are
  the setting for the constructive order-optimal estimators.

The classes here are lightweight value objects: they validate vectors,
enumerate finite domains, and expose the per-entry upper bounds that the
sampling schemes and estimation targets need (for instance to compute the
infimum of ``f`` over the set of vectors consistent with an outcome).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Domain",
    "BoxDomain",
    "GridDomain",
    "unit_box",
]

Vector = Tuple[float, ...]


class Domain:
    """Abstract base class for data domains.

    Subclasses must implement :meth:`contains` and expose ``dimension``.
    Finite domains additionally implement ``__iter__`` and ``__len__``.
    """

    #: Number of entries in each data vector (the number of instances ``r``).
    dimension: int

    def contains(self, vector: Sequence[float]) -> bool:
        """Return ``True`` when ``vector`` belongs to the domain."""
        raise NotImplementedError

    def validate(self, vector: Sequence[float]) -> Vector:
        """Return ``vector`` as a tuple, raising ``ValueError`` if invalid."""
        vec = tuple(float(x) for x in vector)
        if len(vec) != self.dimension:
            raise ValueError(
                f"expected a vector of dimension {self.dimension}, got {len(vec)}"
            )
        if not self.contains(vec):
            raise ValueError(f"vector {vec!r} is not in the domain")
        return vec

    @property
    def is_finite(self) -> bool:
        """Whether the domain has finitely many vectors."""
        return False


@dataclass(frozen=True)
class BoxDomain(Domain):
    """A continuous axis-aligned box ``[0, upper_1] x ... x [0, upper_r]``.

    Entries are always nonnegative, matching the paper's setting of
    nonnegative weights.

    Parameters
    ----------
    uppers:
        Per-entry upper bounds.  ``uppers[i]`` may be ``math.inf`` for an
        unbounded entry.
    """

    uppers: Tuple[float, ...]

    def __init__(self, uppers: Iterable[float]):
        object.__setattr__(self, "uppers", tuple(float(u) for u in uppers))
        for u in self.uppers:
            if u <= 0:
                raise ValueError("upper bounds must be positive")

    @property
    def dimension(self) -> int:  # type: ignore[override]
        return len(self.uppers)

    def contains(self, vector: Sequence[float]) -> bool:
        if len(vector) != self.dimension:
            return False
        return all(0.0 <= v <= u for v, u in zip(vector, self.uppers))

    def clip(self, vector: Sequence[float]) -> Vector:
        """Clip ``vector`` entrywise into the box."""
        return tuple(
            min(max(0.0, float(v)), u) for v, u in zip(vector, self.uppers)
        )


@dataclass(frozen=True)
class GridDomain(Domain):
    """A finite grid domain: the cartesian product of per-entry value sets.

    This is the domain used in Example 5 of the paper
    (``V = {0, 1, 2, 3}^2``) and, more generally, the setting in which the
    order-optimal construction of Section 5 is fully constructive.

    Parameters
    ----------
    levels:
        One sorted tuple of allowed values per entry.
    """

    levels: Tuple[Tuple[float, ...], ...]

    def __init__(self, levels: Iterable[Iterable[float]]):
        normalised = tuple(
            tuple(sorted(set(float(x) for x in entry))) for entry in levels
        )
        if not normalised:
            raise ValueError("a grid domain needs at least one entry")
        for entry in normalised:
            if not entry:
                raise ValueError("each entry needs at least one allowed value")
            if entry[0] < 0:
                raise ValueError("grid values must be nonnegative")
        object.__setattr__(self, "levels", normalised)

    @classmethod
    def uniform(cls, values: Iterable[float], dimension: int) -> "GridDomain":
        """Build a grid with the same allowed ``values`` in every entry."""
        vals = tuple(values)
        return cls([vals] * dimension)

    @property
    def dimension(self) -> int:  # type: ignore[override]
        return len(self.levels)

    @property
    def is_finite(self) -> bool:
        return True

    def contains(self, vector: Sequence[float]) -> bool:
        if len(vector) != self.dimension:
            return False
        return all(float(v) in entry for v, entry in zip(vector, self.levels))

    def __iter__(self) -> Iterator[Vector]:
        return iter(itertools.product(*self.levels))

    def __len__(self) -> int:
        size = 1
        for entry in self.levels:
            size *= len(entry)
        return size

    def max_values(self) -> Vector:
        """Per-entry maximum value; useful for threshold construction."""
        return tuple(entry[-1] for entry in self.levels)


def unit_box(dimension: int) -> BoxDomain:
    """The domain ``[0, 1]^dimension`` used throughout the paper's examples."""
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    return BoxDomain([1.0] * dimension)
