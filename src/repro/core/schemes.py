"""Monotone sampling schemes.

A monotone sampling scheme maps a data vector ``v`` and a seed
``u ~ U(0, 1]`` to a sample whose information content is non-decreasing as
the seed decreases.  The concrete family implemented here is the one the
paper builds all of its examples on: **coordinated shared-seed threshold
sampling**, where entry ``i`` of the tuple is reported exactly when
``v_i >= tau_i(u)`` for a non-decreasing threshold function ``tau_i``.

Two threshold families are provided:

* :class:`LinearThreshold` — ``tau(u) = u * tau_star`` — this is PPS
  (probability proportional to size) sampling; an entry of weight ``w`` is
  included with probability ``min(1, w / tau_star)``.
* :class:`StepThreshold` — a right-continuous step function defined by
  per-level inclusion probabilities; this is the natural scheme for the
  finite grid domains of Example 5 (value ``w`` is included iff
  ``u <= pi_w``).

The scheme object is deliberately tiny: it knows how to sample a vector
given a seed, how to evaluate thresholds at arbitrary seeds (needed by the
estimators), and how to report inclusion probabilities.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from .outcome import Outcome

__all__ = [
    "ThresholdFunction",
    "LinearThreshold",
    "StepThreshold",
    "MonotoneSamplingScheme",
    "CoordinatedScheme",
    "pps_scheme",
]


class ThresholdFunction:
    """A non-decreasing threshold ``tau: (0, 1] -> R_{>=0}``.

    ``tau(u)`` is the smallest weight that is reported at seed ``u``; an
    entry of weight ``w`` is sampled iff ``w >= tau(u)``.
    """

    def __call__(self, u: float) -> float:
        raise NotImplementedError

    def inclusion_probability(self, weight: float) -> float:
        """Probability (over the seed) that an entry of ``weight`` is sampled.

        Equals ``sup { u : tau(u) <= weight }`` (and 0 when the set is
        empty), because ``tau`` is non-decreasing.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class LinearThreshold(ThresholdFunction):
    """PPS threshold ``tau(u) = u * tau_star``."""

    tau_star: float = 1.0

    def __post_init__(self) -> None:
        if self.tau_star <= 0:
            raise ValueError("tau_star must be positive")

    def __call__(self, u: float) -> float:
        return u * self.tau_star

    def inclusion_probability(self, weight: float) -> float:
        if weight <= 0:
            return 0.0
        return min(1.0, weight / self.tau_star)


@dataclass(frozen=True)
class StepThreshold(ThresholdFunction):
    """Threshold induced by per-value inclusion probabilities.

    Parameters
    ----------
    value_probabilities:
        Pairs ``(value, pi)`` meaning an entry of exactly ``value`` is
        sampled iff the seed is at most ``pi``.  Probabilities must be
        non-decreasing in the value (larger weights are sampled more
        often), which is what makes the induced threshold function
        non-decreasing in the seed.
    """

    values: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def __init__(self, value_probabilities: Iterable[Tuple[float, float]]):
        pairs = sorted((float(v), float(p)) for v, p in value_probabilities)
        if not pairs:
            raise ValueError("at least one (value, probability) pair required")
        values = tuple(v for v, _ in pairs)
        probs = tuple(p for _, p in pairs)
        for p in probs:
            if not 0.0 <= p <= 1.0:
                raise ValueError("inclusion probabilities must lie in [0, 1]")
        for earlier, later in zip(probs, probs[1:]):
            if later < earlier:
                raise ValueError(
                    "inclusion probabilities must be non-decreasing in the value"
                )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "probabilities", probs)

    def __call__(self, u: float) -> float:
        # The threshold at seed u is the smallest listed value whose
        # inclusion probability is at least u; if none qualifies the
        # threshold exceeds every listed value.
        idx = bisect.bisect_left(self.probabilities, u)
        if idx >= len(self.values):
            return self.values[-1] + 1.0
        return self.values[idx]

    def inclusion_probability(self, weight: float) -> float:
        # Probability of the largest listed value not exceeding ``weight``.
        idx = bisect.bisect_right(self.values, weight) - 1
        if idx < 0:
            return 0.0
        if self.values[idx] <= 0:
            # A zero weight is never "at or above" a positive threshold and
            # the all-zero threshold level means certain inclusion.
            return self.probabilities[idx] if weight > 0 else self.probabilities[idx]
        return self.probabilities[idx]


class MonotoneSamplingScheme:
    """Base class for monotone sampling schemes over ``r``-dimensional tuples."""

    dimension: int

    def sample(self, vector: Sequence[float], seed: float) -> Outcome:
        """Sample ``vector`` with the given ``seed`` and return the outcome."""
        raise NotImplementedError

    def threshold(self, index: int, u: float) -> float:
        """Threshold of entry ``index`` at seed ``u``."""
        raise NotImplementedError

    def inclusion_probability(self, index: int, weight: float) -> float:
        """Probability that entry ``index`` with ``weight`` is sampled."""
        raise NotImplementedError


class CoordinatedScheme(MonotoneSamplingScheme):
    """Coordinated shared-seed threshold sampling of an ``r``-tuple.

    A single uniform seed drives all entries: entry ``i`` is reported iff
    ``v_i >= tau_i(u)``.  Restricting coordinated PPS / bottom-k sampling
    of multiple instances to one item yields exactly this scheme, which is
    why it is the workhorse of the whole library.
    """

    def __init__(self, thresholds: Sequence[ThresholdFunction]):
        if not thresholds:
            raise ValueError("at least one threshold function is required")
        self._thresholds = tuple(thresholds)

    @property
    def dimension(self) -> int:  # type: ignore[override]
        return len(self._thresholds)

    @property
    def thresholds(self) -> Tuple[ThresholdFunction, ...]:
        return self._thresholds

    def sample(self, vector: Sequence[float], seed: float) -> Outcome:
        if len(vector) != self.dimension:
            raise ValueError(
                f"vector has dimension {len(vector)}, scheme expects {self.dimension}"
            )
        if not 0.0 < seed <= 1.0:
            raise ValueError(f"seed must be in (0, 1], got {seed}")
        values = tuple(
            float(v) if float(v) >= tau(seed) else None
            for v, tau in zip(vector, self._thresholds)
        )
        return Outcome(seed=seed, values=values, scheme=self)

    def threshold(self, index: int, u: float) -> float:
        return self._thresholds[index](u)

    def inclusion_probability(self, index: int, weight: float) -> float:
        return self._thresholds[index].inclusion_probability(weight)

    def breakpoints_for_vector(self, vector: Sequence[float]) -> Tuple[float, ...]:
        """Seeds at which the outcome for ``vector`` changes.

        These are the inclusion probabilities of the positive entries;
        between consecutive breakpoints the set of sampled entries is
        constant, so lower-bound functions are smooth there.
        """
        points = set()
        for i, v in enumerate(vector):
            if v > 0:
                p = self.inclusion_probability(i, float(v))
                if 0.0 < p < 1.0:
                    points.add(p)
        return tuple(sorted(points))


def pps_scheme(tau_star: Sequence[float]) -> CoordinatedScheme:
    """Coordinated PPS scheme with per-entry rates ``tau_star``.

    ``pps_scheme([1, 1])`` is the scheme used by Examples 2–4 of the
    paper: each entry is sampled with probability equal to its value.
    """
    return CoordinatedScheme([LinearThreshold(t) for t in tau_star])
