"""Lower-bound functions ``f^{(v)}(u)`` — the engine behind every estimator.

For data ``v`` and seed ``u`` the paper defines the lower-bound function
``f^{(v)}(u) = inf { f(z) : z in S*(u, v) }`` — the smallest value of the
target that is still consistent with the outcome obtained at seed ``u``.
The L* estimator (eq. 31), the U* estimator, the v-optimal estimates and
the existence characterisations are all expressed in terms of this
function, so the library gives it a first-class representation.

Two views are provided:

* :class:`OutcomeLowerBound` — built from a single observed outcome; it
  can evaluate ``f^{(v)}(u)`` for any ``u >= rho`` (every such value is
  determined by the outcome, which is exactly why the estimators are
  well defined).
* :class:`VectorLowerBound` — the oracle view, built from the true data
  vector; it evaluates ``f^{(v)}(u)`` for every ``u in (0, 1]`` and is
  used by the analysis code (variance, competitiveness, v-optimal
  estimates).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .functions import EstimationTarget, OneSidedRange
from .outcome import Outcome
from .schemes import CoordinatedScheme, LinearThreshold, MonotoneSamplingScheme

__all__ = ["LowerBoundCurve", "OutcomeLowerBound", "VectorLowerBound"]


class LowerBoundCurve:
    """Common interface of lower-bound functions on an interval of seeds."""

    #: Smallest seed at which the curve may be evaluated.
    lower_limit: float = 0.0

    def __call__(self, u: float) -> float:
        raise NotImplementedError

    def breakpoints(self) -> Tuple[float, ...]:
        """Seeds (inside the evaluation interval) where the curve may jump.

        Between consecutive breakpoints the curve is continuous, which
        lets the integration helpers split integrals into smooth pieces.
        """
        raise NotImplementedError

    def values_at(self, us: Sequence[float]) -> np.ndarray:
        """The curve at every seed of ``us`` (vectorized where possible).

        The base implementation is the per-seed loop; subclasses with a
        closed form (e.g. :class:`VectorLowerBound` for the one-sided
        range under PPS) override the hot path, which is what lets the
        hull construction behind the v-optimal oracle trace a curve with
        a few array expressions instead of thousands of Python calls.
        """
        return np.array([self(float(u)) for u in us])

    def limit_at_zero(self) -> float:
        """``lim_{u -> 0+} f^{(v)}(u)`` (equals ``f(v)`` whenever an
        unbiased nonnegative estimator exists, eq. 9)."""
        raise NotImplementedError


class OutcomeLowerBound(LowerBoundCurve):
    """Lower-bound function derived from a single observed outcome.

    Only seeds ``u >= rho`` (the observed seed) can be queried — those are
    precisely the values an estimator is allowed to use.
    """

    def __init__(self, outcome: Outcome, target: EstimationTarget) -> None:
        self._outcome = outcome
        self._target = target
        self.lower_limit = outcome.seed

    @property
    def outcome(self) -> Outcome:
        return self._outcome

    def __call__(self, u: float) -> float:
        known = self._outcome.known_at(u)
        upper = self._outcome.upper_bounds_at(u)
        return self._target.infimum_over_box(known, upper)

    def breakpoints(self) -> Tuple[float, ...]:
        return self._outcome.information_breakpoints()

    def limit_at_zero(self) -> float:
        # From an outcome alone the limit at zero is not observable in
        # general; the value at the observed seed is the tightest
        # available lower bound.
        return self(self._outcome.seed)


class VectorLowerBound(LowerBoundCurve):
    """Oracle lower-bound function for a known data vector.

    This is what the paper denotes ``f^{(v)}``: for each seed ``u`` it
    reports the infimum of the target over the consistency set of the
    outcome that *would* be obtained when sampling ``v`` with seed ``u``.
    """

    def __init__(
        self,
        scheme: MonotoneSamplingScheme,
        target: EstimationTarget,
        vector: Sequence[float],
    ) -> None:
        self._scheme = scheme
        self._target = target
        self._vector = tuple(float(x) for x in vector)
        self.lower_limit = 0.0

    @property
    def vector(self) -> Tuple[float, ...]:
        return self._vector

    def true_value(self) -> float:
        """The quantity being estimated, ``f(v)``."""
        return self._target(self._vector)

    def __call__(self, u: float) -> float:
        if not 0.0 < u <= 1.0:
            raise ValueError(f"seed must be in (0, 1], got {u}")
        known = {}
        upper = {}
        for i, value in enumerate(self._vector):
            threshold = self._scheme.threshold(i, u)
            if value >= threshold:
                known[i] = value
            else:
                upper[i] = threshold
        return self._target.infimum_over_box(known, upper)

    def breakpoints(self) -> Tuple[float, ...]:
        points = set()
        for i, value in enumerate(self._vector):
            if value > 0:
                p = self._scheme.inclusion_probability(i, value)
                if 0.0 < p < 1.0:
                    points.add(p)
        return tuple(sorted(points))

    def values_at(self, us: Sequence[float]) -> np.ndarray:
        """Vectorized curve evaluation (see the base class).

        The closed form covers the setting of the paper's figures — the
        two-entry one-sided range under coordinated PPS — and evaluates
        exactly the expressions :meth:`__call__` evaluates (known entry
        iff its value is at or above the linear threshold, hidden entry
        anchored at the threshold), so the two agree to the last ulp of
        the power function.  Other targets and schemes fall back to the
        per-seed loop.
        """
        us = np.asarray(us, dtype=float)
        if (
            isinstance(self._target, OneSidedRange)
            and isinstance(self._scheme, CoordinatedScheme)
            and len(self._vector) == 2
            and all(
                isinstance(t, LinearThreshold) for t in self._scheme.thresholds
            )
        ):
            v1, v2 = self._vector
            t1 = us * self._scheme.thresholds[0].tau_star
            t2 = us * self._scheme.thresholds[1].tau_star
            anchor = np.where(v2 >= t2, v2, t2)
            gap = np.where(v1 >= t1, np.maximum(0.0, v1 - anchor), 0.0)
            return gap ** self._target.p
        return super().values_at(us)

    def limit_at_zero(self, tolerance: float = 1e-9) -> float:
        """Numerically approach ``lim_{u->0+} f^{(v)}(u)``."""
        u = min(1.0, max(tolerance, 1e-6))
        previous = self(u)
        while u > tolerance:
            u /= 4.0
            current = self(u)
            if abs(current - previous) <= 1e-12 * max(1.0, abs(current)):
                return current
            previous = current
        return previous
