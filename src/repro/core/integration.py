"""Quadrature helpers tailored to monotone-estimation integrands.

The quantities the paper works with are integrals over the seed of
functions that are smooth *between* the breakpoints of a lower-bound
function (the seeds at which a sampled entry drops out) but typically jump
*at* them, and that may have an integrable singularity as the seed
approaches zero (the v-optimal and L* estimates may diverge like
``u^{-p}`` with ``p < 1/2``).

These helpers split integrals at breakpoints and fall back to
``scipy.integrate.quad`` per smooth piece, which keeps every estimator and
analysis routine accurate without special-casing each target function.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np
from scipy import integrate

__all__ = [
    "piecewise_quad",
    "integral_of_lb_over_u2",
    "refine_points",
]


def refine_points(
    lower: float, upper: float, breakpoints: Iterable[float]
) -> list:
    """Sorted list of split points for integration over ``[lower, upper]``."""
    points = {float(lower), float(upper)}
    for b in breakpoints:
        b = float(b)
        if lower < b < upper:
            points.add(b)
    return sorted(points)


def piecewise_quad(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    breakpoints: Sequence[float] = (),
    rtol: float = 1e-9,
    atol: float = 1e-12,
    limit: int = 200,
) -> float:
    """Integrate ``func`` over ``[lower, upper]`` splitting at breakpoints.

    Each piece is integrated with adaptive Gauss–Kronrod quadrature.  The
    function is evaluated pointwise, so step discontinuities at the split
    points are handled exactly; discontinuities strictly inside a piece
    are handled adaptively (slower but still correct to tolerance).
    """
    if upper <= lower:
        return 0.0
    total = 0.0
    points = refine_points(lower, upper, breakpoints)
    for a, b in zip(points, points[1:]):
        if b - a <= 0:
            continue
        value, _ = integrate.quad(
            func, a, b, epsrel=rtol, epsabs=atol, limit=limit
        )
        total += value
    return total


def integral_of_lb_over_u2(
    lb: Callable[[float], float],
    lower: float,
    upper: float = 1.0,
    breakpoints: Sequence[float] = (),
    rtol: float = 1e-9,
) -> float:
    """Compute ``∫_{lower}^{upper} lb(u) / u**2 du``.

    This is the integral appearing in the closed form of the L* estimator
    (eq. 31).  ``lower`` is the observed seed, hence strictly positive, so
    the integrand has no singularity on the integration range — but when
    the seed is very small the raw integrand spans many orders of
    magnitude and adaptive quadrature on the ``u`` axis loses precision.
    The substitution ``t = 1/u`` maps the integral to
    ``∫_{1/upper}^{1/lower} lb(1/t) dt`` whose integrand is bounded by
    ``lb(lower)`` and monotone, which quadrature handles accurately for
    any seed size.
    """
    if lower <= 0:
        raise ValueError("the lower limit must be positive")
    if upper <= lower:
        return 0.0

    def integrand(t: float) -> float:
        return lb(1.0 / t)

    transformed_breakpoints = [1.0 / b for b in breakpoints if lower < b < upper]
    return piecewise_quad(
        integrand,
        1.0 / upper,
        1.0 / lower,
        transformed_breakpoints,
        rtol=rtol,
    )


def expectation_on_grid(
    values: np.ndarray, grid: np.ndarray
) -> float:
    """Trapezoidal expectation ``∫ values du`` over a seed grid.

    Used by the numerical backward solvers (e.g. the generic U*
    estimator), where estimates are only available on a grid.
    """
    if values.shape != grid.shape:
        raise ValueError("values and grid must have the same shape")
    if len(grid) < 2:
        return 0.0
    trapezoid = getattr(np, "trapezoid", None)
    if trapezoid is None:  # NumPy < 2.0 fallback
        trapezoid = np.trapz
    return float(trapezoid(values, grid))
