"""Core monotone-sampling machinery: domains, schemes, outcomes, targets."""

from .domain import BoxDomain, Domain, GridDomain, unit_box
from .functions import (
    AbsoluteCombination,
    DistinctOr,
    EstimationTarget,
    ExponentiatedRange,
    GenericTarget,
    MaxPower,
    MinPower,
    OneSidedRange,
    WeightedSum,
)
from .lower_bound import LowerBoundCurve, OutcomeLowerBound, VectorLowerBound
from .lower_hull import PiecewiseLinearHull, hull_of_curve, lower_hull_points
from .outcome import Outcome
from .schemes import (
    CoordinatedScheme,
    LinearThreshold,
    MonotoneSamplingScheme,
    StepThreshold,
    ThresholdFunction,
    pps_scheme,
)
from .seeds import SeedAssigner, hash_to_unit
from .existence import ExistenceReport, check_domain, check_vector

__all__ = [
    "BoxDomain",
    "Domain",
    "GridDomain",
    "unit_box",
    "AbsoluteCombination",
    "DistinctOr",
    "EstimationTarget",
    "ExponentiatedRange",
    "GenericTarget",
    "MaxPower",
    "MinPower",
    "OneSidedRange",
    "WeightedSum",
    "LowerBoundCurve",
    "OutcomeLowerBound",
    "VectorLowerBound",
    "PiecewiseLinearHull",
    "hull_of_curve",
    "lower_hull_points",
    "Outcome",
    "CoordinatedScheme",
    "LinearThreshold",
    "MonotoneSamplingScheme",
    "StepThreshold",
    "ThresholdFunction",
    "pps_scheme",
    "SeedAssigner",
    "hash_to_unit",
    "ExistenceReport",
    "check_domain",
    "check_vector",
]
