"""Core monotone-sampling machinery: domains, schemes, outcomes, targets."""

from .domain import BoxDomain, Domain, GridDomain, unit_box
from .functions import (
    AbsoluteCombination,
    DistinctOr,
    EstimationTarget,
    ExponentiatedRange,
    GenericTarget,
    MaxPower,
    MinPower,
    OneSidedRange,
    WeightedSum,
)
from .lower_bound import LowerBoundCurve, OutcomeLowerBound, VectorLowerBound
from .lower_hull import PiecewiseLinearHull, hull_of_curve, lower_hull_points
from .outcome import Outcome
from .schemes import (
    CoordinatedScheme,
    LinearThreshold,
    MonotoneSamplingScheme,
    StepThreshold,
    ThresholdFunction,
    pps_scheme,
)
from .seeds import SeedAssigner, hash_to_unit
from .existence import ExistenceReport, check_domain, check_vector

__all__ = [
    "BoxDomain",
    "Domain",
    "GridDomain",
    "unit_box",
    "AbsoluteCombination",
    "DistinctOr",
    "EstimationTarget",
    "ExponentiatedRange",
    "GenericTarget",
    "MaxPower",
    "MinPower",
    "OneSidedRange",
    "WeightedSum",
    "LowerBoundCurve",
    "OutcomeLowerBound",
    "VectorLowerBound",
    "PiecewiseLinearHull",
    "hull_of_curve",
    "lower_hull_points",
    "Outcome",
    "CoordinatedScheme",
    "LinearThreshold",
    "MonotoneSamplingScheme",
    "StepThreshold",
    "ThresholdFunction",
    "pps_scheme",
    "SeedAssigner",
    "hash_to_unit",
    "ExistenceReport",
    "check_domain",
    "check_vector",
]

# ----------------------------------------------------------------------
# Facade wiring: targets and scheme constructors self-register into the
# repro.api registries (the registry module is dependency-free, so this
# creates no import cycle).  String keys are what EstimationSession's
# .target("...") and scheme="..." arguments resolve.
# ----------------------------------------------------------------------
from ..api.registry import register_scheme, register_target

register_target("one_sided_range", OneSidedRange)
register_target("rg_plus", OneSidedRange)
register_target("range", ExponentiatedRange)
register_target("exponentiated_range", ExponentiatedRange)
register_target("rg", ExponentiatedRange)
register_target("abs_combination", AbsoluteCombination)
register_target("distinct_or", DistinctOr)
register_target("or", DistinctOr)
register_target("max_power", MaxPower)
register_target("min_power", MinPower)
register_target("weighted_sum", WeightedSum)
register_target("generic", GenericTarget)

register_scheme("pps", pps_scheme)


def _step_scheme(weights):
    """``scheme="step"``: per-instance ``(value, probability)`` tables."""
    return CoordinatedScheme([StepThreshold(pairs) for pairs in weights])


register_scheme("step", _step_scheme)
