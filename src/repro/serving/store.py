"""The sketch store: streaming ingestion, mergeable sketches, batch queries.

A :class:`SketchStore` turns the library's offline sampling substrates
into a long-lived service.  Internally it is a *ledger*, not a bag of
sketches: per key-group it accumulates each key's total weight (in
arrival order) and first-seen timestamp.  The three sketch families are
materialised lazily from the ledger and cached until the next ingest:

* a **bottom-k sketch** of the accumulated weights (``config.rank_method``),
* a **PPS sample** at rate ``config.tau_star`` — the substrate of ``sum``
  and ``similarity`` queries,
* a **temporal all-distances sketch** whose "distance" is the first-seen
  timestamp — the substrate of ``distinct`` (distinct keys seen up to a
  time horizon) queries.

All groups share one deterministic seed assignment (hashed from the key
with ``config.salt``), so sketches of different groups — and of different
stores built with the same config — are *coordinated*: mergeable, and
comparable for similarity.

Merging (:func:`merge_stores`) adds the ledgers: per-key totals add,
first-seen timestamps take the minimum.  Combined with key-routed
sharding (:func:`~repro.serving.events.shard_events`), shard-then-merge
reproduces single-pass ingestion *bit for bit*, because each key's
weight is accumulated by exactly one shard in arrival order.  Merge is
associative and commutative; it is deliberately **not** idempotent
(merging a store with itself doubles every weight — the idempotent merge
lives at the sketch level, see :meth:`BottomKSketch.merge
<repro.sketches.bottomk.BottomKSketch.merge>`).

Queries go through a :class:`~repro.api.registry.Registry` of serving
query kinds (``sum`` / ``similarity`` / ``distinct``), answer straight
from the sketches through the engine kernels in
:mod:`repro.engine.serving`, and honour the shared
:class:`~repro.api.backend.BackendPolicy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..aggregates.coordinated import CoordinatedSample, InstanceSample
from ..api.backend import BackendPolicy, BackendSpec
from ..api.registry import Registry
from ..core.seeds import SeedAssigner
from ..sketches.ads import AllDistancesSketch, build_ads_from_distances
from ..sketches.bottomk import BottomKSketch, RankMethod, bottom_k_sketch
from ..sketches.pps import PPSSample, pps_sample
from .events import Event

__all__ = [
    "GroupState",
    "SERVING_QUERY_KINDS",
    "SketchStore",
    "StoreConfig",
    "merge_sketch_views",
    "merge_stores",
    "sketch_view_payload",
]

#: Registry of serving query kinds; ``sum`` / ``similarity`` /
#: ``distinct`` are built in, and plugins extend it the same way the
#: estimation registries are extended.
SERVING_QUERY_KINDS = Registry("serving query")


@dataclass(frozen=True)
class StoreConfig:
    """Immutable sketch parameters shared by every group of a store.

    Two stores are mergeable exactly when their configs are equal — the
    config pins the seed assignment (``salt``), the sketch capacity
    (``k``), the PPS rate (``tau_star``) and the bottom-k rank function,
    all of which must coincide for coordinated sketches to describe the
    same sampling scheme.
    """

    k: int = 64
    tau_star: float = 1.0
    rank_method: RankMethod = RankMethod.PRIORITY
    salt: str = ""

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.tau_star <= 0:
            raise ValueError("tau_star must be positive")
        if not isinstance(self.rank_method, RankMethod):
            object.__setattr__(
                self, "rank_method", RankMethod(self.rank_method)
            )

    def to_dict(self) -> Dict[str, Any]:
        """The config's JSON payload (stored in ``config.json``)."""
        return {
            "k": self.k,
            "tau_star": self.tau_star,
            "rank_method": self.rank_method.value,
            "salt": self.salt,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StoreConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            k=int(payload["k"]),
            tau_star=float(payload["tau_star"]),
            rank_method=RankMethod(payload["rank_method"]),
            salt=str(payload.get("salt", "")),
        )


class GroupState:
    """One key-group's ledger plus its lazily cached sketches.

    The ledger is the source of truth: ``totals`` maps each key to its
    accumulated weight (floats added in arrival order — the quantity the
    bit-identity guarantee is about), ``first_seen`` to the earliest
    timestamp the key appeared at, and ``last_seen`` to the latest (the
    recency the retention policies in :mod:`repro.serving.retention`
    evict by).  Sketches are derived views, rebuilt on demand after any
    mutation — except append-only batches, which the store patches into
    the cached views incrementally (see ``SketchStore.ingest``).
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.first_seen: Dict[str, float] = {}
        self.last_seen: Dict[str, float] = {}
        self.events = 0
        self._cache: Dict[str, Any] = {}

    def apply(self, event: Event, invalidate: bool = True) -> None:
        """Fold one event into the ledger.

        ``invalidate=False`` leaves the cached sketches untouched; the
        caller then owns bringing them back in sync (the append-only
        fast path patches them via exact sketch-level merges).
        """
        self.totals[event.key] = self.totals.get(event.key, 0.0) + float(
            event.weight
        )
        seen = self.first_seen.get(event.key)
        if seen is None or event.timestamp < seen:
            self.first_seen[event.key] = float(event.timestamp)
        last = self.last_seen.get(event.key)
        if last is None or event.timestamp > last:
            self.last_seen[event.key] = float(event.timestamp)
        self.events += 1
        if invalidate:
            self._cache.clear()

    def drop_keys(self, keys: Iterable[str]) -> None:
        """Evict keys from the ledger and invalidate cached sketches.

        Unknown keys are ignored.  ``events`` is deliberately left
        alone: it counts feed events folded in, not retained keys, and
        the store-level watermark must keep advancing monotonically so
        snapshots taken after an eviction supersede earlier ones.
        """
        for key in keys:
            self.totals.pop(key, None)
            self.first_seen.pop(key, None)
            self.last_seen.pop(key, None)
        self._cache.clear()

    def invalidate(self) -> None:
        """Drop cached sketches (after any direct ledger mutation)."""
        self._cache.clear()

    def cached(self, kind: str, build) -> Any:
        """Return the cached sketch of ``kind``, building it on a miss."""
        if kind not in self._cache:
            self._cache[kind] = build()
        return self._cache[kind]


class SketchStore:
    """A registry of coordinated, mergeable sketches over an event feed.

    Parameters
    ----------
    config:
        Sketch parameters (defaults to :class:`StoreConfig`'s defaults).

    A bare constructor call gives an in-memory store; :meth:`open`
    attaches a directory with a write-ahead log and snapshots (see
    :mod:`repro.serving.persistence`).  Ingestion is incremental
    (:meth:`ingest`), sketches are served per group and kind
    (:meth:`sketch`), queries are batched across groups (:meth:`query`),
    and :func:`merge_stores` combines stores built from disjoint (or
    key-routed) feeds.
    """

    def __init__(self, config: Optional[StoreConfig] = None) -> None:
        self._config = config if config is not None else StoreConfig()
        self._groups: Dict[str, GroupState] = {}
        self._events = 0
        self._seeds = SeedAssigner(salt=self._config.salt)
        # Set by persistence when the store is directory-backed.
        self._root: Optional[Path] = None
        self._log = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def config(self) -> StoreConfig:
        """The store's immutable sketch parameters."""
        return self._config

    @property
    def root(self) -> Optional[Path]:
        """The backing directory, or ``None`` for an in-memory store."""
        return self._root

    @property
    def events_ingested(self) -> int:
        """Total events folded into the ledger (the snapshot watermark)."""
        return self._events

    @property
    def groups(self) -> List[str]:
        """Names of every key-group seen so far, sorted."""
        return sorted(self._groups)

    def group_state(self, group: str) -> GroupState:
        """The (live) ledger of one group, created on first access."""
        state = self._groups.get(group)
        if state is None:
            state = self._groups[group] = GroupState()
        return state

    def seed_for(self, key: str) -> float:
        """The shared hashed seed of ``key`` (identical across groups)."""
        return self._seeds.seed_for(key)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[Event]) -> int:
        """Fold a batch of events into the store, in order.

        Directory-backed stores append each event to the write-ahead log
        (flushed and fsynced per batch) *before* applying it, so a crash
        can lose at most events never acknowledged by this method.

        **Append-only fast path.**  When a batch only *introduces* keys
        to a group (no event touches a key already in the ledger) and
        the group's sketch views are materialised, the store does not
        invalidate-and-rebuild: it builds sketches over just the new
        keys and folds them into the cached views with the exact
        sketch-level merges (:meth:`BottomKSketch.merge
        <repro.sketches.bottomk.BottomKSketch.merge>` and friends),
        which are bit-identical in content to a rebuild because the new
        keys form a population disjoint from the retained one under the
        shared seed assignment.  Batches that update retained keys fall
        back to plain invalidation.

        Returns
        -------
        int
            Number of events ingested from this batch.
        """
        batch = list(events)
        if self._log is not None:
            self._log.append_batch(
                (self._events + i + 1, event) for i, event in enumerate(batch)
            )
        per_group: Dict[str, List[Event]] = {}
        for event in batch:
            per_group.setdefault(event.group, []).append(event)
        for group, group_events in per_group.items():
            state = self.group_state(group)
            if state._cache and all(
                event.key not in state.totals for event in group_events
            ):
                new_keys: List[str] = []
                seen = set()
                for event in group_events:
                    state.apply(event, invalidate=False)
                    if event.key not in seen:
                        seen.add(event.key)
                        new_keys.append(event.key)
                self._patch_caches(state, new_keys)
            else:
                for event in group_events:
                    state.apply(event)
        self._events += len(batch)
        return len(batch)

    def _apply(self, event: Event) -> None:
        """Apply one event to the ledger (no logging — replay path)."""
        self.group_state(event.group).apply(event)
        self._events += 1

    def _patch_caches(self, state: GroupState, new_keys: Sequence[str]) -> None:
        """Extend cached sketch views in place after an append-only batch.

        ``new_keys`` were introduced by the batch (disjoint from the
        pre-batch ledger) and are already folded into ``state``.  A
        sketch built over just the new keys merged into the cached view
        equals a full rebuild — the sketch-level merges are exact for
        disjoint populations sharing the seed assignment — while only
        paying for the new keys.  The derived reduction arrays (sorted
        weights, ADS columns) are dropped and rebuilt lazily; they are
        full-ledger concatenations with no incremental form.
        """
        cache = state._cache
        config = self._config
        if "bottomk" in cache:
            new_totals = {key: state.totals[key] for key in new_keys}
            cache["bottomk"] = cache["bottomk"].merge(
                bottom_k_sketch(
                    new_totals,
                    k=config.k,
                    method=config.rank_method,
                    seeds=self._seeds.seeds_for(new_totals),
                )
            )
        if "pps" in cache:
            new_totals = {key: state.totals[key] for key in sorted(new_keys)}
            cache["pps"] = cache["pps"].merge(
                pps_sample(
                    new_totals,
                    tau_star=config.tau_star,
                    seeds=self._seeds.seeds_for(new_totals),
                )
            )
        if "ads" in cache:
            new_first = {key: state.first_seen[key] for key in new_keys}
            cache["ads"] = cache["ads"].merge(
                build_ads_from_distances(
                    new_first,
                    k=config.k,
                    ranks=self._seeds.seeds_for(new_first),
                )
            )
        cache.pop("sum_weights", None)
        cache.pop("ads_columns", None)

    # ------------------------------------------------------------------
    # Sketch views
    # ------------------------------------------------------------------
    def sketch(
        self, group: str, kind: str = "bottomk"
    ) -> Union[BottomKSketch, PPSSample, AllDistancesSketch]:
        """The materialised sketch of one group.

        Parameters
        ----------
        group:
            Key-group name (a group never ingested yields the empty
            sketch).
        kind:
            ``"bottomk"``, ``"pps"``, or ``"ads"`` (the temporal ADS over
            first-seen timestamps).
        """
        state = self.group_state(group)
        config = self._config
        if kind == "bottomk":
            return state.cached(
                "bottomk",
                lambda: bottom_k_sketch(
                    state.totals,
                    k=config.k,
                    method=config.rank_method,
                    seeds=self._seeds.seeds_for(state.totals),
                ),
            )
        if kind == "pps":
            # Feed the weights in sorted-key order: PPS keeps entries in
            # input order (unlike bottom-k/ADS, which sort by rank), so
            # this makes the view — and its serialised form — a function
            # of ledger *content* alone, not of arrival/merge order.
            return state.cached(
                "pps",
                lambda: pps_sample(
                    {key: state.totals[key] for key in sorted(state.totals)},
                    tau_star=config.tau_star,
                    seeds=self._seeds.seeds_for(state.totals),
                ),
            )
        if kind == "ads":
            return state.cached(
                "ads",
                lambda: build_ads_from_distances(
                    state.first_seen,
                    k=config.k,
                    ranks=self._seeds.seeds_for(state.first_seen),
                ),
            )
        raise ValueError(
            f"unknown sketch kind {kind!r}; expected 'bottomk', 'pps', or 'ads'"
        )

    def coordinated_sample(self, groups: Sequence[str]) -> CoordinatedSample:
        """The groups' PPS samples as one coordinated multi-instance sample.

        Because all groups share the seed assignment and the PPS rate,
        their per-group samples are instances of one coordinated scheme —
        ready for the estimators in :mod:`repro.aggregates` (similarity,
        L_p differences, any registered target).
        """
        samples = []
        seeds: Dict[str, float] = {}
        for group in groups:
            pps = self.sketch(group, "pps")
            samples.append(
                InstanceSample(
                    instance=group,
                    tau_star=pps.tau_star,
                    entries=dict(pps.entries),
                )
            )
            seeds.update(pps.seeds)
        return CoordinatedSample.from_instance_samples(samples, seeds)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        kind: str,
        groups: Optional[Sequence[str]] = None,
        keys: Optional[Iterable[str]] = None,
        until: Optional[float] = None,
        backend: BackendSpec = None,
    ) -> Any:
        """Answer a batch query straight from the stored sketches.

        Parameters
        ----------
        kind:
            A registered serving query kind: ``"sum"`` (per-group HT
            subset-sum estimate over the PPS samples), ``"distinct"``
            (per-group HIP estimate of distinct keys first seen up to
            ``until``), or ``"similarity"`` (weighted closeness between
            exactly two groups — the ratio of the estimated sums of
            per-key minima and maxima).
        groups:
            Groups to answer for; defaults to every group in the store
            (``similarity`` requires exactly two).
        keys:
            Optional subset-query selection (``sum`` only).
        until:
            Time horizon for ``distinct`` (defaults to all of time).
        backend:
            Dispatch override; defaults to the process-wide
            :class:`~repro.api.backend.BackendPolicy`.

        Returns
        -------
        dict or float
            ``{group: estimate}`` for ``sum`` and ``distinct``; a single
            ``float`` in ``[0, 1]`` for ``similarity``.
        """
        handler = SERVING_QUERY_KINDS.get(kind)
        selected = self.groups if groups is None else list(groups)
        return handler(
            self, groups=selected, keys=keys, until=until, backend=backend
        )

    def distinct_batch(
        self,
        group_horizons: Sequence[tuple],
        backend: BackendSpec = None,
    ) -> List[float]:
        """``distinct`` estimates for many ``(group, until)`` pairs at once.

        This is the coalescing entry point behind
        :class:`~repro.serving.batcher.QueryBatcher`: concurrent
        ``distinct`` requests with *different* time horizons still
        collapse into one engine dispatch.  A single-pair call is the
        exact code path of ``query("distinct", ...)``, so coalesced and
        sequential answers are bit-identical.

        Parameters
        ----------
        group_horizons:
            ``(group, until)`` pairs; ``until=None`` means all of time.
        backend:
            Dispatch override, as for :meth:`query`.

        Returns
        -------
        list of float
            One estimate per pair, in input order.
        """
        from ..engine.serving import batch_hip_horizon_counts

        column_groups = []
        horizons = []
        for group, until in group_horizons:
            column_groups.append(self._ads_columns(group))
            horizons.append(math.inf if until is None else float(until))
        return batch_hip_horizon_counts(
            column_groups, horizons, backend=backend
        )

    def _ads_columns(self, group: str):
        """The group's cached ``(distance, threshold)`` ADS column arrays."""
        import numpy as np

        entries = self.sketch(group, "ads").entries

        def columns():
            nodes = sorted(entries)
            return (
                np.asarray([entries[n].distance for n in nodes], dtype=float),
                np.asarray([entries[n].threshold for n in nodes], dtype=float),
            )

        return self.group_state(group).cached("ads_columns", columns)

    def dispatch_size(
        self,
        kind: str,
        groups: Optional[Sequence[str]] = None,
        keys: Optional[Iterable[str]] = None,
        until: Optional[float] = None,
    ) -> int:
        """The entry count :meth:`query` would resolve its backend on.

        The query batcher uses this to resolve each request's backend
        *individually* before coalescing, so an ``auto`` policy decides
        exactly as it would for the sequential single-caller call —
        coalescing never flips a dispatch decision, which is what keeps
        coalesced answers bit-identical.
        """
        selected = self.groups if groups is None else list(groups)
        if kind == "sum":
            chosen = set(keys) if keys is not None else None
            total = 0
            for group in selected:
                entries = self.sketch(group, "pps").entries
                if chosen is None:
                    total += len(entries)
                else:
                    total += sum(1 for key in entries if key in chosen)
            return total
        if kind == "distinct":
            horizon = math.inf if until is None else float(until)
            total = 0
            for group in selected:
                distances, _thresholds = self._ads_columns(group)
                total += int((distances <= horizon).sum())
            return total
        raise ValueError(
            f"no dispatch size for query kind {kind!r}; expected 'sum' "
            "or 'distinct'"
        )

    def retain(self, policy, now: Optional[float] = None) -> Dict[str, List[str]]:
        """Apply a retention policy to every group; see
        :func:`repro.serving.retention.apply_retention`."""
        from .retention import apply_retention

        return apply_retention(self, policy, now=now)

    # ------------------------------------------------------------------
    # Persistence facade (implemented in repro.serving.persistence)
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        config: Optional[StoreConfig] = None,
    ) -> "SketchStore":
        """Open (or create) a directory-backed store and recover its state.

        Recovery loads the latest *finalized* snapshot, then replays
        write-ahead-log events past the snapshot's watermark; torn
        trailing log lines and abandoned ``.partial`` snapshots are
        ignored.  See :func:`repro.serving.persistence.open_store`.
        """
        from .persistence import open_store

        return open_store(cls, Path(root), config)

    def snapshot(self) -> Path:
        """Persist the ledger as an atomically finalized snapshot.

        Returns the finalized snapshot path; requires a directory-backed
        store.  See :func:`repro.serving.persistence.save_snapshot`.
        """
        from .persistence import save_snapshot

        if self._root is None:
            raise ValueError(
                "in-memory store has no directory; use SketchStore.open() "
                "or attach() first"
            )
        return save_snapshot(self)

    def attach(self, root: Union[str, Path]) -> "SketchStore":
        """Attach an in-memory store to a fresh directory and snapshot it.

        The directory must not already hold a store.  Returns ``self``
        (now directory-backed, with subsequent ingests write-ahead
        logged).
        """
        from .persistence import attach_store

        attach_store(self, Path(root))
        return self

    def close(self) -> None:
        """Release the write-ahead-log handle of a directory-backed store."""
        if self._log is not None:
            self._log.close()


def merge_stores(store_a: SketchStore, store_b: SketchStore) -> SketchStore:
    """Merge two stores' ledgers into a new in-memory store.

    Per group and key, accumulated weights **add** and first-seen
    timestamps take the **minimum**; group and store event counts add.
    The operation is associative and commutative.  It is *not*
    idempotent — merging a store with itself doubles every weight;
    dedup-style idempotent merging is the sketch-level operation
    (:meth:`~repro.sketches.bottomk.BottomKSketch.merge` and friends),
    which applies when two sketches describe the *same* population.

    When the input feeds were key-routed
    (:func:`~repro.serving.events.shard_events`), every key lives in
    exactly one input, the addition degenerates to a copy, and the
    merged ledger — hence every derived sketch — is bit-identical to
    single-pass ingestion of the combined feed.

    Raises
    ------
    ValueError
        When the two configs differ (different seed assignments or
        sketch parameters are not mergeable).
    """
    if store_a.config != store_b.config:
        raise ValueError(
            "cannot merge stores with different configs: "
            f"{store_a.config} != {store_b.config}"
        )
    merged = SketchStore(store_a.config)
    for source in (store_a, store_b):
        for group in source.groups:
            state = source.group_state(group)
            target = merged.group_state(group)
            for key, total in state.totals.items():
                if key in target.totals:
                    target.totals[key] = target.totals[key] + total
                else:
                    target.totals[key] = total
            for key, seen in state.first_seen.items():
                prior = target.first_seen.get(key)
                if prior is None or seen < prior:
                    target.first_seen[key] = seen
            for key, seen in state.last_seen.items():
                prior = target.last_seen.get(key)
                if prior is None or seen > prior:
                    target.last_seen[key] = seen
            target.events += state.events
            target.invalidate()
    merged._events = store_a.events_ingested + store_b.events_ingested
    return merged


# ----------------------------------------------------------------------
# Sketch-view shipping (the shard router's scatter-gather substrate)
# ----------------------------------------------------------------------
#: Deserializers for shipped sketch views, by kind.
_VIEW_SKETCH_KINDS = {
    "pps": PPSSample.from_dict,
    "ads": AllDistancesSketch.from_dict,
    "bottomk": BottomKSketch.from_dict,
}


def sketch_view_payload(
    store: SketchStore,
    groups: Optional[Sequence[str]] = None,
    kinds: Sequence[str] = ("pps", "ads"),
) -> Dict[str, Any]:
    """Serialize a store's sketch views for cross-shard shipping.

    The payload carries the config (so a receiver can refuse mismatched
    sampling schemes), the event watermark the views describe, and one
    serialized sketch per requested ``(group, kind)``.  Requested groups
    the store has never ingested are *omitted* — on a key-routed shard
    most groups hold only part of the key space and absent means
    "nothing here", which the merge treats as the empty sketch.

    The router gathers these from every shard and merges them with
    :func:`merge_sketch_views`; because coordinated sketches over
    disjoint key populations merge exactly, the merged views equal the
    unsharded store's bit for bit.
    """
    if groups is None:
        selected = store.groups
    else:
        selected = [group for group in groups if group in store._groups]
    for kind in kinds:
        if kind not in _VIEW_SKETCH_KINDS:
            raise ValueError(
                f"unknown sketch kind {kind!r}; expected one of "
                f"{sorted(_VIEW_SKETCH_KINDS)}"
            )
    return {
        "config": store.config.to_dict(),
        "watermark": store.events_ingested,
        "groups": {
            group: {
                kind: store.sketch(group, kind).to_dict() for kind in kinds
            }
            for group in selected
        },
    }


def merge_sketch_views(
    config: StoreConfig, views: Sequence[Mapping[str, Any]]
) -> SketchStore:
    """Fuse shipped sketch views into a transient, queryable store.

    Per group and kind, the shards' sketches are merged with the
    sketch-level merge operations (exact over key-routed — hence
    disjoint — populations).  Merged PPS entries/seeds are rebuilt in
    sorted-key order, the order an unsharded store feeds its weights in,
    so the fused views are *dict-equal* to the unsharded ones — not just
    equal as sets.  The result is an in-memory :class:`SketchStore`
    whose ledger is empty but whose sketch caches are primed with the
    fused views and whose watermark is the sum of the shards'; queries
    against it run the identical reduction code path as against any
    other store, which is what makes routed answers bit-identical.

    Raises
    ------
    ValueError
        When a view's config differs from ``config`` (different
        sampling schemes are not mergeable).
    """
    fused: Dict[str, Dict[str, Any]] = {}
    watermark = 0
    for view in views:
        if StoreConfig.from_dict(view["config"]) != config:
            raise ValueError(
                "cannot merge sketch views with mismatched configs: "
                f"{view['config']} != {config.to_dict()}"
            )
        watermark += int(view["watermark"])
        for group, sketches in view["groups"].items():
            target = fused.setdefault(group, {})
            for kind, payload in sketches.items():
                sketch = _VIEW_SKETCH_KINDS[kind](payload)
                prior = target.get(kind)
                target[kind] = (
                    sketch if prior is None else prior.merge(sketch)
                )
    store = SketchStore(config)
    store._events = watermark
    for group, sketches in fused.items():
        state = store.group_state(group)
        for kind, sketch in sketches.items():
            if kind == "pps":
                sketch = PPSSample(
                    tau_star=sketch.tau_star,
                    entries={
                        key: sketch.entries[key]
                        for key in sorted(sketch.entries)
                    },
                    seeds={
                        key: sketch.seeds[key]
                        for key in sorted(sketch.seeds)
                    },
                )
            state._cache[kind] = sketch
    return store


# ----------------------------------------------------------------------
# Built-in serving query kinds
# ----------------------------------------------------------------------
@SERVING_QUERY_KINDS.register("sum")
def _query_sum(store, groups, keys, until, backend):
    """Per-group HT subset-sum estimates from the PPS samples.

    Entries are reduced in sorted-key order, so two stores holding the
    same ledger *content* (e.g. one recovered from a snapshot, whose
    dict insertion order differs) return bit-identical answers.  The
    sorted weight array of each group is cached next to its sketches
    (and invalidated with them), so a served query is reduction-only.
    """
    import numpy as np

    from ..engine.serving import batch_ht_sums

    selected = set(keys) if keys is not None else None
    weight_groups = []
    for group in groups:
        pps = store.sketch(group, "pps")
        if selected is None:
            weight_groups.append(
                store.group_state(group).cached(
                    "sum_weights",
                    lambda: np.asarray(
                        [pps.entries[key] for key in sorted(pps.entries)],
                        dtype=float,
                    ),
                )
            )
        else:
            weight_groups.append(
                [
                    pps.entries[key]
                    for key in sorted(pps.entries)
                    if key in selected
                ]
            )
    sums = batch_ht_sums(
        weight_groups, store.config.tau_star, backend=backend
    )
    return dict(zip(groups, sums))


@SERVING_QUERY_KINDS.register("distinct")
def _query_distinct(store, groups, keys, until, backend):
    """Per-group HIP estimates of distinct keys first seen up to ``until``.

    The sketch entries' (distance, threshold) columns are cached in
    sorted-node order — content-determined reductions, as for ``sum`` —
    and the query only masks them by the horizon and reduces.  The
    masking and reduction are shared with :meth:`SketchStore.distinct_batch`
    (the coalescing entry point), so single-caller and coalesced
    answers come from one code path.
    """
    if keys is not None:
        raise ValueError("'distinct' does not take a key selection")
    counts = store.distinct_batch(
        [(group, until) for group in groups], backend=backend
    )
    return dict(zip(groups, counts))


@SERVING_QUERY_KINDS.register("similarity")
def _query_similarity(store, groups, keys, until, backend):
    """Weighted closeness similarity between exactly two groups.

    The two groups' PPS samples form a coordinated two-instance sample;
    the estimate is ``est(sum_k min(w_a, w_b)) / est(sum_k max(w_a, w_b))``
    with the L* estimator per item — the weighted-Jaccard analogue of the
    paper's closeness similarity, clamped to ``[0, 1]``.
    """
    from ..aggregates.sum_estimator import SumAggregateEstimator
    from ..core.functions import MaxPower, MinPower
    from ..graphs.similarity import SimilarityEstimate

    if len(groups) != 2:
        raise ValueError(
            f"'similarity' requires exactly two groups, got {len(groups)}"
        )
    if keys is not None:
        raise ValueError("'similarity' does not take a key selection")
    sample = store.coordinated_sample(groups)
    policy = BackendPolicy.coerce(backend)
    numerator = SumAggregateEstimator(MinPower(p=1.0), backend=policy)
    denominator = SumAggregateEstimator(MaxPower(p=1.0), backend=policy)
    estimate = SimilarityEstimate(
        numerator=numerator.estimate(sample).value,
        denominator=denominator.estimate(sample).value,
    )
    return estimate.value
