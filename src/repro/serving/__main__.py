"""``python -m repro.serving`` — dispatch to :mod:`repro.serving.cli`."""

from .cli import main

raise SystemExit(main())
