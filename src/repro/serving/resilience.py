"""One retry/backoff/timeout policy for every serving-layer retry loop.

Before this module, four retry implementations had grown independently:
the :class:`~repro.serving.server.ServingClient` reconnect loop, the
:class:`~repro.serving.replication.ReplicaFollower` reconnect loop, the
shard router's re-target attempts, and the load CLI's shed backoff.
Each hand-rolled the same shape — exponential delay, a cap, sometimes a
server hint — with slightly different bugs: the client honoured a
router's ``retry_after`` hint *uncapped*, the follower's loop could only
sleep wall-clock (so reconnect tests burned real seconds), and none of
them jittered, so a fleet of producers backing off from one overloaded
primary would retry in lockstep.

:class:`RetryPolicy` is the single shared implementation:

* **Capped exponential backoff** — retry ``n`` waits
  ``base * 2**(n-1)`` seconds, never more than ``cap``.
* **Seeded deterministic jitter** — each delay is shrunk by up to
  ``jitter`` (a fraction) using a :class:`random.Random` stream seeded
  from ``(seed, attempt)``; the same policy produces the same delays in
  every process (``random.Random`` seeds strings stably, independent of
  hash randomisation), so tests can pin exact schedules while distinct
  seeds de-synchronise a fleet.
* **Unified ``retry_after`` honouring** — a server hint (from an
  :class:`~repro.serving.server.Overloaded` shed or a
  :class:`~repro.serving.server.ShardUnavailable` refusal) replaces the
  computed backoff but is clamped to ``cap``: a confused or hostile
  server cannot park a client for an hour.
* **Injectable clock/sleep** — the policy sleeps through its ``sleep``
  callable and reads time through ``clock``; tests pass a
  :class:`VirtualClock` so retry loops run in virtual time instead of
  wall-clocking the suite.

:class:`BackoffTimer` is the stateful face for open-ended reconnect
loops (the follower's ``run``): it counts consecutive failures, pauses
through the policy, and resets to the base delay on success.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Awaitable, Callable, List, Optional

__all__ = ["BackoffTimer", "RetryPolicy", "VirtualClock"]


class VirtualClock:
    """A deterministic time source whose sleeps complete instantly.

    ``clock()`` returns the virtual time; ``sleep(s)`` advances it by
    ``s`` and yields to the event loop exactly once (so other tasks —
    a restarted server, a pending future — get scheduled), recording
    every requested delay in :attr:`sleeps`.  Injecting one into a
    :class:`RetryPolicy` makes a retry loop's schedule observable and
    instantaneous: the replication reconnect tests assert backoff
    *sequences* without ever waiting them out.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: Every delay passed to :meth:`sleep`, in call order.
        self.sleeps: List[float] = []

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def clock(self) -> float:
        """The ``clock`` callable: read the virtual time."""
        return self._now

    async def sleep(self, seconds: float) -> None:
        """The ``sleep`` callable: advance time, yield once, return."""
        self.sleeps.append(float(seconds))
        self._now += float(seconds)
        await asyncio.sleep(0)


class RetryPolicy:
    """Capped exponential backoff with seeded jitter and hint clamping.

    Parameters
    ----------
    max_retries:
        Bound for *bounded* retry loops (:meth:`should_retry`); loops
        that retry forever (the follower) simply never consult it.
    base:
        First retry's delay, seconds.
    cap:
        Ceiling on every delay — computed backoff and server
        ``retry_after`` hints alike.
    jitter:
        Fraction of each computed delay that may be jittered away
        (``0.0`` = exact exponential schedule, what parity tests pin).
        Hinted delays are not jittered: the server said when.
    seed:
        Seed of the deterministic jitter stream; give each member of a
        fleet its own seed to spread their retries.
    sleep:
        Async sleep callable (default :func:`asyncio.sleep`); tests
        inject :meth:`VirtualClock.sleep`.
    clock:
        Time source (default :func:`time.monotonic`) for callers that
        deadline against the policy's clock.
    """

    def __init__(
        self,
        *,
        max_retries: int = 2,
        base: float = 0.05,
        cap: float = 2.0,
        jitter: float = 0.0,
        seed: int = 0,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        if base <= 0 or cap < base:
            raise ValueError("need 0 < base <= cap")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_retries = int(max_retries)
        self.base = float(base)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self.clock = clock

    def should_retry(self, attempt: int) -> bool:
        """Whether retry number ``attempt`` (1-based) is still allowed."""
        return attempt <= self.max_retries

    def delay(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        """Seconds to wait before retry ``attempt`` (1-based).

        A positive ``retry_after`` hint wins — clamped to ``cap`` —
        otherwise the capped exponential schedule applies, shrunk by the
        seeded jitter stream.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        if retry_after is not None and retry_after > 0:
            return min(self.cap, float(retry_after))
        raw = min(self.cap, self.base * (2 ** (attempt - 1)))
        if self.jitter:
            stream = random.Random(f"{self.seed}:{attempt}")
            raw *= 1.0 - self.jitter * stream.random()
        return raw

    async def pause(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        """Sleep out :meth:`delay` through the injected sleep; returns it."""
        delay = self.delay(attempt, retry_after)
        await self._sleep(delay)
        return delay

    def timer(self) -> "BackoffTimer":
        """A fresh stateful timer over this policy."""
        return BackoffTimer(self)


class BackoffTimer:
    """Consecutive-failure counter for open-ended retry loops.

    Each :meth:`pause` counts one more consecutive failure and sleeps
    the policy's delay for it; :meth:`reset` (on success) returns the
    schedule to the base delay.  This is exactly the shape of the
    follower's reconnect loop and the load CLI's shed loop — previously
    each carried its own ``delay = min(cap, delay * 2)`` arithmetic.
    """

    def __init__(self, policy: RetryPolicy) -> None:
        self._policy = policy
        self._attempt = 0

    @property
    def attempt(self) -> int:
        """Consecutive failures since the last :meth:`reset`."""
        return self._attempt

    @property
    def policy(self) -> RetryPolicy:
        """The policy supplying delays."""
        return self._policy

    def reset(self) -> None:
        """Back to the base delay (call after a success)."""
        self._attempt = 0

    async def pause(self, retry_after: Optional[float] = None) -> float:
        """Count one failure and sleep its delay; returns the delay."""
        self._attempt += 1
        return await self._policy.pause(self._attempt, retry_after)
