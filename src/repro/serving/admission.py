"""Ingest admission control: bounded queueing with explicit backpressure.

Without a bound, a burst of ingest requests grows server memory without
limit — every request parses its events and parks them until the event
loop applies them.  An :class:`AdmissionController` makes overload a
*deterministic, explicit* protocol outcome instead: the server admits an
ingest batch only while the pending-event total stays within
``max_pending_events``; past the bound the batch is **shed** — answered
immediately with ``{"ok": false, "error": "overloaded...", "shed":
true, "retry_after": seconds}`` and never applied — so memory stays
bounded and a well-behaved client knows exactly when to come back.

The ``retry_after`` hint is an estimate, not a promise: the controller
keeps an exponentially-weighted moving average of the apply rate
(events per second, updated each time a batch drains) and hints the
time the current backlog needs at that rate, clamped to
``[min_hint, max_hint]``.  Before any batch has drained there is no
rate, so the hint falls back to ``min_hint``.

Determinism: admission itself is a pure function of the pending total
and the bound — a burst of ``b`` events against a bound of ``B`` admits
exactly the longest prefix of batches that fits, independent of timing.
Only the *hint* depends on measured rates, and nothing in the protocol
depends on the hint's value.  Shed accounting (batches and events) goes
to the server's :class:`~repro.serving.metrics.MetricsRegistry`, so
overload is visible on the ``/metrics`` endpoint while it happens.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded pending-events accounting plus a drain-rate backoff hint.

    Parameters
    ----------
    max_pending_events:
        Admit a batch only while (pending + batch) stays within this
        many events; must be positive.
    min_hint, max_hint:
        Clamp for the ``retry_after`` hint, seconds.
    ewma_alpha:
        Weight of the newest drain measurement in the moving average
        (``0 < alpha <= 1``).
    """

    def __init__(
        self,
        max_pending_events: int,
        *,
        min_hint: float = 0.01,
        max_hint: float = 5.0,
        ewma_alpha: float = 0.3,
    ) -> None:
        if max_pending_events <= 0:
            raise ValueError("max_pending_events must be positive")
        if not 0 < min_hint <= max_hint:
            raise ValueError("need 0 < min_hint <= max_hint")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.max_pending_events = int(max_pending_events)
        self._min_hint = float(min_hint)
        self._max_hint = float(max_hint)
        self._alpha = float(ewma_alpha)
        self._pending_events = 0
        self._pending_batches = 0
        self._rate: float = 0.0  # events/second EWMA; 0 = unmeasured
        self.admitted_batches = 0
        self.admitted_events = 0
        self.shed_batches = 0
        self.shed_events = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Events admitted but not yet applied."""
        return self._pending_events

    @property
    def pending_batches(self) -> int:
        """Batches admitted but not yet applied."""
        return self._pending_batches

    def try_admit(self, num_events: int) -> bool:
        """Admit a batch of ``num_events`` if it fits, else account a shed.

        Admission is deterministic in the pending total: a batch is
        admitted iff ``pending + num_events <= max_pending_events``.
        Empty batches always fit.
        """
        if num_events < 0:
            raise ValueError("num_events must be nonnegative")
        if self._pending_events + num_events > self.max_pending_events:
            self.shed_batches += 1
            self.shed_events += num_events
            return False
        self._pending_events += num_events
        self._pending_batches += 1
        self.admitted_batches += 1
        self.admitted_events += num_events
        return True

    def note_applied(self, num_events: int, seconds: float) -> None:
        """Record that an admitted batch drained in ``seconds``.

        Releases the batch's events from the pending total and folds the
        measured apply rate into the EWMA the ``retry_after`` hint is
        computed from.
        """
        self._pending_events = max(0, self._pending_events - num_events)
        self._pending_batches = max(0, self._pending_batches - 1)
        if num_events > 0 and seconds > 0:
            rate = num_events / seconds
            if self._rate <= 0:
                self._rate = rate
            else:
                self._rate = (
                    self._alpha * rate + (1 - self._alpha) * self._rate
                )

    def release(self, num_events: int) -> None:
        """Release an admitted batch that will never be applied
        (server shutdown, apply failure) without touching the rate."""
        self._pending_events = max(0, self._pending_events - num_events)
        self._pending_batches = max(0, self._pending_batches - 1)

    # ------------------------------------------------------------------
    # Backpressure hint
    # ------------------------------------------------------------------
    def retry_after(self) -> float:
        """Seconds a shed client should wait before retrying.

        The current backlog divided by the measured drain rate, clamped
        to ``[min_hint, max_hint]``; ``min_hint`` when no rate has been
        measured yet (nothing has drained) or the queue is empty.
        """
        if self._rate <= 0 or self._pending_events == 0:
            return self._min_hint
        hint = self._pending_events / self._rate
        return min(self._max_hint, max(self._min_hint, hint))

    def describe(self) -> Dict[str, Any]:
        """The controller's state for the ``info`` operation."""
        return {
            "max_pending_events": self.max_pending_events,
            "pending_events": self._pending_events,
            "pending_batches": self._pending_batches,
            "admitted_batches": self.admitted_batches,
            "admitted_events": self.admitted_events,
            "shed_batches": self.shed_batches,
            "shed_events": self.shed_events,
            "drain_rate_events_per_sec": self._rate,
        }
