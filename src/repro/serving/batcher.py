"""Micro-batching: coalesce concurrent queries into single engine dispatches.

The serving store answers ``sum`` and ``distinct`` for *many groups in
one kernel call* — that is the whole point of
:mod:`repro.engine.serving`.  A :class:`QueryBatcher` extends the same
economy across *callers*: concurrent in-flight requests accumulate in a
window (closed after ``max_batch`` requests or ``max_delay`` seconds,
whichever first) and each window executes as a handful of store calls
instead of one per request.

**Coalescing never changes an answer.**  The invariant — coalesced
answers are bit-identical to the same request issued alone — holds
because of three deliberate choices, all testable in isolation through
:func:`execute_batch`:

* Each request's backend is resolved *individually* against the entry
  count its own sequential call would see
  (:meth:`SketchStore.dispatch_size
  <repro.serving.store.SketchStore.dispatch_size>`), and requests only
  share a store call with requests that resolved to the same mode — an
  ``auto`` policy therefore decides exactly as it would sequentially.
* The shared store calls reduce **per group**: ``np.bincount``
  accumulates each group's entries contiguously in input order, so a
  group's float-addition sequence inside a coalesced call is the very
  sequence its own single-group call performs.
* Requests that cannot share a dispatch (keyed subset sums, estimator
  plugins, unknown kinds) run individually inside the window — same
  code path as a sequential caller, just scheduled together.

``similarity`` requests coalesce by deduplication: identical
``(groups, backend)`` requests in one window share a single estimate.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.backend import BackendPolicy, BackendSpec

__all__ = ["BatcherStats", "QueryBatcher", "QueryRequest", "execute_batch"]


@dataclass(frozen=True)
class QueryRequest:
    """One serving query, in coalescible (hashable) form.

    Mirrors the parameters of :meth:`SketchStore.query
    <repro.serving.store.SketchStore.query>`; ``groups``/``keys`` are
    tuples so requests can serve as dictionary keys during planning.
    """

    kind: str
    groups: Optional[Tuple[str, ...]] = None
    keys: Optional[Tuple[str, ...]] = None
    until: Optional[float] = None
    backend: BackendSpec = None

    @classmethod
    def from_payload(cls, payload) -> "QueryRequest":
        """Build a request from a wire-protocol ``query`` payload."""
        groups = payload.get("groups")
        keys = payload.get("keys")
        until = payload.get("until")
        return cls(
            kind=str(payload["kind"]),
            groups=(
                None
                if groups is None
                else tuple(str(group) for group in groups)
            ),
            keys=None if keys is None else tuple(str(key) for key in keys),
            until=None if until is None else float(until),
            backend=payload.get("backend"),
        )


@dataclass
class BatcherStats:
    """Counters describing how much coalescing actually happened."""

    requests: int = 0
    flushes: int = 0
    store_calls: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a JSON payload (served by the ``info`` op)."""
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "store_calls": self.store_calls,
        }


def _normalized_backend(backend: BackendSpec):
    """A hashable stand-in for a backend spec (strings and policies are
    hashable already; ``None`` means the process-wide policy)."""
    if backend is None or isinstance(backend, (str, BackendPolicy)):
        return backend
    raise ValueError(f"unsupported backend spec {backend!r}")


def execute_batch(
    store, requests: Sequence[QueryRequest]
) -> Tuple[List[Any], List[Optional[Exception]], int]:
    """Execute one window of requests with as few store calls as possible.

    Pure and synchronous — the async :class:`QueryBatcher` and the unit
    tests both call this.  Failures are isolated: a request (or a shared
    bucket) that raises poisons only its own slot(s).

    Returns
    -------
    (results, errors, store_calls)
        ``results[i]``/``errors[i]`` mirror ``requests[i]`` (exactly one
        is set per slot); ``store_calls`` counts the store queries the
        window actually issued.
    """
    results: List[Any] = [None] * len(requests)
    errors: List[Optional[Exception]] = [None] * len(requests)
    calls = 0
    # (kind, resolved-mode) -> list of (slot, groups) / (slot, pairs)
    sum_buckets: Dict[str, List[Tuple[int, Tuple[str, ...]]]] = {}
    distinct_buckets: Dict[str, List[Tuple[int, List[tuple]]]] = {}
    similarity_buckets: Dict[tuple, List[int]] = {}
    singles: List[int] = []
    for slot, request in enumerate(requests):
        try:
            groups = (
                tuple(store.groups)
                if request.groups is None
                else request.groups
            )
            if request.kind == "sum" and request.keys is None:
                mode = BackendPolicy.coerce(request.backend).resolve_exact(
                    store.dispatch_size("sum", groups)
                )
                sum_buckets.setdefault(mode, []).append((slot, groups))
            elif request.kind == "distinct" and request.keys is None:
                mode = BackendPolicy.coerce(request.backend).resolve_exact(
                    store.dispatch_size("distinct", groups, until=request.until)
                )
                pairs = [(group, request.until) for group in groups]
                distinct_buckets.setdefault(mode, []).append((slot, pairs))
            elif request.kind == "similarity":
                signature = (groups, _normalized_backend(request.backend))
                similarity_buckets.setdefault(signature, []).append(slot)
            else:
                singles.append(slot)
        except Exception as exc:  # per-request planning failure
            errors[slot] = exc
    for mode, members in sum_buckets.items():
        ordered: List[str] = []
        seen = set()
        for _slot, groups in members:
            for group in groups:
                if group not in seen:
                    seen.add(group)
                    ordered.append(group)
        try:
            answers = store.query("sum", groups=ordered, backend=mode)
            calls += 1
        except Exception as exc:
            for slot, _groups in members:
                errors[slot] = exc
            continue
        for slot, groups in members:
            results[slot] = {group: answers[group] for group in groups}
    for mode, members in distinct_buckets.items():
        ordered_pairs: List[tuple] = []
        index: Dict[tuple, int] = {}
        for _slot, pairs in members:
            for pair in pairs:
                if pair not in index:
                    index[pair] = len(ordered_pairs)
                    ordered_pairs.append(pair)
        try:
            values = store.distinct_batch(ordered_pairs, backend=mode)
            calls += 1
        except Exception as exc:
            for slot, _pairs in members:
                errors[slot] = exc
            continue
        for slot, pairs in members:
            results[slot] = {
                group: values[index[(group, until)]]
                for group, until in pairs
            }
    for (groups, backend), slots in similarity_buckets.items():
        try:
            value = store.query("similarity", groups=groups, backend=backend)
            calls += 1
        except Exception as exc:
            for slot in slots:
                errors[slot] = exc
            continue
        for slot in slots:
            results[slot] = value
    for slot in singles:
        request = requests[slot]
        try:
            results[slot] = store.query(
                request.kind,
                groups=request.groups,
                keys=request.keys,
                until=request.until,
                backend=request.backend,
            )
            calls += 1
        except Exception as exc:
            errors[slot] = exc
    return results, errors, calls


class QueryBatcher:
    """Accumulate concurrent requests and flush them as coalesced windows.

    Parameters
    ----------
    store:
        The :class:`~repro.serving.store.SketchStore` to answer from.
    max_batch:
        Flush as soon as this many requests are pending.
    max_delay:
        Seconds to hold the window open waiting for company.  The
        default ``0.0`` flushes on the *next event-loop iteration* —
        requests that became ready in the same loop tick (e.g. many
        sockets readable at once) still coalesce, while a lone request
        pays no artificial latency.

    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`; when
        given, each flush feeds coalescing counters (requests, flushes,
        store calls — the ratios operators watch) alongside the local
        :class:`BatcherStats`.

    :meth:`submit` resolves to ``(result, watermark)`` where the
    watermark is the store's ``events_ingested`` at execution time —
    the handle that lets a client (or the concurrency stress test) pin
    an answer to the exact feed prefix it describes.
    """

    def __init__(
        self,
        store,
        max_batch: int = 64,
        max_delay: float = 0.0,
        metrics=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be nonnegative")
        self._store = store
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._metrics = metrics
        self._pending: List[Tuple[QueryRequest, asyncio.Future]] = []
        self._handle: Optional[asyncio.TimerHandle] = None
        self.stats = BatcherStats()

    async def submit(self, request: QueryRequest) -> Tuple[Any, int]:
        """Enqueue one request and wait for its window to execute."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        self.stats.requests += 1
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._handle is None:
            self._handle = loop.call_later(self.max_delay, self.flush)
        return await future

    def flush(self) -> None:
        """Execute every pending request now (window close / shutdown).

        Synchronous: the whole window executes without yielding to the
        event loop, so every answer in it shares one watermark.
        """
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        results, errors, calls = execute_batch(
            self._store, [request for request, _future in pending]
        )
        watermark = self._store.events_ingested
        self.stats.flushes += 1
        self.stats.store_calls += calls
        if self._metrics is not None:
            self._metrics.counter(
                "serving_coalesce_requests_total",
                help="query requests that went through a coalescing window",
            ).inc(len(pending))
            self._metrics.counter(
                "serving_coalesce_flushes_total",
                help="coalescing windows executed",
            ).inc()
            self._metrics.counter(
                "serving_coalesce_store_calls_total",
                help="store calls issued by coalescing windows",
            ).inc(calls)
        for (_request, future), result, error in zip(
            pending, results, errors
        ):
            if future.cancelled():
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result((result, watermark))
