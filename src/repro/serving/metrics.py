"""Observability: a metrics registry and a Prometheus scrape endpoint.

A long-lived server is only operable if its behaviour is measurable
without stopping it.  This module gives the serving layer exactly two
instrument kinds — **counters** (monotone totals: requests served,
events ingested, batches shed) and **fixed-bucket latency histograms**
(request seconds per operation) — collected in a
:class:`MetricsRegistry` whose snapshot is *deterministic*: series are
keyed by ``name{label="value",...}`` strings with sorted label keys, and
:meth:`MetricsRegistry.snapshot` walks them in sorted order, so two
registries that observed the same sequence serialise identically (the
property the metrics tests pin).

Two export surfaces share the one registry:

* the ``metrics`` operation of the JSON-lines TCP protocol returns the
  snapshot as a JSON document (what the load generator and the tests
  read);
* :class:`MetricsHTTPShim` is a minimal stdlib-only asyncio HTTP
  listener in front of the TCP server that renders the registry in the
  Prometheus text exposition format on ``GET /metrics`` (plus a
  ``/healthz`` liveness probe) — the scrape endpoint the
  ``replication-smoke`` and ``router-smoke`` CI jobs curl.

Series families, by emitter: the protocol shell counts
``serving_requests_total`` / ``serving_errors_total`` and times
``serving_request_seconds`` per operation on *every* front-end (store
servers and the shard router alike); store servers add the ingest /
coalescing / retention / replication / admission families; the shard
router adds ``router_shard_requests_total{shard=,op=}`` and
``router_routed_events_total{shard=}`` (per-shard routed-op counters),
``router_gather_seconds{kind=}`` (scatter-gather latency),
``router_view_cache_hits_total{shard=}``,
``router_failovers_total{shard=}`` / ``router_promotions_total{shard=}``
(re-targeting), and ``router_unavailable_total``; a promotable replica
counts ``serving_promotions_total`` when its hand-over runs.  The
synchronous-ack path adds its own family on both ends of the wire: a
``--sync-ack`` primary counts ``serving_repl_acks_total`` (``repl_ack``
frames received), ``serving_durable_acks_total`` /
``serving_degraded_acks_total`` (quorum met vs. timed out) and times
``serving_ack_wait_seconds``; followers count
``serving_repl_acks_sent_total``; and the chaos harness's proxy counts
``chaos_frames_total{action=}`` when handed a registry.

The registry is wholly synchronous and allocation-light: instruments are
created on first use and cached, so the hot path is a dict lookup and an
integer add.  Nothing here samples wall time by itself — callers observe
durations explicitly (see :meth:`Histogram.time`), which keeps the
registry clock-free and the tests deterministic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import asyncio

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsHTTPShim",
    "MetricsRegistry",
]

#: Upper bounds (seconds) of the default latency histogram buckets.
#: Spans one-tenth of a millisecond to ten seconds — the range a
#: coalesced in-process query (microseconds) and a cold snapshot ship
#: (seconds) both land inside; everything slower falls into +Inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    """The canonical series key: ``name`` or ``name{k="v",...}``, sorted."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone counter; negative increments are rejected."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Histogram:
    """A fixed-bucket histogram of nonnegative observations.

    Buckets are pinned at construction (upper bounds, ascending); an
    implicit ``+Inf`` bucket catches everything beyond the last bound.
    Internally the per-bucket counts are *disjoint*; the cumulative
    counts Prometheus expects are computed at render time.
    """

    __slots__ = ("bounds", "counts", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return sum(self.counts)

    @contextmanager
    def time(self, clock=time.perf_counter):
        """Context manager observing the wall seconds of its body."""
        start = clock()
        try:
            yield
        finally:
            self.observe(clock() - start)

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative count)`` pairs, ending with ``+Inf``."""
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            pairs.append((_format_bound(bound), running))
        pairs.append(("+Inf", running + self.counts[-1]))
        return pairs


def _format_bound(bound: float) -> str:
    """A stable text form for a bucket bound (no trailing zeros noise)."""
    text = repr(bound)
    return text[:-2] if text.endswith(".0") else text


class MetricsRegistry:
    """Counters and histograms behind one deterministic snapshot.

    Instruments are created on first use and identified by
    ``(name, sorted labels)``; asking for an existing name with a
    conflicting kind (or conflicting histogram buckets) raises, so a
    metric name means one thing for the life of the process.
    """

    def __init__(self) -> None:
        self._kinds: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._help: Dict[str, str] = {}
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._label_names: Dict[str, Dict[str, Dict[str, str]]] = {
            "counter": {},
            "histogram": {},
        }

    def _claim(self, name: str, kind: str, help: Optional[str]) -> None:
        prior = self._kinds.get(name)
        if prior is None:
            self._kinds[name] = kind
            if help is not None:
                self._help[name] = help
        elif prior != kind:
            raise ValueError(
                f"metric {name!r} is a {prior}, not a {kind}"
            )

    def counter(
        self, name: str, help: Optional[str] = None, **labels: str
    ) -> Counter:
        """The counter for ``name`` + ``labels``, created on first use."""
        self._claim(name, "counter", help)
        key = _series_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
            self._label_names["counter"][key] = dict(labels)
        return counter

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: Optional[str] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram for ``name`` + ``labels``, created on first use.

        All series of one name share bucket bounds; asking for the same
        name with different ``buckets`` raises.
        """
        self._claim(name, "histogram", help)
        bounds = tuple(float(b) for b in buckets)
        prior = self._buckets.get(name)
        if prior is None:
            self._buckets[name] = bounds
        elif prior != bounds:
            raise ValueError(
                f"histogram {name!r} already has buckets {prior}"
            )
        key = _series_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(bounds)
            self._label_names["histogram"][key] = dict(labels)
        return histogram

    def snapshot(self) -> Dict[str, Any]:
        """The registry as a deterministic JSON-ready document.

        ``{"counters": {series: value}, "histograms": {series:
        {"buckets": {le: cumulative}, "sum": s, "count": n}}}`` with all
        mappings in sorted series order — two registries that observed
        the same sequence snapshot identically.
        """
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "histograms": {
                key: {
                    "buckets": dict(self._histograms[key].cumulative()),
                    "sum": self._histograms[key].sum,
                    "count": self._histograms[key].count,
                }
                for key in sorted(self._histograms)
            },
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        One ``# TYPE`` line per metric family (plus ``# HELP`` when the
        instrument was created with one), then each series; histogram
        series expand into cumulative ``_bucket{le=...}`` lines plus
        ``_sum`` and ``_count``.  Output order is deterministic: family
        names sorted, then series keys sorted.
        """
        lines: List[str] = []
        by_family: Dict[str, List[str]] = {}
        for key in self._counters:
            name = key.split("{", 1)[0]
            by_family.setdefault(name, []).append(key)
        for key in self._histograms:
            name = key.split("{", 1)[0]
            by_family.setdefault(name, []).append(key)
        for name in sorted(by_family):
            kind = self._kinds[name]
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(by_family[name]):
                if kind == "counter":
                    value = self._counters[key].value
                    lines.append(f"{key} {_format_value(value)}")
                    continue
                histogram = self._histograms[key]
                labels = self._label_names["histogram"][key]
                for le, cumulative in histogram.cumulative():
                    bucket_key = _series_key(
                        f"{name}_bucket", {**labels, "le": le}
                    )
                    lines.append(f"{bucket_key} {cumulative}")
                lines.append(
                    f"{_series_key(f'{name}_sum', labels)} "
                    f"{_format_value(histogram.sum)}"
                )
                lines.append(
                    f"{_series_key(f'{name}_count', labels)} "
                    f"{histogram.count}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    """Integer-valued floats render without the trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsHTTPShim:
    """A minimal asyncio HTTP listener exposing one registry.

    Serves ``GET /metrics`` (Prometheus text format 0.0.4) and
    ``GET /healthz`` (plain ``ok``); everything else is 404.  One
    response per connection (``Connection: close``) — scrape clients
    reconnect per scrape anyway, and it keeps the parser to a request
    line plus discarded headers.  Stdlib-only by design: the shim must
    not add a dependency to the serving stack.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to render on each scrape.
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("metrics shim is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        """Bind and start answering scrapes; returns the address."""
        if self._server is not None:
            raise RuntimeError("metrics shim is already started")
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting scrapes."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _on_connection(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            # Drain the headers; the shim never reads a body.
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else ""
            if method != "GET":
                await self._respond(
                    writer, "405 Method Not Allowed", "text/plain",
                    "only GET is supported\n",
                )
            elif path in ("/metrics", "/metrics/"):
                await self._respond(
                    writer,
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    self._registry.render_prometheus(),
                )
            elif path == "/healthz":
                await self._respond(writer, "200 OK", "text/plain", "ok\n")
            else:
                await self._respond(
                    writer, "404 Not Found", "text/plain",
                    f"no such path {path}\n",
                )
        except (ConnectionError, OSError, ValueError, UnicodeDecodeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, writer, status: str, content_type: str, body: str
    ) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
