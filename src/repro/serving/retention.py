"""Bounded retention: deterministic TTL / max-keys eviction for the ledger.

A long-lived :class:`~repro.serving.store.SketchStore` grows with its
key universe — the sketches are bounded by ``k``, but the exact ledger
underneath them is not.  A :class:`RetentionPolicy` bounds it two ways,
both driven by per-key **recency** (``GroupState.last_seen``):

* ``ttl`` — evict keys whose last activity is older than ``now - ttl``;
* ``max_keys`` — evict stalest-first until at most ``max_keys`` keys
  remain per group.

Eviction is deterministic: victims are chosen and dropped in
``(last_seen, key)`` order, so two replicas applying the same policy at
the same ``now`` evict identically — the same property that makes
shard-then-merge reproducible keeps retention reproducible.

Durability integration (:func:`apply_retention`): eviction mutates only
the in-memory ledger, so for a directory-backed store it must be made
durable *through the snapshot path* — a post-eviction snapshot at the
current watermark atomically supersedes the pre-eviction one (same
digest, atomic replace) and compacts the write-ahead log through the
watermark, so recovery can never resurrect an evicted key.  Evicting
without snapshotting a directory-backed store would be undone by the
next WAL replay; ``apply_retention`` therefore snapshots by default
whenever it evicted something from a directory-backed store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = ["RetentionPolicy", "apply_retention"]


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on a group's ledger: a recency TTL and/or a key-count cap.

    Attributes
    ----------
    ttl:
        Evict keys with ``last_seen < now - ttl`` (strictly older — a
        key last seen exactly at the cutoff survives).  ``None`` means
        no age bound.
    max_keys:
        After TTL eviction, keep at most this many keys per group,
        evicting stalest-first.  ``None`` means no count bound.
    """

    ttl: Optional[float] = None
    max_keys: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ttl is not None and not self.ttl > 0:
            raise ValueError("ttl must be positive")
        if self.max_keys is not None and self.max_keys < 0:
            raise ValueError("max_keys must be nonnegative")

    @property
    def bounded(self) -> bool:
        """Whether the policy evicts anything at all."""
        return self.ttl is not None or self.max_keys is not None

    def plan(self, last_seen: Mapping[str, float], now: float) -> List[str]:
        """The keys this policy evicts from one group, in eviction order.

        Pure and deterministic: victims (TTL-expired keys, then the
        stalest keys beyond ``max_keys``) are returned sorted by
        ``(last_seen, key)`` — stalest first, ties broken by key — so
        identical ledgers always evict identically.

        Parameters
        ----------
        last_seen:
            The group's per-key recency map.
        now:
            The reference time TTL ages are measured against.

        Returns
        -------
        list of str
            Keys to evict, in deterministic eviction order.
        """
        victims = set()
        if self.ttl is not None:
            cutoff = float(now) - self.ttl
            victims.update(
                key for key, seen in last_seen.items() if seen < cutoff
            )
        if self.max_keys is not None:
            survivors = len(last_seen) - len(victims)
            if survivors > self.max_keys:
                remaining = sorted(
                    (key for key in last_seen if key not in victims),
                    key=lambda key: (last_seen[key], key),
                )
                victims.update(remaining[: survivors - self.max_keys])
        return sorted(victims, key=lambda key: (last_seen[key], key))

    def to_dict(self) -> Dict[str, Optional[float]]:
        """The policy's JSON payload (for the serving wire protocol)."""
        return {"ttl": self.ttl, "max_keys": self.max_keys}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RetentionPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        ttl = payload.get("ttl")
        max_keys = payload.get("max_keys")
        return cls(
            ttl=None if ttl is None else float(ttl),
            max_keys=None if max_keys is None else int(max_keys),
        )


def apply_retention(
    store,
    policy: RetentionPolicy,
    now: Optional[float] = None,
    snapshot: bool = True,
) -> Dict[str, List[str]]:
    """Evict per ``policy`` from every group of ``store``, durably.

    Parameters
    ----------
    store:
        The :class:`~repro.serving.store.SketchStore` to bound.
    policy:
        What to evict (see :class:`RetentionPolicy`).
    now:
        Reference time for TTL ages; defaults to the maximum
        ``last_seen`` across the store (feed time, not wall time), so
        offline eviction of a historical feed is reproducible.
    snapshot:
        When ``True`` (the default) and anything was evicted from a
        directory-backed store, write a snapshot at the current
        watermark — atomically superseding the previous snapshot and
        compacting the write-ahead log, so recovery cannot resurrect
        the evicted keys.  Pass ``False`` only when the caller batches
        several mutations before snapshotting itself.

    Returns
    -------
    dict
        ``{group: [evicted keys, in eviction order]}`` — only groups
        that lost at least one key appear.

    Raises
    ------
    ValueError
        If the policy is unbounded — "apply retention that can never
        evict" is a caller bug, not a request to do nothing.
    """
    if not policy.bounded:
        raise ValueError(
            "retention policy is unbounded; set ttl and/or max_keys"
        )
    if now is None:
        now = max(
            (
                seen
                for group in store.groups
                for seen in store.group_state(group).last_seen.values()
            ),
            default=0.0,
        )
    if not math.isfinite(float(now)):
        raise ValueError("now must be finite")
    report: Dict[str, List[str]] = {}
    for group in store.groups:
        state = store.group_state(group)
        victims = policy.plan(state.last_seen, now)
        if victims:
            state.drop_keys(victims)
            report[group] = victims
    if report and snapshot and store.root is not None:
        store.snapshot()
    return report
