"""Primary/follower replication: WAL-segment shipping over the TCP protocol.

The serving layer's determinism guarantees make replicas *convergent by
construction*: ingestion folds events into the ledger in arrival order,
eviction drops victims in a deterministic order, and every sketch view
is a pure function of ledger content.  A follower that applies the same
mutation stream therefore holds the same ledger — and answers every
query **bit-identically** — at the same watermark.  This module ships
that stream.

Wire protocol (four operations on the existing JSON-lines framing):

``repl_snapshot``
    Request/response.  Returns the primary's ledger wholesale — config,
    per-group totals / first-seen / last-seen / event counts — tagged
    with the event ``watermark`` and the replication ``offset`` it
    describes.  A cold follower installs this and then streams the tail.

``repl_subscribe {"after_offset": n}``
    Request/response handshake.  When the primary's in-memory segment
    buffer still covers ``n`` the response is ``{"mode": "stream",
    "offset": ..., "watermark": ...}`` and the connection switches to
    push mode; when the follower is too far behind (the buffer is
    bounded) the response is ``{"mode": "snapshot", ...}`` — ship a
    snapshot first.

``repl_segment``
    Pushed frame (no ``id``): one **sealed segment** — an immutable,
    offset-stamped entry of the primary's mutation log.  ``kind:
    "events"`` carries one acknowledged ingest batch (the same batch
    the primary's write-ahead log sealed, watermark-tagged so the
    follower can verify contiguity); ``kind: "evict"`` carries one
    retention report (eviction mutates the ledger without feed events,
    so it must ship too or followers would diverge).  A frame with
    ``"reset": true`` tells a subscriber it fell out of the buffer —
    re-bootstrap from a snapshot.

``repl_ack {"offset": n}``
    Pushed *upstream* (follower to primary, no ``id``, no reply) on the
    subscription connection: the follower has **applied** every entry
    through offset ``n`` — to its write-ahead log when directory-backed,
    so the acknowledged prefix survives the follower's own crash.  Acks
    are cumulative and monotone; the primary's :class:`AckTracker`
    keeps one high-water mark per subscriber.  In synchronous-ack mode
    (``serve --sync-ack N``) the primary holds each ingest reply until
    ``N`` subscribers have acked the batch's covering offset — the
    reply then carries ``"durable": true`` — or a bounded ack-wait
    timeout expires, which degrades the reply to an explicit
    ``"durable": false`` instead of wedging the producer.

The mutation log (:class:`ReplicationHub`) is the serving twin of the
on-disk write-ahead log: the primary appends a sealed entry *after*
each successful local apply, so a follower can never observe state the
primary did not durably acknowledge.  The buffer is bounded
(``capacity`` entries); snapshot shipping covers arbitrary lag, so
boundedness costs availability nothing.

:class:`ReplicaFollower` is the other half: it bootstraps from a
snapshot when cold (or whenever its offset is unknown — e.g. after a
process restart), subscribes, applies segments in offset order with
contiguity checks, reconnects with exponential backoff when the primary
dies, and keeps its own store durable (segments it applies to a
directory-backed store are write-ahead logged locally; applied
evictions snapshot, exactly as on the primary).  The convergence
invariant is enforced by ``tests/serving/test_replication.py``:
after *any* interleaving of ingest / evict / failover, follower
ledgers, sketch views, and query answers equal the primary's (``==``)
at the same watermark.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .events import Event
from .resilience import RetryPolicy
from .store import SketchStore, StoreConfig

__all__ = [
    "AckTracker",
    "ReplicaFollower",
    "ReplicationError",
    "ReplicationHub",
    "apply_entry",
    "install_snapshot",
    "snapshot_payload",
]

#: Read-buffer limit for follower connections: snapshot payloads are one
#: JSON line holding a whole ledger, so the limit must comfortably
#: exceed the default 64 KiB.
FOLLOWER_LINE_LIMIT = 2 ** 25


class ReplicationError(RuntimeError):
    """A replication-protocol failure (gap, mismatch, or refusal)."""


class ReplicationHub:
    """The primary's bounded, offset-stamped mutation log.

    Entries are appended by the server *after* each successful local
    apply — an acknowledged ingest batch or a non-empty retention
    report — and pushed to subscribers by per-connection pump tasks.
    The buffer keeps the last ``capacity`` entries; a subscriber asking
    for older history is redirected to snapshot shipping.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._entries: Deque[Dict[str, Any]] = deque()
        self._offset = 0
        self._watermark = 0
        self._event = asyncio.Event()

    # ------------------------------------------------------------------
    # Recording (primary side, called after each successful apply)
    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Offset of the newest recorded entry (0 = nothing recorded)."""
        return self._offset

    @property
    def watermark(self) -> int:
        """Event watermark after the newest recorded entry."""
        return self._watermark

    @property
    def oldest_offset(self) -> Optional[int]:
        """Offset of the oldest retained entry, or ``None`` when empty."""
        return self._entries[0]["offset"] if self._entries else None

    def reseed(self, watermark: int) -> None:
        """Adopt a store's event watermark before any entry is recorded.

        A hub always starts at watermark 0, but the store it fronts may
        be warm — recovered from a snapshot, or a promoted follower's
        replica.  Subscribers cross-check the hub's advertised watermark
        against their own ``events_ingested`` right after bootstrap, so
        an untruthful 0 would force them into a re-bootstrap loop.  The
        server calls this at start (and promotion) when the hub is still
        pristine; reseeding after entries exist would falsify offsets,
        so that is refused.
        """
        if self._entries or self._offset:
            raise ReplicationError(
                "cannot reseed a hub that has recorded entries"
            )
        self._watermark = int(watermark)

    def record_events(self, events: List[Event], watermark: int) -> None:
        """Seal one acknowledged ingest batch as a segment entry."""
        if not events:
            return
        self._append(
            {
                "kind": "events",
                "events": [event.to_dict() for event in events],
                "watermark": int(watermark),
            }
        )

    def record_evict(
        self, report: Dict[str, List[str]], watermark: int
    ) -> None:
        """Seal one non-empty retention report as a segment entry."""
        if not report:
            return
        self._append(
            {
                "kind": "evict",
                "evictions": {
                    group: list(keys) for group, keys in report.items()
                },
                "watermark": int(watermark),
            }
        )

    def _append(self, entry: Dict[str, Any]) -> None:
        self._offset += 1
        entry["offset"] = self._offset
        self._watermark = entry["watermark"]
        self._entries.append(entry)
        while len(self._entries) > self.capacity:
            self._entries.popleft()
        # Wake every pump waiting for news; each waiter re-arms on the
        # fresh event, so no notification is ever lost.
        event, self._event = self._event, asyncio.Event()
        event.set()

    # ------------------------------------------------------------------
    # Reading (pump side)
    # ------------------------------------------------------------------
    def can_resume_from(self, after_offset: int) -> bool:
        """Whether the buffer still covers ``after_offset`` onwards."""
        if after_offset > self._offset:
            raise ReplicationError(
                f"subscriber is ahead of the primary "
                f"({after_offset} > {self._offset})"
            )
        if after_offset == self._offset:
            return True
        oldest = self.oldest_offset
        return oldest is not None and oldest <= after_offset + 1

    def entries_after(
        self, after_offset: int
    ) -> Optional[List[Dict[str, Any]]]:
        """Retained entries past ``after_offset``; ``None`` on a gap."""
        if after_offset == self._offset:
            return []
        oldest = self.oldest_offset
        if oldest is None or oldest > after_offset + 1:
            return None
        return [
            entry
            for entry in self._entries
            if entry["offset"] > after_offset
        ]

    async def wait_beyond(self, offset: int) -> None:
        """Block until an entry with a larger offset is recorded."""
        while self._offset <= offset:
            await self._event.wait()

    def describe(self) -> Dict[str, Any]:
        """The hub's state for the ``info`` operation."""
        return {
            "offset": self._offset,
            "watermark": self._watermark,
            "oldest_offset": self.oldest_offset,
            "buffered_entries": len(self._entries),
            "capacity": self.capacity,
        }


class AckTracker:
    """Per-subscriber replication acknowledgement high-water marks.

    The primary's side of synchronous-ack mode: every streaming
    subscriber is registered under an opaque key (the server uses
    ``id(writer)`` of its connection), each ``repl_ack`` frame raises
    that subscriber's acked offset (acks are cumulative, so marks only
    move forward), and the ingest path blocks in :meth:`wait_for` until
    a quorum of subscribers have acked the batch's covering offset — or
    the bounded timeout expires.  Subscriber death wakes every waiter
    (the quorum they are waiting for may have just become impossible;
    they keep waiting until the timeout rules).
    """

    def __init__(self) -> None:
        self._acked: Dict[Any, int] = {}
        self._event = asyncio.Event()

    def register(self, subscriber: Any) -> None:
        """Track a new streaming subscriber (acked offset starts at 0)."""
        self._acked.setdefault(subscriber, 0)

    def unregister(self, subscriber: Any) -> None:
        """Drop a dead subscriber and wake every quorum waiter."""
        if self._acked.pop(subscriber, None) is not None:
            self._wake()

    def ack(self, subscriber: Any, offset: int) -> None:
        """Record a cumulative ack; marks are monotone per subscriber."""
        current = self._acked.get(subscriber, 0)
        if offset > current:
            self._acked[subscriber] = int(offset)
            self._wake()

    def count_at(self, offset: int) -> int:
        """Subscribers whose acked offset covers ``offset``."""
        return sum(1 for mark in self._acked.values() if mark >= offset)

    @property
    def subscribers(self) -> int:
        """Currently registered streaming subscribers."""
        return len(self._acked)

    async def wait_for(
        self, offset: int, quorum: int, timeout: float
    ) -> bool:
        """Block until ``quorum`` subscribers ack ``offset``; ``False``
        when the timeout expires first (the degraded-ack path)."""
        try:
            await asyncio.wait_for(self._wait(offset, quorum), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    async def _wait(self, offset: int, quorum: int) -> None:
        while self.count_at(offset) < quorum:
            await self._event.wait()

    def _wake(self) -> None:
        # Same lost-notification-proof rotation as the hub's pump wakeup.
        event, self._event = self._event, asyncio.Event()
        event.set()

    def describe(self) -> Dict[str, Any]:
        """The tracker's state for the ``info`` durability block."""
        return {
            "subscribers": len(self._acked),
            "acked_offsets": sorted(self._acked.values()),
        }


# ----------------------------------------------------------------------
# Snapshot shipping
# ----------------------------------------------------------------------
def snapshot_payload(store: SketchStore, offset: int) -> Dict[str, Any]:
    """Serialize a store's ledger for ``repl_snapshot``.

    The payload is a pure function of ledger content (group and key
    iteration in sorted order), so identical stores ship identical
    snapshots.  JSON float round-tripping is exact (shortest-repr), so
    installation reproduces the ledger bit for bit.
    """
    return {
        "config": store.config.to_dict(),
        "watermark": store.events_ingested,
        "offset": int(offset),
        "groups": {
            group: {
                "totals": {
                    key: state.totals[key] for key in sorted(state.totals)
                },
                "first_seen": {
                    key: state.first_seen[key]
                    for key in sorted(state.first_seen)
                },
                "last_seen": {
                    key: state.last_seen[key]
                    for key in sorted(state.last_seen)
                },
                "events": state.events,
            }
            for group in store.groups
            for state in [store.group_state(group)]
        },
    }


def install_snapshot(store: SketchStore, payload: Dict[str, Any]) -> int:
    """Replace a follower store's ledger with a shipped snapshot.

    Returns the snapshot's replication ``offset``.  The store's config
    must equal the primary's (coordinated sketches require identical
    sampling parameters).  A directory-backed follower persists the
    installed state immediately — snapshot + WAL compaction — so a
    crash right after installation recovers to the installed ledger.
    """
    config = StoreConfig.from_dict(payload["config"])
    if store.config != config:
        raise ReplicationError(
            f"follower config {store.config} does not match the "
            f"primary's {config}"
        )
    store._groups.clear()
    for group, data in payload["groups"].items():
        state = store.group_state(group)
        state.totals.update(
            {str(k): float(v) for k, v in data["totals"].items()}
        )
        state.first_seen.update(
            {str(k): float(v) for k, v in data["first_seen"].items()}
        )
        state.last_seen.update(
            {str(k): float(v) for k, v in data["last_seen"].items()}
        )
        state.events = int(data["events"])
        state.invalidate()
    store._events = int(payload["watermark"])
    if store.root is not None:
        store.snapshot()
    return int(payload["offset"])


def apply_entry(store: SketchStore, entry: Dict[str, Any]) -> None:
    """Apply one shipped segment entry to a follower store.

    ``events`` entries are verified contiguous — the entry's watermark
    minus its batch length must equal the store's current watermark —
    then folded through the ordinary :meth:`SketchStore.ingest` path
    (write-ahead logged locally when directory-backed).  ``evict``
    entries drop the named keys and, on a directory-backed store,
    snapshot so local WAL replay cannot resurrect a victim — the exact
    durability rule the primary's own retention path follows.
    """
    kind = entry.get("kind")
    if kind == "events":
        events = [Event.from_dict(item) for item in entry["events"]]
        expected = int(entry["watermark"]) - len(events)
        if store.events_ingested != expected:
            raise ReplicationError(
                f"segment at watermark {entry['watermark']} is not "
                f"contiguous with the follower's "
                f"{store.events_ingested}"
            )
        store.ingest(events)
        return
    if kind == "evict":
        if int(entry["watermark"]) != store.events_ingested:
            raise ReplicationError(
                f"eviction at watermark {entry['watermark']} does not "
                f"match the follower's {store.events_ingested}"
            )
        for group in sorted(entry["evictions"]):
            store.group_state(group).drop_keys(entry["evictions"][group])
        if store.root is not None:
            store.snapshot()
        return
    raise ReplicationError(f"unknown segment kind {kind!r}")


# ----------------------------------------------------------------------
# The follower
# ----------------------------------------------------------------------
class ReplicaFollower:
    """Keep a local store converged with a primary ``SketchServer``.

    Parameters
    ----------
    store:
        The follower's store (in-memory or directory-backed).  Its
        config must match the primary's.
    host, port:
        The primary's TCP address.
    backoff, max_backoff:
        Reconnect delay: starts at ``backoff`` seconds and doubles per
        consecutive failure up to ``max_backoff``.  Shorthand for the
        default ``retry`` policy.
    retry:
        A :class:`~repro.serving.resilience.RetryPolicy` overriding the
        backoff shorthand — the hook tests use to drive the reconnect
        loop in virtual time (inject a
        :class:`~repro.serving.resilience.VirtualClock`'s sleep).
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry` for
        applied/bootstrap/reconnect/ack counters.

    Two driving modes: :meth:`sync_once` connects, catches up to the
    primary's offset at handshake time, and returns (what the tests and
    the replication bench use); :meth:`run` follows continuously,
    re-bootstrapping on resets and reconnecting with backoff when the
    primary dies (what ``serve --follow`` runs in the background).

    Both modes acknowledge upstream: after the subscribe handshake and
    after every applied entry the follower pushes a ``repl_ack`` frame
    carrying its applied offset, which is what a synchronous-ack
    primary's quorum waits count.  Acks are fire-and-forget — an
    async-mode primary just ignores them.
    """

    def __init__(
        self,
        store: SketchStore,
        host: str,
        port: int,
        *,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        retry: Optional[RetryPolicy] = None,
        metrics=None,
    ) -> None:
        if backoff <= 0 or max_backoff < backoff:
            raise ValueError("need 0 < backoff <= max_backoff")
        self._store = store
        self._host = host
        self._port = int(port)
        self._retry = (
            retry
            if retry is not None
            else RetryPolicy(base=backoff, cap=max_backoff)
        )
        self._metrics = metrics
        #: Offset of the last applied entry; ``None`` = unknown (cold or
        #: restarted) — the next connection bootstraps from a snapshot.
        self.offset: Optional[int] = None
        self.bootstraps = 0
        self.reconnects = 0
        self._next_id = 0

    @property
    def store(self) -> SketchStore:
        """The follower's (converging) store."""
        return self._store

    @property
    def watermark(self) -> int:
        """The follower's applied event watermark."""
        return self._store.events_ingested

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    async def _connect(self):
        return await asyncio.open_connection(
            self._host, self._port, limit=FOLLOWER_LINE_LIMIT
        )

    async def _request(
        self, reader, writer, op: str, **fields: Any
    ) -> Dict[str, Any]:
        self._next_id += 1
        request_id = f"repl-{self._next_id}"
        line = json.dumps({"id": request_id, "op": op, **fields}) + "\n"
        writer.write(line.encode())
        await writer.drain()
        while True:
            raw = await reader.readline()
            if not raw:
                raise ConnectionError("primary closed during handshake")
            payload = json.loads(raw)
            if payload.get("id") != request_id:
                continue  # a stray push frame; handshakes ignore it
            if not payload.get("ok"):
                raise ReplicationError(
                    payload.get("error", f"{op} request failed")
                )
            return payload

    async def _bootstrap(self, reader, writer) -> None:
        """Install the primary's current snapshot (cold / lost-tail start)."""
        response = await self._request(reader, writer, "repl_snapshot")
        self.offset = install_snapshot(self._store, response["result"])
        self.bootstraps += 1
        if self._metrics is not None:
            self._metrics.counter(
                "serving_repl_bootstraps_total",
                help="snapshot installations performed by this follower",
            ).inc()

    async def _subscribe(self, reader, writer) -> Tuple[int, int]:
        """Handshake to streaming mode; returns (primary offset, watermark).

        Falls back to a snapshot bootstrap — once — whenever the
        primary's history cannot be trusted to extend ours: it refuses
        our offset (a restarted primary whose offsets started over), it
        answers ``mode: "snapshot"`` (we fell out of its buffer), or it
        claims our exact offset with a *different watermark* (same
        offset number, different history — the failover ambiguity the
        watermark tag exists to catch).
        """
        for attempt in (0, 1):
            if self.offset is None:
                await self._bootstrap(reader, writer)
            try:
                response = await self._request(
                    reader, writer, "repl_subscribe", after_offset=self.offset
                )
            except ReplicationError:
                if attempt:
                    raise
                self.offset = None
                continue
            if response.get("mode") != "stream":
                if attempt:
                    raise ReplicationError(
                        "primary refused streaming right after a snapshot"
                    )
                self.offset = None
                continue
            offset = int(response["offset"])
            watermark = int(response["watermark"])
            if (
                offset == self.offset
                and watermark != self._store.events_ingested
            ):
                if attempt:
                    raise ReplicationError(
                        "watermark mismatch right after a snapshot"
                    )
                self.offset = None
                continue
            return offset, watermark
        raise ReplicationError("unreachable")  # pragma: no cover

    def _apply(self, entry: Dict[str, Any]) -> None:
        offset = int(entry["offset"])
        if self.offset is not None and offset != self.offset + 1:
            raise ReplicationError(
                f"segment offset {offset} is not contiguous with "
                f"{self.offset}"
            )
        apply_entry(self._store, entry)
        self.offset = offset
        if self._metrics is not None:
            self._metrics.counter(
                "serving_repl_applied_entries_total",
                help="segment entries applied by this follower",
            ).inc()
            if entry.get("kind") == "events":
                self._metrics.counter(
                    "serving_repl_applied_events_total",
                    help="feed events applied by this follower",
                ).inc(len(entry["events"]))

    async def _send_ack(self, writer) -> None:
        """Push the applied offset upstream (the ``repl_ack`` frame)."""
        if self.offset is None:
            return
        writer.write(
            (
                json.dumps({"op": "repl_ack", "offset": self.offset})
                + "\n"
            ).encode()
        )
        await writer.drain()
        if self._metrics is not None:
            self._metrics.counter(
                "serving_repl_acks_sent_total",
                help="repl_ack frames pushed to the primary",
            ).inc()

    async def _consume(
        self, reader, writer, until_offset: Optional[int]
    ) -> bool:
        """Apply pushed frames, acking each; ``True`` when
        ``until_offset`` reached, ``False`` on a clean disconnect.
        Raises on a reset frame."""
        while True:
            if until_offset is not None and (
                self.offset is not None and self.offset >= until_offset
            ):
                return True
            raw = await reader.readline()
            if not raw:
                return False
            payload = json.loads(raw)
            if payload.get("op") != "repl_segment":
                continue
            if payload.get("reset"):
                # Fell out of the primary's buffer: offset is no longer
                # meaningful, the next connection must re-bootstrap.
                self.offset = None
                raise ReplicationError("primary reset the subscription")
            self._apply(payload["entry"])
            await self._send_ack(writer)

    # ------------------------------------------------------------------
    # Driving modes
    # ------------------------------------------------------------------
    async def sync_once(self) -> int:
        """Connect, converge to the primary's handshake-time offset,
        disconnect.  Returns the converged offset."""
        reader, writer = await self._connect()
        try:
            target, _watermark = await self._subscribe(reader, writer)
            # Ack the handshake offset: a bootstrap (or an already
            # caught-up follower) covers the primary's current prefix
            # without ever seeing a segment frame.
            await self._send_ack(writer)
            if self.offset is not None and self.offset < target:
                reached = await self._consume(
                    reader, writer, until_offset=target
                )
                if not reached:
                    raise ConnectionError(
                        "primary closed before catch-up completed"
                    )
            return int(self.offset or 0)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def run(self, stop: Optional[asyncio.Event] = None) -> None:
        """Follow continuously: stream, re-bootstrap on resets, and
        reconnect with the policy's capped backoff on connection loss.
        Returns when ``stop`` is set (checked between attempts)."""
        timer = self._retry.timer()
        while stop is None or not stop.is_set():
            try:
                reader, writer = await self._connect()
            except (ConnectionError, OSError):
                await timer.pause()
                self.reconnects += 1
                continue
            try:
                await self._subscribe(reader, writer)
                await self._send_ack(writer)
                timer.reset()  # healthy stream: back to the base delay
                await self._consume(reader, writer, until_offset=None)
            except ReplicationError:
                # Reset or stream inconsistency: the offset can no
                # longer be trusted, so the next connection bootstraps.
                self.offset = None
            except (ConnectionError, OSError, ValueError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            self.reconnects += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "serving_repl_reconnects_total",
                    help="connection attempts after a stream ended",
                ).inc()
            await timer.pause()
