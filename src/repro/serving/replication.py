"""Primary/follower replication: WAL-segment shipping over the TCP protocol.

The serving layer's determinism guarantees make replicas *convergent by
construction*: ingestion folds events into the ledger in arrival order,
eviction drops victims in a deterministic order, and every sketch view
is a pure function of ledger content.  A follower that applies the same
mutation stream therefore holds the same ledger — and answers every
query **bit-identically** — at the same watermark.  This module ships
that stream.

Wire protocol (three operations on the existing JSON-lines framing):

``repl_snapshot``
    Request/response.  Returns the primary's ledger wholesale — config,
    per-group totals / first-seen / last-seen / event counts — tagged
    with the event ``watermark`` and the replication ``offset`` it
    describes.  A cold follower installs this and then streams the tail.

``repl_subscribe {"after_offset": n}``
    Request/response handshake.  When the primary's in-memory segment
    buffer still covers ``n`` the response is ``{"mode": "stream",
    "offset": ..., "watermark": ...}`` and the connection switches to
    push mode; when the follower is too far behind (the buffer is
    bounded) the response is ``{"mode": "snapshot", ...}`` — ship a
    snapshot first.

``repl_segment``
    Pushed frame (no ``id``): one **sealed segment** — an immutable,
    offset-stamped entry of the primary's mutation log.  ``kind:
    "events"`` carries one acknowledged ingest batch (the same batch
    the primary's write-ahead log sealed, watermark-tagged so the
    follower can verify contiguity); ``kind: "evict"`` carries one
    retention report (eviction mutates the ledger without feed events,
    so it must ship too or followers would diverge).  A frame with
    ``"reset": true`` tells a subscriber it fell out of the buffer —
    re-bootstrap from a snapshot.

The mutation log (:class:`ReplicationHub`) is the serving twin of the
on-disk write-ahead log: the primary appends a sealed entry *after*
each successful local apply, so a follower can never observe state the
primary did not durably acknowledge.  The buffer is bounded
(``capacity`` entries); snapshot shipping covers arbitrary lag, so
boundedness costs availability nothing.

:class:`ReplicaFollower` is the other half: it bootstraps from a
snapshot when cold (or whenever its offset is unknown — e.g. after a
process restart), subscribes, applies segments in offset order with
contiguity checks, reconnects with exponential backoff when the primary
dies, and keeps its own store durable (segments it applies to a
directory-backed store are write-ahead logged locally; applied
evictions snapshot, exactly as on the primary).  The convergence
invariant is enforced by ``tests/serving/test_replication.py``:
after *any* interleaving of ingest / evict / failover, follower
ledgers, sketch views, and query answers equal the primary's (``==``)
at the same watermark.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .events import Event
from .store import SketchStore, StoreConfig

__all__ = [
    "ReplicaFollower",
    "ReplicationError",
    "ReplicationHub",
    "apply_entry",
    "install_snapshot",
    "snapshot_payload",
]

#: Read-buffer limit for follower connections: snapshot payloads are one
#: JSON line holding a whole ledger, so the limit must comfortably
#: exceed the default 64 KiB.
FOLLOWER_LINE_LIMIT = 2 ** 25


class ReplicationError(RuntimeError):
    """A replication-protocol failure (gap, mismatch, or refusal)."""


class ReplicationHub:
    """The primary's bounded, offset-stamped mutation log.

    Entries are appended by the server *after* each successful local
    apply — an acknowledged ingest batch or a non-empty retention
    report — and pushed to subscribers by per-connection pump tasks.
    The buffer keeps the last ``capacity`` entries; a subscriber asking
    for older history is redirected to snapshot shipping.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._entries: Deque[Dict[str, Any]] = deque()
        self._offset = 0
        self._watermark = 0
        self._event = asyncio.Event()

    # ------------------------------------------------------------------
    # Recording (primary side, called after each successful apply)
    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Offset of the newest recorded entry (0 = nothing recorded)."""
        return self._offset

    @property
    def watermark(self) -> int:
        """Event watermark after the newest recorded entry."""
        return self._watermark

    @property
    def oldest_offset(self) -> Optional[int]:
        """Offset of the oldest retained entry, or ``None`` when empty."""
        return self._entries[0]["offset"] if self._entries else None

    def reseed(self, watermark: int) -> None:
        """Adopt a store's event watermark before any entry is recorded.

        A hub always starts at watermark 0, but the store it fronts may
        be warm — recovered from a snapshot, or a promoted follower's
        replica.  Subscribers cross-check the hub's advertised watermark
        against their own ``events_ingested`` right after bootstrap, so
        an untruthful 0 would force them into a re-bootstrap loop.  The
        server calls this at start (and promotion) when the hub is still
        pristine; reseeding after entries exist would falsify offsets,
        so that is refused.
        """
        if self._entries or self._offset:
            raise ReplicationError(
                "cannot reseed a hub that has recorded entries"
            )
        self._watermark = int(watermark)

    def record_events(self, events: List[Event], watermark: int) -> None:
        """Seal one acknowledged ingest batch as a segment entry."""
        if not events:
            return
        self._append(
            {
                "kind": "events",
                "events": [event.to_dict() for event in events],
                "watermark": int(watermark),
            }
        )

    def record_evict(
        self, report: Dict[str, List[str]], watermark: int
    ) -> None:
        """Seal one non-empty retention report as a segment entry."""
        if not report:
            return
        self._append(
            {
                "kind": "evict",
                "evictions": {
                    group: list(keys) for group, keys in report.items()
                },
                "watermark": int(watermark),
            }
        )

    def _append(self, entry: Dict[str, Any]) -> None:
        self._offset += 1
        entry["offset"] = self._offset
        self._watermark = entry["watermark"]
        self._entries.append(entry)
        while len(self._entries) > self.capacity:
            self._entries.popleft()
        # Wake every pump waiting for news; each waiter re-arms on the
        # fresh event, so no notification is ever lost.
        event, self._event = self._event, asyncio.Event()
        event.set()

    # ------------------------------------------------------------------
    # Reading (pump side)
    # ------------------------------------------------------------------
    def can_resume_from(self, after_offset: int) -> bool:
        """Whether the buffer still covers ``after_offset`` onwards."""
        if after_offset > self._offset:
            raise ReplicationError(
                f"subscriber is ahead of the primary "
                f"({after_offset} > {self._offset})"
            )
        if after_offset == self._offset:
            return True
        oldest = self.oldest_offset
        return oldest is not None and oldest <= after_offset + 1

    def entries_after(
        self, after_offset: int
    ) -> Optional[List[Dict[str, Any]]]:
        """Retained entries past ``after_offset``; ``None`` on a gap."""
        if after_offset == self._offset:
            return []
        oldest = self.oldest_offset
        if oldest is None or oldest > after_offset + 1:
            return None
        return [
            entry
            for entry in self._entries
            if entry["offset"] > after_offset
        ]

    async def wait_beyond(self, offset: int) -> None:
        """Block until an entry with a larger offset is recorded."""
        while self._offset <= offset:
            await self._event.wait()

    def describe(self) -> Dict[str, Any]:
        """The hub's state for the ``info`` operation."""
        return {
            "offset": self._offset,
            "watermark": self._watermark,
            "oldest_offset": self.oldest_offset,
            "buffered_entries": len(self._entries),
            "capacity": self.capacity,
        }


# ----------------------------------------------------------------------
# Snapshot shipping
# ----------------------------------------------------------------------
def snapshot_payload(store: SketchStore, offset: int) -> Dict[str, Any]:
    """Serialize a store's ledger for ``repl_snapshot``.

    The payload is a pure function of ledger content (group and key
    iteration in sorted order), so identical stores ship identical
    snapshots.  JSON float round-tripping is exact (shortest-repr), so
    installation reproduces the ledger bit for bit.
    """
    return {
        "config": store.config.to_dict(),
        "watermark": store.events_ingested,
        "offset": int(offset),
        "groups": {
            group: {
                "totals": {
                    key: state.totals[key] for key in sorted(state.totals)
                },
                "first_seen": {
                    key: state.first_seen[key]
                    for key in sorted(state.first_seen)
                },
                "last_seen": {
                    key: state.last_seen[key]
                    for key in sorted(state.last_seen)
                },
                "events": state.events,
            }
            for group in store.groups
            for state in [store.group_state(group)]
        },
    }


def install_snapshot(store: SketchStore, payload: Dict[str, Any]) -> int:
    """Replace a follower store's ledger with a shipped snapshot.

    Returns the snapshot's replication ``offset``.  The store's config
    must equal the primary's (coordinated sketches require identical
    sampling parameters).  A directory-backed follower persists the
    installed state immediately — snapshot + WAL compaction — so a
    crash right after installation recovers to the installed ledger.
    """
    config = StoreConfig.from_dict(payload["config"])
    if store.config != config:
        raise ReplicationError(
            f"follower config {store.config} does not match the "
            f"primary's {config}"
        )
    store._groups.clear()
    for group, data in payload["groups"].items():
        state = store.group_state(group)
        state.totals.update(
            {str(k): float(v) for k, v in data["totals"].items()}
        )
        state.first_seen.update(
            {str(k): float(v) for k, v in data["first_seen"].items()}
        )
        state.last_seen.update(
            {str(k): float(v) for k, v in data["last_seen"].items()}
        )
        state.events = int(data["events"])
        state.invalidate()
    store._events = int(payload["watermark"])
    if store.root is not None:
        store.snapshot()
    return int(payload["offset"])


def apply_entry(store: SketchStore, entry: Dict[str, Any]) -> None:
    """Apply one shipped segment entry to a follower store.

    ``events`` entries are verified contiguous — the entry's watermark
    minus its batch length must equal the store's current watermark —
    then folded through the ordinary :meth:`SketchStore.ingest` path
    (write-ahead logged locally when directory-backed).  ``evict``
    entries drop the named keys and, on a directory-backed store,
    snapshot so local WAL replay cannot resurrect a victim — the exact
    durability rule the primary's own retention path follows.
    """
    kind = entry.get("kind")
    if kind == "events":
        events = [Event.from_dict(item) for item in entry["events"]]
        expected = int(entry["watermark"]) - len(events)
        if store.events_ingested != expected:
            raise ReplicationError(
                f"segment at watermark {entry['watermark']} is not "
                f"contiguous with the follower's "
                f"{store.events_ingested}"
            )
        store.ingest(events)
        return
    if kind == "evict":
        if int(entry["watermark"]) != store.events_ingested:
            raise ReplicationError(
                f"eviction at watermark {entry['watermark']} does not "
                f"match the follower's {store.events_ingested}"
            )
        for group in sorted(entry["evictions"]):
            store.group_state(group).drop_keys(entry["evictions"][group])
        if store.root is not None:
            store.snapshot()
        return
    raise ReplicationError(f"unknown segment kind {kind!r}")


# ----------------------------------------------------------------------
# The follower
# ----------------------------------------------------------------------
class ReplicaFollower:
    """Keep a local store converged with a primary ``SketchServer``.

    Parameters
    ----------
    store:
        The follower's store (in-memory or directory-backed).  Its
        config must match the primary's.
    host, port:
        The primary's TCP address.
    backoff, max_backoff:
        Reconnect delay: starts at ``backoff`` seconds and doubles per
        consecutive failure up to ``max_backoff``.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry` for
        applied/bootstrap/reconnect counters.

    Two driving modes: :meth:`sync_once` connects, catches up to the
    primary's offset at handshake time, and returns (what the tests and
    the replication bench use); :meth:`run` follows continuously,
    re-bootstrapping on resets and reconnecting with backoff when the
    primary dies (what ``serve --follow`` runs in the background).
    """

    def __init__(
        self,
        store: SketchStore,
        host: str,
        port: int,
        *,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        metrics=None,
    ) -> None:
        if backoff <= 0 or max_backoff < backoff:
            raise ValueError("need 0 < backoff <= max_backoff")
        self._store = store
        self._host = host
        self._port = int(port)
        self._backoff = float(backoff)
        self._max_backoff = float(max_backoff)
        self._metrics = metrics
        #: Offset of the last applied entry; ``None`` = unknown (cold or
        #: restarted) — the next connection bootstraps from a snapshot.
        self.offset: Optional[int] = None
        self.bootstraps = 0
        self.reconnects = 0
        self._next_id = 0

    @property
    def store(self) -> SketchStore:
        """The follower's (converging) store."""
        return self._store

    @property
    def watermark(self) -> int:
        """The follower's applied event watermark."""
        return self._store.events_ingested

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    async def _connect(self):
        return await asyncio.open_connection(
            self._host, self._port, limit=FOLLOWER_LINE_LIMIT
        )

    async def _request(
        self, reader, writer, op: str, **fields: Any
    ) -> Dict[str, Any]:
        self._next_id += 1
        request_id = f"repl-{self._next_id}"
        line = json.dumps({"id": request_id, "op": op, **fields}) + "\n"
        writer.write(line.encode())
        await writer.drain()
        while True:
            raw = await reader.readline()
            if not raw:
                raise ConnectionError("primary closed during handshake")
            payload = json.loads(raw)
            if payload.get("id") != request_id:
                continue  # a stray push frame; handshakes ignore it
            if not payload.get("ok"):
                raise ReplicationError(
                    payload.get("error", f"{op} request failed")
                )
            return payload

    async def _bootstrap(self, reader, writer) -> None:
        """Install the primary's current snapshot (cold / lost-tail start)."""
        response = await self._request(reader, writer, "repl_snapshot")
        self.offset = install_snapshot(self._store, response["result"])
        self.bootstraps += 1
        if self._metrics is not None:
            self._metrics.counter(
                "serving_repl_bootstraps_total",
                help="snapshot installations performed by this follower",
            ).inc()

    async def _subscribe(self, reader, writer) -> Tuple[int, int]:
        """Handshake to streaming mode; returns (primary offset, watermark).

        Falls back to a snapshot bootstrap — once — whenever the
        primary's history cannot be trusted to extend ours: it refuses
        our offset (a restarted primary whose offsets started over), it
        answers ``mode: "snapshot"`` (we fell out of its buffer), or it
        claims our exact offset with a *different watermark* (same
        offset number, different history — the failover ambiguity the
        watermark tag exists to catch).
        """
        for attempt in (0, 1):
            if self.offset is None:
                await self._bootstrap(reader, writer)
            try:
                response = await self._request(
                    reader, writer, "repl_subscribe", after_offset=self.offset
                )
            except ReplicationError:
                if attempt:
                    raise
                self.offset = None
                continue
            if response.get("mode") != "stream":
                if attempt:
                    raise ReplicationError(
                        "primary refused streaming right after a snapshot"
                    )
                self.offset = None
                continue
            offset = int(response["offset"])
            watermark = int(response["watermark"])
            if (
                offset == self.offset
                and watermark != self._store.events_ingested
            ):
                if attempt:
                    raise ReplicationError(
                        "watermark mismatch right after a snapshot"
                    )
                self.offset = None
                continue
            return offset, watermark
        raise ReplicationError("unreachable")  # pragma: no cover

    def _apply(self, entry: Dict[str, Any]) -> None:
        offset = int(entry["offset"])
        if self.offset is not None and offset != self.offset + 1:
            raise ReplicationError(
                f"segment offset {offset} is not contiguous with "
                f"{self.offset}"
            )
        apply_entry(self._store, entry)
        self.offset = offset
        if self._metrics is not None:
            self._metrics.counter(
                "serving_repl_applied_entries_total",
                help="segment entries applied by this follower",
            ).inc()
            if entry.get("kind") == "events":
                self._metrics.counter(
                    "serving_repl_applied_events_total",
                    help="feed events applied by this follower",
                ).inc(len(entry["events"]))

    async def _consume(
        self, reader, until_offset: Optional[int]
    ) -> bool:
        """Apply pushed frames; ``True`` when ``until_offset`` reached,
        ``False`` on a clean disconnect.  Raises on a reset frame."""
        while True:
            if until_offset is not None and (
                self.offset is not None and self.offset >= until_offset
            ):
                return True
            raw = await reader.readline()
            if not raw:
                return False
            payload = json.loads(raw)
            if payload.get("op") != "repl_segment":
                continue
            if payload.get("reset"):
                # Fell out of the primary's buffer: offset is no longer
                # meaningful, the next connection must re-bootstrap.
                self.offset = None
                raise ReplicationError("primary reset the subscription")
            self._apply(payload["entry"])

    # ------------------------------------------------------------------
    # Driving modes
    # ------------------------------------------------------------------
    async def sync_once(self) -> int:
        """Connect, converge to the primary's handshake-time offset,
        disconnect.  Returns the converged offset."""
        reader, writer = await self._connect()
        try:
            target, _watermark = await self._subscribe(reader, writer)
            if self.offset is not None and self.offset < target:
                reached = await self._consume(reader, until_offset=target)
                if not reached:
                    raise ConnectionError(
                        "primary closed before catch-up completed"
                    )
            return int(self.offset or 0)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def run(self, stop: Optional[asyncio.Event] = None) -> None:
        """Follow continuously: stream, re-bootstrap on resets, and
        reconnect with exponential backoff on connection loss.  Returns
        when ``stop`` is set (checked between connection attempts)."""
        delay = self._backoff
        while stop is None or not stop.is_set():
            try:
                reader, writer = await self._connect()
            except (ConnectionError, OSError):
                await asyncio.sleep(delay)
                delay = min(self._max_backoff, delay * 2)
                self.reconnects += 1
                continue
            try:
                await self._subscribe(reader, writer)
                delay = self._backoff  # healthy stream: reset the clock
                await self._consume(reader, until_offset=None)
            except ReplicationError:
                # Reset or stream inconsistency: the offset can no
                # longer be trusted, so the next connection bootstraps.
                self.offset = None
            except (ConnectionError, OSError, ValueError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            self.reconnects += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "serving_repl_reconnects_total",
                    help="connection attempts after a stream ended",
                ).inc()
            await asyncio.sleep(delay)
            delay = min(self._max_backoff, delay * 2)
