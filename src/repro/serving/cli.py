"""Command-line face of the sketch store: ``python -m repro.serving``.

Subcommands operate on a store directory (see
:mod:`repro.serving.persistence` for its layout)::

    python -m repro.serving synth --out feed.jsonl --events 2000
    python -m repro.serving ingest --store ./store feed.jsonl --snapshot
    python -m repro.serving query --store ./store --kind sum
    python -m repro.serving query --store ./store --kind distinct --until 500
    python -m repro.serving query --store ./store --kind similarity \\
        --groups alice bob
    python -m repro.serving snapshot --store ./store
    python -m repro.serving merge --out ./merged ./shard-a ./shard-b
    python -m repro.serving info --store ./store

``ingest`` creates the store on first use (``--k`` / ``--tau-star`` /
``--rank-method`` / ``--salt`` pin the config; afterwards the stored
config wins and conflicting flags are an error).  ``query`` prints a
JSON document to stdout.  ``merge`` opens any number of source stores —
which must share a config — merges their ledgers, and attaches the
result to a fresh directory.  A failure is reported on stderr and turns
the exit code nonzero instead of escaping as a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..api.backend import BACKEND_MODES
from ..sketches.bottomk import RankMethod
from .events import read_events, synthetic_feed, write_events
from .store import SERVING_QUERY_KINDS, SketchStore, StoreConfig, merge_stores

__all__ = ["main"]


def _config_from_args(args: argparse.Namespace) -> Optional[StoreConfig]:
    flags = (args.k, args.tau_star, args.rank_method, args.salt)
    if all(value is None for value in flags):
        return None
    defaults = StoreConfig()
    return StoreConfig(
        k=defaults.k if args.k is None else args.k,
        tau_star=defaults.tau_star if args.tau_star is None else args.tau_star,
        rank_method=(
            defaults.rank_method
            if args.rank_method is None
            else RankMethod(args.rank_method)
        ),
        salt=defaults.salt if args.salt is None else args.salt,
    )


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--k", type=int, default=None, help="sketch capacity (store creation)"
    )
    parser.add_argument(
        "--tau-star", type=float, default=None,
        help="PPS rate (store creation)",
    )
    parser.add_argument(
        "--rank-method", choices=[m.value for m in RankMethod], default=None,
        help="bottom-k rank function (store creation)",
    )
    parser.add_argument(
        "--salt", default=None, help="seed-hash salt (store creation)"
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    events = synthetic_feed(
        num_events=args.events,
        num_keys=args.keys,
        groups=tuple(args.groups),
        seed=args.seed,
    )
    path = write_events(args.out, events)
    print(f"wrote {len(events)} events to {path}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store, config=_config_from_args(args))
    try:
        total = 0
        for feed in args.feeds:
            total += store.ingest(read_events(feed))
        if args.snapshot:
            store.snapshot()
        print(
            f"ingested {total} events into {args.store} "
            f"(total {store.events_ingested}, groups: {', '.join(store.groups) or '-'})"
        )
    finally:
        store.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store)
    try:
        result = store.query(
            args.kind,
            groups=args.groups,
            keys=args.keys,
            until=args.until,
            backend=args.backend,
        )
    finally:
        store.close()
    print(json.dumps({"kind": args.kind, "result": result}, sort_keys=True))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store)
    try:
        path = store.snapshot()
    finally:
        store.close()
    print(f"snapshot {path.name} at watermark {store.events_ingested}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    sources = []
    try:
        for root in args.sources:
            sources.append(SketchStore.open(root))
        merged = sources[0]
        for other in sources[1:]:
            merged = merge_stores(merged, other)
        if merged in sources:  # single source: copy its ledger
            merged = merge_stores(merged, SketchStore(merged.config))
        merged.attach(args.out)
        merged.close()
    finally:
        for source in sources:
            source.close()
    print(
        f"merged {len(sources)} store(s) into {args.out} "
        f"({merged.events_ingested} events, groups: {', '.join(merged.groups) or '-'})"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store)
    try:
        from .persistence import latest_snapshot_digest

        payload = {
            "root": str(store.root),
            "config": store.config.to_dict(),
            "events_ingested": store.events_ingested,
            "groups": {
                group: {
                    "keys": len(store.group_state(group).totals),
                    "events": store.group_state(group).events,
                    "pps_sample_size": len(store.sketch(group, "pps").entries),
                    "ads_size": len(store.sketch(group, "ads")),
                }
                for group in store.groups
            },
            "latest_snapshot": latest_snapshot_digest(Path(args.store)),
            "query_kinds": list(SERVING_QUERY_KINDS.names()),
        }
    finally:
        store.close()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Sketch-store serving layer: ingest, query, snapshot, merge.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="write a deterministic synthetic feed")
    synth.add_argument("--out", required=True, help="output feed (.jsonl)")
    synth.add_argument("--events", type=int, default=1000)
    synth.add_argument("--keys", type=int, default=100)
    synth.add_argument("--groups", nargs="+", default=["default"])
    synth.add_argument("--seed", type=int, default=0)
    synth.set_defaults(func=_cmd_synth)

    ingest = sub.add_parser("ingest", help="ingest feed files into a store")
    ingest.add_argument("--store", required=True, help="store directory")
    ingest.add_argument("feeds", nargs="+", help="feed files (.jsonl)")
    ingest.add_argument(
        "--snapshot", action="store_true", help="snapshot after ingesting"
    )
    _add_config_flags(ingest)
    ingest.set_defaults(func=_cmd_ingest)

    query = sub.add_parser("query", help="answer a query from the sketches")
    query.add_argument("--store", required=True, help="store directory")
    query.add_argument(
        "--kind", required=True, choices=list(SERVING_QUERY_KINDS.names())
    )
    query.add_argument("--groups", nargs="+", default=None)
    query.add_argument("--keys", nargs="+", default=None)
    query.add_argument("--until", type=float, default=None)
    query.add_argument("--backend", choices=BACKEND_MODES, default=None)
    query.set_defaults(func=_cmd_query)

    snapshot = sub.add_parser("snapshot", help="snapshot a store's ledger")
    snapshot.add_argument("--store", required=True, help="store directory")
    snapshot.set_defaults(func=_cmd_snapshot)

    merge = sub.add_parser(
        "merge", help="merge stores into a fresh store directory"
    )
    merge.add_argument("sources", nargs="+", help="source store directories")
    merge.add_argument("--out", required=True, help="destination directory")
    merge.set_defaults(func=_cmd_merge)

    info = sub.add_parser("info", help="summarise a store as JSON")
    info.add_argument("--store", required=True, help="store directory")
    info.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.serving``; returns the exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
