"""Command-line face of the sketch store: ``python -m repro.serving``.

Subcommands operate on a store directory (see
:mod:`repro.serving.persistence` for its layout)::

    python -m repro.serving synth --out feed.jsonl --events 2000
    python -m repro.serving ingest --store ./store feed.jsonl --snapshot
    python -m repro.serving query --store ./store --kind sum
    python -m repro.serving query --store ./store --kind distinct --until 500
    python -m repro.serving query --store ./store --kind similarity \\
        --groups alice bob
    python -m repro.serving snapshot --store ./store
    python -m repro.serving merge --out ./merged ./shard-a ./shard-b
    python -m repro.serving info --store ./store
    python -m repro.serving serve --store ./store --port 0 --max-keys 512
    python -m repro.serving load --host 127.0.0.1 --port 7343 \\
        --clients 32 --requests 8 --mode concurrent --evict --shutdown
    python -m repro.serving evict --store ./store --ttl 3600 --max-keys 256

``ingest`` creates the store on first use (``--k`` / ``--tau-star`` /
``--rank-method`` / ``--salt`` pin the config; afterwards the stored
config wins and conflicting flags are an error).  ``query`` prints a
JSON document to stdout.  ``merge`` opens any number of source stores —
which must share a config — merges their ledgers, and attaches the
result to a fresh directory.  A failure is reported on stderr and turns
the exit code nonzero instead of escaping as a traceback.

``serve`` runs the asyncio front-end of :mod:`repro.serving.server` on
a store directory (announcing the bound address on stdout — with
``--port 0`` the kernel picks a free port) until a ``shutdown`` request
arrives.  ``--metrics-port`` mounts the Prometheus ``/metrics`` HTTP
shim next to the TCP server; ``--max-pending-events`` bounds the ingest
queue (overload then sheds with a ``retry_after`` hint instead of
growing memory); ``--sync-ack N`` holds each ingest ack until ``N``
followers confirm the covering replication offset (degrading to an
explicit ``durable: false`` after ``--ack-timeout`` seconds, so a
client always learns whether its batch outlives the primary);
``--follow HOST:PORT`` starts the server as a
*read-only replica* of a running primary — it bootstraps from the
primary's snapshot (adopting its config on first start), streams sealed
WAL segments, and serves queries bit-identical to the primary's at the
shipped watermark; with ``--promotable`` the replica also answers the
wire ``promote`` operation, rewiring itself into primary mode at that
watermark (the router's failover path).  ``serve --router SPEC...``
runs the store-less shard router instead: one
``HOST:PORT[,HOST:PORT...]`` endpoint chain per shard, key-routed
ingest, scatter-gather queries bit-identical to an unsharded store,
and automatic failover along each chain (``--health-interval`` adds
background health sweeps).  ``load`` is the matching load generator:
deterministic mixed queries from ``--clients`` concurrent connections
(or one connection with ``--mode sequential`` — the per-request
baseline the benchmarks compare against), optional server-side
ingestion (``--ingest-events``, backing off on shed batches), an
optional eviction cycle, and an optional clean shutdown; it prints a
JSON throughput report.  ``evict`` applies a retention policy offline,
snapshotting so the eviction is durable.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..api.backend import BACKEND_MODES
from ..sketches.bottomk import RankMethod
from .events import read_events, synthetic_feed, write_events
from .metrics import MetricsHTTPShim
from .promotion import PromotableReplica
from .replication import ReplicaFollower
from .retention import RetentionPolicy, apply_retention
from .router import ShardRouter
from .resilience import RetryPolicy
from .server import Overloaded, ServingClient, ServingError, SketchServer
from .store import SERVING_QUERY_KINDS, SketchStore, StoreConfig, merge_stores

__all__ = ["main", "run_load"]


def _config_from_args(args: argparse.Namespace) -> Optional[StoreConfig]:
    flags = (args.k, args.tau_star, args.rank_method, args.salt)
    if all(value is None for value in flags):
        return None
    defaults = StoreConfig()
    return StoreConfig(
        k=defaults.k if args.k is None else args.k,
        tau_star=defaults.tau_star if args.tau_star is None else args.tau_star,
        rank_method=(
            defaults.rank_method
            if args.rank_method is None
            else RankMethod(args.rank_method)
        ),
        salt=defaults.salt if args.salt is None else args.salt,
    )


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--k", type=int, default=None, help="sketch capacity (store creation)"
    )
    parser.add_argument(
        "--tau-star", type=float, default=None,
        help="PPS rate (store creation)",
    )
    parser.add_argument(
        "--rank-method", choices=[m.value for m in RankMethod], default=None,
        help="bottom-k rank function (store creation)",
    )
    parser.add_argument(
        "--salt", default=None, help="seed-hash salt (store creation)"
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    events = synthetic_feed(
        num_events=args.events,
        num_keys=args.keys,
        groups=tuple(args.groups),
        seed=args.seed,
    )
    path = write_events(args.out, events)
    print(f"wrote {len(events)} events to {path}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store, config=_config_from_args(args))
    try:
        total = 0
        for feed in args.feeds:
            total += store.ingest(read_events(feed))
        if args.snapshot:
            store.snapshot()
        print(
            f"ingested {total} events into {args.store} "
            f"(total {store.events_ingested}, groups: {', '.join(store.groups) or '-'})"
        )
    finally:
        store.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store)
    try:
        result = store.query(
            args.kind,
            groups=args.groups,
            keys=args.keys,
            until=args.until,
            backend=args.backend,
        )
    finally:
        store.close()
    print(json.dumps({"kind": args.kind, "result": result}, sort_keys=True))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store)
    try:
        path = store.snapshot()
    finally:
        store.close()
    print(f"snapshot {path.name} at watermark {store.events_ingested}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    sources = []
    try:
        for root in args.sources:
            sources.append(SketchStore.open(root))
        merged = sources[0]
        for other in sources[1:]:
            merged = merge_stores(merged, other)
        if merged in sources:  # single source: copy its ledger
            merged = merge_stores(merged, SketchStore(merged.config))
        merged.attach(args.out)
        merged.close()
    finally:
        for source in sources:
            source.close()
    print(
        f"merged {len(sources)} store(s) into {args.out} "
        f"({merged.events_ingested} events, groups: {', '.join(merged.groups) or '-'})"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    store = SketchStore.open(args.store)
    try:
        from .persistence import latest_snapshot_digest

        payload = {
            "root": str(store.root),
            "config": store.config.to_dict(),
            "events_ingested": store.events_ingested,
            "groups": {
                group: {
                    "keys": len(store.group_state(group).totals),
                    "events": store.group_state(group).events,
                    "pps_sample_size": len(store.sketch(group, "pps").entries),
                    "ads_size": len(store.sketch(group, "ads")),
                }
                for group in store.groups
            },
            "latest_snapshot": latest_snapshot_digest(Path(args.store)),
            "query_kinds": list(SERVING_QUERY_KINDS.names()),
        }
    finally:
        store.close()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _retention_from_args(args: argparse.Namespace) -> Optional[RetentionPolicy]:
    if args.ttl is None and args.max_keys is None:
        return None
    return RetentionPolicy(ttl=args.ttl, max_keys=args.max_keys)


def _parse_endpoint(text: str) -> tuple:
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _serve_router(args: argparse.Namespace) -> int:
    """Run the shard router: ``serve --router SPEC [SPEC ...]``.

    Each SPEC is one shard's endpoint chain —
    ``HOST:PORT[,HOST:PORT...]``, preferred primary first, fallbacks
    (typically the shard's followers) after.  The shards must already
    be serving: the router pins their shared config at start.
    """
    shards = [
        [_parse_endpoint(part) for part in spec.split(",") if part]
        for spec in args.router
    ]

    async def run() -> int:
        router = ShardRouter(
            shards,
            host=args.host,
            port=args.port,
            health_interval=args.health_interval,
        )
        host, port = await router.start()
        print(f"routing {len(shards)} shard(s) on {host}:{port}", flush=True)
        shim = None
        if args.metrics_port is not None:
            shim = MetricsHTTPShim(
                router.metrics, args.host, args.metrics_port
            )
            metrics_host, metrics_port = await shim.start()
            print(f"metrics on {metrics_host}:{metrics_port}", flush=True)
        try:
            await router.serve_forever()
        finally:
            if shim is not None:
                await shim.stop()
        return sum(slot.watermark for slot in router.slots)

    watermark = asyncio.run(run())
    print(f"router stopped at watermark {watermark}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.router:
        if args.store is not None or args.follow:
            raise ValueError(
                "--router runs store-less; drop --store/--follow"
            )
        return _serve_router(args)
    if args.store is None:
        raise ValueError("serve needs --store (or --router)")
    if args.promotable and not args.follow:
        raise ValueError("--promotable requires --follow")
    follow = _parse_endpoint(args.follow) if args.follow else None

    async def run() -> int:
        config = _config_from_args(args)
        if follow is not None:
            # A fresh follower adopts the primary's config before the
            # store directory is created — coordinated sketches require
            # identical sampling parameters on both sides.
            primary = await ServingClient.connect(*follow)
            try:
                primary_config = StoreConfig.from_dict(
                    (await primary.info())["config"]
                )
            finally:
                await primary.close()
            if config is not None and config != primary_config:
                raise ValueError(
                    f"config flags {config} conflict with the primary's "
                    f"{primary_config}"
                )
            config = primary_config
        store = SketchStore.open(args.store, config=config)
        try:
            server_kwargs = dict(
                max_batch=args.max_batch,
                max_delay=args.max_delay_ms / 1000.0,
                retention=_retention_from_args(args),
                retention_interval=args.retention_interval,
                max_pending_events=args.max_pending_events,
                repl_buffer=args.repl_buffer,
                sync_ack=args.sync_ack,
                ack_timeout=args.ack_timeout,
            )
            replica = None
            follower_task = None
            if follow is not None and args.promotable:
                replica = PromotableReplica(
                    store,
                    follow[0],
                    follow[1],
                    host=args.host,
                    port=args.port,
                    **server_kwargs,
                )
                server = replica.server
                host, port = await replica.start()
            else:
                server = SketchServer(
                    store,
                    host=args.host,
                    port=args.port,
                    read_only=follow is not None,
                    **server_kwargs,
                )
                host, port = await server.start()
            # Announced (and flushed) so a driver using --port 0 can
            # read the bound port before sending traffic.
            print(f"serving {args.store} on {host}:{port}", flush=True)
            shim = None
            if args.metrics_port is not None:
                shim = MetricsHTTPShim(
                    server.metrics, args.host, args.metrics_port
                )
                metrics_host, metrics_port = await shim.start()
                print(
                    f"metrics on {metrics_host}:{metrics_port}", flush=True
                )
            if follow is not None:
                if replica is None:
                    follower = ReplicaFollower(
                        store, follow[0], follow[1], metrics=server.metrics
                    )
                    follower_task = asyncio.create_task(follower.run())
                    print(f"following {follow[0]}:{follow[1]}", flush=True)
                else:
                    print(
                        f"following {follow[0]}:{follow[1]} (promotable)",
                        flush=True,
                    )
            try:
                await server.serve_forever()
            finally:
                if follower_task is not None:
                    follower_task.cancel()
                    try:
                        await follower_task
                    except asyncio.CancelledError:
                        pass
                if replica is not None:
                    await replica.stop()
                if shim is not None:
                    await shim.stop()
        finally:
            store.close()
        return store.events_ingested

    watermark = asyncio.run(run())
    print(f"server stopped at watermark {watermark}")
    return 0


async def run_load(
    host: str,
    port: int,
    clients: int = 8,
    requests_per_client: int = 8,
    mode: str = "concurrent",
    kinds: Sequence[str] = ("sum", "distinct"),
    backend: Optional[str] = None,
    ingest_events: int = 0,
    ingest_batch: int = 100,
    ingest_seed: int = 0,
    with_metrics: bool = False,
) -> Dict[str, Any]:
    """Drive a running server with a deterministic mixed query workload.

    ``concurrent`` mode opens one connection per client and lets the
    clients issue their requests closed-loop in parallel — the workload
    the coalescing window feeds on.  ``sequential`` mode issues every
    request one at a time over a single connection: the per-request
    baseline.  The request mix is a pure function of the arguments, so
    the two modes answer the identical request multiset.

    With ``ingest_events > 0`` the run first ships that many synthetic
    events to the server in ``ingest_batch``-sized batches over the
    probe connection, honouring admission control: a shed batch backs
    off for the server's ``retry_after`` hint and re-sends, so every
    event lands even under a tight ``--max-pending-events`` bound (the
    report counts the sheds it rode out).  Against a ``--sync-ack``
    server the report also splits the ingest acks into ``durable_acks``
    and ``degraded_acks``.

    Returns a JSON-ready report: request counts, wall seconds,
    requests/second, error count, the server's coalescing counters
    after the run, and (``with_metrics=True``) its metrics snapshot.
    """
    if mode not in ("concurrent", "sequential"):
        raise ValueError(f"unknown load mode {mode!r}")
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests must be positive")
    if not kinds:
        raise ValueError("at least one query kind is required")
    if ingest_events < 0 or ingest_batch < 1:
        raise ValueError("ingest_events/ingest_batch out of range")
    probe = await ServingClient.connect(host, port)
    try:
        ingested = 0
        shed_retries = 0
        durable_acks = 0
        degraded_acks = 0
        if ingest_events:
            feed = synthetic_feed(
                num_events=ingest_events,
                num_keys=max(16, ingest_events // 8),
                groups=("alpha", "beta"),
                seed=ingest_seed,
            )
            # Shed batches back off through the shared policy: the
            # server's retry_after hint is honoured but clamped, and a
            # hintless shed escalates the capped exponential schedule.
            shed_timer = RetryPolicy(base=0.01, cap=2.0).timer()
            for start_index in range(0, len(feed), ingest_batch):
                batch = feed[start_index : start_index + ingest_batch]
                while True:
                    try:
                        response = await probe.ingest(batch)
                        ingested += response["ingested"]
                        durable = response.get("durable")
                        if durable is True:
                            durable_acks += 1
                        elif durable is False:
                            degraded_acks += 1
                        shed_timer.reset()
                        break
                    except Overloaded as exc:
                        shed_retries += 1
                        await shed_timer.pause(retry_after=exc.retry_after)
        info = await probe.info()
        groups = info["groups"]
        pair = groups[:2] if len(groups) >= 2 else None
        plan: List[List[str]] = []
        for client_index in range(clients):
            mine = []
            for request_index in range(requests_per_client):
                kind = kinds[
                    (client_index * requests_per_client + request_index)
                    % len(kinds)
                ]
                if kind == "similarity" and pair is None:
                    kind = "sum"
                mine.append(kind)
            plan.append(mine)
        errors = 0

        async def issue(client: ServingClient, kind: str) -> None:
            nonlocal errors
            try:
                if kind == "similarity":
                    await client.query(kind, groups=pair, backend=backend)
                else:
                    await client.query(kind, backend=backend)
            except ServingError:
                errors += 1

        start = time.perf_counter()
        if mode == "sequential":
            for mine in plan:
                for kind in mine:
                    await issue(probe, kind)
        else:
            connections = [
                await ServingClient.connect(host, port) for _ in range(clients)
            ]
            try:

                async def worker(
                    client: ServingClient, mine: List[str]
                ) -> None:
                    for kind in mine:
                        await issue(client, kind)

                await asyncio.gather(
                    *(
                        worker(client, mine)
                        for client, mine in zip(connections, plan)
                    )
                )
            finally:
                for client in connections:
                    await client.close()
        seconds = time.perf_counter() - start
        after = await probe.info()
        total = clients * requests_per_client
        report = {
            "mode": mode,
            "clients": clients,
            "requests": total,
            "kinds": list(kinds),
            "errors": errors,
            "seconds": seconds,
            "requests_per_sec": total / seconds if seconds > 0 else 0.0,
            "coalescing": after["coalescing"],
            "ingested": ingested,
            "shed_retries": shed_retries,
            "durable_acks": durable_acks,
            "degraded_acks": degraded_acks,
            "watermark": after["events_ingested"],
        }
        if with_metrics:
            report["metrics"] = await probe.metrics()
        return report
    finally:
        await probe.close()


def _cmd_load(args: argparse.Namespace) -> int:
    async def run() -> Dict[str, Any]:
        report = await run_load(
            args.host,
            args.port,
            clients=args.clients,
            requests_per_client=args.requests,
            mode=args.mode,
            kinds=tuple(args.kinds),
            backend=args.backend,
            ingest_events=args.ingest_events,
            ingest_batch=args.ingest_batch,
            ingest_seed=args.ingest_seed,
            with_metrics=args.with_metrics,
        )
        if args.evict or args.ttl is not None or args.max_keys is not None:
            client = await ServingClient.connect(args.host, args.port)
            try:
                response = await client.evict(
                    ttl=args.ttl, max_keys=args.max_keys
                )
                report["evicted"] = {
                    group: len(keys)
                    for group, keys in response["evicted"].items()
                }
            finally:
                await client.close()
        if args.shutdown:
            client = await ServingClient.connect(args.host, args.port)
            try:
                await client.shutdown()
            finally:
                await client.close()
            report["shutdown"] = True
        return report

    report = asyncio.run(run())
    print(json.dumps(report, sort_keys=True))
    return 1 if report["errors"] else 0


def _cmd_evict(args: argparse.Namespace) -> int:
    policy = _retention_from_args(args)
    if policy is None:
        raise ValueError("evict needs --ttl and/or --max-keys")
    store = SketchStore.open(args.store)
    try:
        report = apply_retention(
            store, policy, now=args.now, snapshot=not args.no_snapshot
        )
        payload = {
            "evicted": {
                group: len(keys) for group, keys in report.items()
            },
            "remaining_keys": {
                group: len(store.group_state(group).totals)
                for group in store.groups
            },
        }
    finally:
        store.close()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Sketch-store serving layer: ingest, query, snapshot, merge.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="write a deterministic synthetic feed")
    synth.add_argument("--out", required=True, help="output feed (.jsonl)")
    synth.add_argument("--events", type=int, default=1000)
    synth.add_argument("--keys", type=int, default=100)
    synth.add_argument("--groups", nargs="+", default=["default"])
    synth.add_argument("--seed", type=int, default=0)
    synth.set_defaults(func=_cmd_synth)

    ingest = sub.add_parser("ingest", help="ingest feed files into a store")
    ingest.add_argument("--store", required=True, help="store directory")
    ingest.add_argument("feeds", nargs="+", help="feed files (.jsonl)")
    ingest.add_argument(
        "--snapshot", action="store_true", help="snapshot after ingesting"
    )
    _add_config_flags(ingest)
    ingest.set_defaults(func=_cmd_ingest)

    query = sub.add_parser("query", help="answer a query from the sketches")
    query.add_argument("--store", required=True, help="store directory")
    query.add_argument(
        "--kind", required=True, choices=list(SERVING_QUERY_KINDS.names())
    )
    query.add_argument("--groups", nargs="+", default=None)
    query.add_argument("--keys", nargs="+", default=None)
    query.add_argument("--until", type=float, default=None)
    query.add_argument("--backend", choices=BACKEND_MODES, default=None)
    query.set_defaults(func=_cmd_query)

    snapshot = sub.add_parser("snapshot", help="snapshot a store's ledger")
    snapshot.add_argument("--store", required=True, help="store directory")
    snapshot.set_defaults(func=_cmd_snapshot)

    merge = sub.add_parser(
        "merge", help="merge stores into a fresh store directory"
    )
    merge.add_argument("sources", nargs="+", help="source store directories")
    merge.add_argument("--out", required=True, help="destination directory")
    merge.set_defaults(func=_cmd_merge)

    info = sub.add_parser("info", help="summarise a store as JSON")
    info.add_argument("--store", required=True, help="store directory")
    info.set_defaults(func=_cmd_info)

    serve = sub.add_parser(
        "serve", help="serve a store over the JSON-lines TCP protocol"
    )
    serve.add_argument(
        "--store", default=None,
        help="store directory (required unless --router)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="coalescing window: flush at this many pending queries",
    )
    serve.add_argument(
        "--max-delay-ms", type=float, default=0.0,
        help="coalescing window: hold open this long (0 = one loop tick)",
    )
    serve.add_argument(
        "--ttl", type=float, default=None,
        help="retention: evict keys idle longer than this",
    )
    serve.add_argument(
        "--max-keys", type=int, default=None,
        help="retention: keep at most this many keys per group",
    )
    serve.add_argument(
        "--retention-interval", type=float, default=None,
        help="seconds between background retention sweeps",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="mount the Prometheus /metrics HTTP shim on this port "
        "(0 picks a free port)",
    )
    serve.add_argument(
        "--max-pending-events", type=int, default=None,
        help="ingest admission bound: shed batches past this many "
        "queued events (default: unbounded, no queue)",
    )
    serve.add_argument(
        "--repl-buffer", type=int, default=1024,
        help="replication segment buffer capacity (entries)",
    )
    serve.add_argument(
        "--sync-ack", type=int, default=None, metavar="N",
        help="hold each ingest ack until N followers confirm the "
        "covering segment offset; replies report durable: true/false "
        "(default: acknowledge as soon as the batch is applied)",
    )
    serve.add_argument(
        "--ack-timeout", type=float, default=1.0,
        help="with --sync-ack: seconds to wait for the quorum before "
        "degrading the ack to durable: false",
    )
    serve.add_argument(
        "--follow", metavar="HOST:PORT", default=None,
        help="run as a read-only replica of this primary (bootstraps "
        "from its snapshot, then streams WAL segments)",
    )
    serve.add_argument(
        "--promotable", action="store_true",
        help="with --follow: answer the wire 'promote' op by rewiring "
        "into primary mode at the shipped watermark",
    )
    serve.add_argument(
        "--router", metavar="HOST:PORT[,HOST:PORT...]", nargs="+",
        default=None,
        help="run the store-less shard router instead: one endpoint "
        "chain per shard (preferred primary first, failover fallbacks "
        "after); shard order defines the key partition",
    )
    serve.add_argument(
        "--health-interval", type=float, default=None,
        help="router: seconds between background shard health sweeps "
        "(default: failures detected on routed traffic only)",
    )
    _add_config_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    load = sub.add_parser(
        "load", help="drive a running server with a query workload"
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, required=True)
    load.add_argument("--clients", type=int, default=8)
    load.add_argument(
        "--requests", type=int, default=8, help="requests per client"
    )
    load.add_argument(
        "--mode", choices=["concurrent", "sequential"], default="concurrent"
    )
    load.add_argument(
        "--kinds", nargs="+", default=["sum", "distinct"],
        choices=["sum", "distinct", "similarity"],
    )
    load.add_argument("--backend", choices=BACKEND_MODES, default=None)
    load.add_argument(
        "--ingest-events", type=int, default=0,
        help="ship this many synthetic events to the server first "
        "(backing off on shed batches)",
    )
    load.add_argument(
        "--ingest-batch", type=int, default=100,
        help="events per ingest request",
    )
    load.add_argument(
        "--ingest-seed", type=int, default=0,
        help="seed of the synthetic ingest feed",
    )
    load.add_argument(
        "--with-metrics", action="store_true",
        help="include the server's metrics snapshot in the report",
    )
    load.add_argument(
        "--evict", action="store_true",
        help="finish with an eviction cycle (server-side policy)",
    )
    load.add_argument(
        "--ttl", type=float, default=None,
        help="eviction cycle: explicit TTL (implies --evict)",
    )
    load.add_argument(
        "--max-keys", type=int, default=None,
        help="eviction cycle: explicit key cap (implies --evict)",
    )
    load.add_argument(
        "--shutdown", action="store_true",
        help="finish by asking the server to stop",
    )
    load.set_defaults(func=_cmd_load)

    evict = sub.add_parser(
        "evict", help="apply a retention policy to a store, durably"
    )
    evict.add_argument("--store", required=True, help="store directory")
    evict.add_argument("--ttl", type=float, default=None)
    evict.add_argument("--max-keys", type=int, default=None)
    evict.add_argument(
        "--now", type=float, default=None,
        help="TTL reference time (default: the feed's latest timestamp)",
    )
    evict.add_argument(
        "--no-snapshot", action="store_true",
        help="skip the durability snapshot (in-memory eviction only)",
    )
    evict.set_defaults(func=_cmd_evict)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.serving``; returns the exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, OSError, ServingError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
