"""Durability for the sketch store: write-ahead log + atomic snapshots.

A directory-backed store lays out its state as::

    <root>/config.json            immutable sketch parameters
    <root>/events.jsonl           write-ahead event log (torn-tolerant)
    <root>/snapshots/             a RecordStore of ledger snapshots
        sketchstore-<watermark>.jsonl           finalized snapshots
        sketchstore-<watermark>.jsonl.partial   an interrupted snapshot

The design reuses the :class:`~repro.api.records.RecordStore` streamed
JSONL machinery wholesale: a snapshot is one "run" whose key is
``sketchstore`` and whose digest is the zero-padded event **watermark**
(the number of events folded into the ledger when the snapshot was
taken).  Each key-group is one shard — appended with a sealed
``shard_done`` marker — and the atomic ``.partial`` → ``.jsonl`` rename
on finalize means a crash mid-snapshot leaves only a ``.partial`` file,
which recovery ignores.

Recovery (:func:`open_store`) is the classic two-step: load the latest
*finalized* snapshot, then replay write-ahead-log events with sequence
numbers past its watermark.  The log is append-only with per-batch
``fsync``; its reader stops at the first malformed line, so a torn tail
costs at most the events never acknowledged to the writer.  Together
these give the invariant the fault-injection suite asserts: after a
crash at any byte boundary, recovery yields a consistent ledger with no
duplicate and no acknowledged-but-lost events.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from ..api.records import RecordStore
from .events import Event

__all__ = [
    "EventLog",
    "SNAPSHOT_KEY",
    "attach_store",
    "latest_snapshot_digest",
    "load_snapshot",
    "open_store",
    "save_snapshot",
]

#: The record-store "experiment key" every ledger snapshot is filed under.
SNAPSHOT_KEY = "sketchstore"

#: Digits in a snapshot digest (zero-padded watermark, sorts lexically).
DIGEST_WIDTH = 12


class EventLog:
    """Append-only write-ahead log of ``(seq, event)`` lines.

    Each line is one JSON object ``{"seq": n, ...event fields}``.
    Appends are flushed and fsynced per batch, so an acknowledged batch
    survives a crash; the reader tolerates a torn final line by stopping
    at the first malformed line (the same convention as
    :func:`repro.api.records.read_run`).
    """

    def __init__(self, path: Path) -> None:
        self._path = Path(path)
        self._handle = None

    @property
    def path(self) -> Path:
        """The log file (created on first append)."""
        return self._path

    def append_batch(self, entries: Iterable[Tuple[int, Event]]) -> None:
        """Append ``(seq, event)`` lines, then flush and fsync once."""
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "a", encoding="utf-8")
        wrote = False
        for seq, event in entries:
            payload = {"seq": int(seq), **event.to_dict()}
            self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
            wrote = True
        if wrote:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def replay(self, after_seq: int = 0) -> Iterator[Tuple[int, Event]]:
        """Yield logged ``(seq, event)`` pairs with ``seq > after_seq``.

        Parsing stops silently at the first malformed line — a torn tail
        from a crash mid-append — so everything yielded was durably
        acknowledged.
        """
        try:
            text = self._path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                seq = int(payload["seq"])
                event = Event.from_dict(payload)
            except (ValueError, KeyError, TypeError):
                break
            if seq > after_seq:
                yield seq, event

    def compact(self, through_seq: int) -> None:
        """Drop log lines with ``seq <= through_seq`` (already snapshotted).

        The log is rewritten to a temporary file and atomically renamed,
        so a crash mid-compaction leaves either the old or the new log —
        never a mixture.
        """
        self.close()
        survivors = [
            (seq, event) for seq, event in self.replay(after_seq=through_seq)
        ]
        temp = self._path.with_suffix(".jsonl.compact")
        with open(temp, "w", encoding="utf-8") as handle:
            for seq, event in survivors:
                payload = {"seq": int(seq), **event.to_dict()}
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self._path)

    def close(self) -> None:
        """Close the append handle (reopened automatically on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Snapshots (RecordStore reuse)
# ----------------------------------------------------------------------
def _snapshot_store(root: Path) -> RecordStore:
    return RecordStore(root / "snapshots")


def save_snapshot(store) -> Path:
    """Persist a store's ledger as one atomically finalized snapshot run.

    One shard per key-group (sealed as it is appended), digest = the
    zero-padded event watermark, and a ``final`` line carrying the
    watermark again — written through
    :meth:`~repro.api.records.RecordStore.begin` /
    :meth:`~repro.api.records.RecordWriter.finalize`, so the ``.jsonl``
    file appears atomically or not at all.  After finalizing, the
    write-ahead log is compacted up to the watermark.
    """
    records = _snapshot_store(store.root)
    watermark = store.events_ingested
    digest = f"{watermark:0{DIGEST_WIDTH}d}"
    groups = store.groups
    manifest = {
        "key": SNAPSHOT_KEY,
        "digest": digest,
        "config": store.config.to_dict(),
        "groups": groups,
        "group_events": {
            group: store.group_state(group).events for group in groups
        },
        "watermark": watermark,
        "shards": [[i, i + 1] for i in range(len(groups))],
    }
    writer = records.begin(SNAPSHOT_KEY, digest, manifest)
    try:
        for index, group in enumerate(groups):
            state = store.group_state(group)
            rows = [
                {
                    "group": group,
                    "item": key,
                    "total": state.totals[key],
                    "first_seen": state.first_seen[key],
                    "last_seen": state.last_seen[key],
                }
                for key in sorted(state.totals)
            ]
            writer.append_shard(index, rows)
        path = records.finalize(writer, {"watermark": watermark})
    except BaseException:
        writer.abandon()
        raise
    if store._log is not None:
        store._log.compact(watermark)
    return path


def latest_snapshot_digest(root: Path) -> Optional[str]:
    """The digest of the newest finalized snapshot under ``root``, if any.

    Digests are zero-padded watermarks, so the lexically largest one is
    the most recent; ``.partial`` files (interrupted snapshots) are never
    considered.
    """
    records = _snapshot_store(root)
    digests = records.finalized_digests(SNAPSHOT_KEY)
    return digests[-1] if digests else None


def load_snapshot(
    root: Path, digest: str
) -> Optional[Tuple[Dict[str, Any], int]]:
    """Load one finalized snapshot's ledger payload.

    Returns
    -------
    (groups, watermark) or None
        ``groups`` maps group name to ``{"totals": {...},
        "first_seen": {...}, "last_seen": {...}, "events": n}``;
        ``None`` when the snapshot is missing or unreadable.
    """
    records = _snapshot_store(root)
    run = records.load(SNAPSHOT_KEY, digest)
    if run is None or not run.is_complete:
        return None
    manifest = run.manifest
    group_events = manifest.get("group_events", {})
    groups: Dict[str, Any] = {
        group: {
            "totals": {},
            "first_seen": {},
            "last_seen": {},
            "events": int(group_events.get(group, 0)),
        }
        for group in manifest.get("groups", [])
    }
    for row in run.raw_records():
        bucket = groups.setdefault(
            str(row["group"]),
            {"totals": {}, "first_seen": {}, "last_seen": {}, "events": 0},
        )
        item = str(row["item"])
        bucket["totals"][item] = float(row["total"])
        bucket["first_seen"][item] = float(row["first_seen"])
        # Snapshots predating retention lack last_seen; falling back to
        # first_seen keeps them loadable (recency is then conservative).
        bucket["last_seen"][item] = float(
            row.get("last_seen", row["first_seen"])
        )
    return groups, int(manifest.get("watermark", int(digest)))


# ----------------------------------------------------------------------
# Opening / attaching directory-backed stores
# ----------------------------------------------------------------------
def _write_config(root: Path, config) -> None:
    root.mkdir(parents=True, exist_ok=True)
    temp = root / "config.json.tmp"
    temp.write_text(json.dumps(config.to_dict(), sort_keys=True, indent=2))
    os.replace(temp, root / "config.json")


def open_store(cls: Type, root: Path, config) -> "Any":
    """Open (or create) a directory-backed store and recover its state.

    When ``root/config.json`` exists its config wins (an explicitly
    passed conflicting config raises); otherwise the passed (or default)
    config is written.  Recovery = latest finalized snapshot + replay of
    write-ahead-log events past its watermark.
    """
    from .store import StoreConfig

    config_path = root / "config.json"
    if config_path.exists():
        stored = StoreConfig.from_dict(json.loads(config_path.read_text()))
        if config is not None and config != stored:
            raise ValueError(
                f"store at {root} was created with {stored}, which "
                f"conflicts with the requested {config}"
            )
        config = stored
    else:
        config = config if config is not None else StoreConfig()
        _write_config(root, config)
    store = cls(config)
    store._root = root
    store._log = EventLog(root / "events.jsonl")
    watermark = 0
    digest = latest_snapshot_digest(root)
    if digest is not None:
        loaded = load_snapshot(root, digest)
        if loaded is not None:
            groups, watermark = loaded
            for group, payload in groups.items():
                state = store.group_state(group)
                state.totals.update(payload["totals"])
                state.first_seen.update(payload["first_seen"])
                state.last_seen.update(payload["last_seen"])
                state.events = payload["events"]
                state.invalidate()
            store._events = watermark
    for seq, event in store._log.replay(after_seq=watermark):
        store._apply(event)
        # Sequence numbers are authoritative: a compacted log may start
        # past the watermark, so the counter follows the log, not +1.
        store._events = seq
    return store


def attach_store(store, root: Path) -> None:
    """Attach an in-memory store to a fresh directory and snapshot it.

    The directory must not already contain a store (``config.json``
    present); the in-memory ledger becomes the first snapshot, so the
    new directory recovers to exactly the current state.
    """
    if (root / "config.json").exists():
        raise ValueError(
            f"{root} already holds a sketch store; open it instead"
        )
    _write_config(root, store.config)
    store._root = root
    store._log = EventLog(root / "events.jsonl")
    save_snapshot(store)
