"""The asyncio serving front-end: a JSON-lines TCP query/ingest server.

One :class:`SketchServer` owns one :class:`~repro.serving.store.SketchStore`
and speaks a line protocol: every request is one JSON object terminated
by a newline, every response one JSON object echoing the request's
``id``.  Requests on a connection are *pipelined* — each is served by
its own task, so a client may keep many in flight and responses may
return out of order (the ``id`` is the correlation handle).

Concurrent ``query`` requests — across requests of one connection and
across connections — funnel through a
:class:`~repro.serving.batcher.QueryBatcher`, so a burst of clients
costs a handful of engine dispatches instead of one per request, with
answers bit-identical to sequential single-caller queries (see the
batcher's module docstring for why).  Every query response carries the
store's ``watermark`` (events ingested when the window executed), which
pins the answer to an exact feed prefix.

Operations::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "query", "kind": "sum", "groups": ["a"], "backend": null}
    {"id": 3, "op": "query", "kind": "distinct", "until": 250.0}
    {"id": 4, "op": "query", "kind": "similarity", "groups": ["a", "b"]}
    {"id": 5, "op": "ingest", "events": [{...}], "snapshot": false}
    {"id": 6, "op": "evict", "ttl": 3600.0, "max_keys": 512, "now": ...}
    {"id": 7, "op": "info"}
    {"id": 8, "op": "shutdown"}

Responses are ``{"id": ..., "ok": true, ...}`` or ``{"id": ..., "ok":
false, "error": "..."}``; per-request failures never tear down the
connection.  Ingestion is serialized by the event loop (the store
mutates only between awaits), and an optional background
:class:`~repro.serving.retention.RetentionPolicy` keeps the ledger
bounded while serving.

:class:`ServingClient` is the matching asyncio client — used by the
load-generating CLI subcommand, the benchmarks, and the stress tests.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from .batcher import QueryBatcher, QueryRequest
from .events import Event
from .retention import RetentionPolicy, apply_retention

__all__ = ["ServingClient", "ServingError", "SketchServer"]


class ServingError(RuntimeError):
    """A server-side request failure, re-raised by :class:`ServingClient`."""


class SketchServer:
    """Serve one sketch store over a JSON-lines TCP protocol.

    Parameters
    ----------
    store:
        The store to serve (in-memory or directory-backed).
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    max_batch, max_delay:
        Coalescing window knobs, passed to
        :class:`~repro.serving.batcher.QueryBatcher`.
    retention:
        Optional default :class:`~repro.serving.retention.RetentionPolicy`
        — the policy ``evict`` requests fall back to, and the one the
        background sweep applies.
    retention_interval:
        Seconds between background retention sweeps (requires
        ``retention``); ``None`` disables the sweep — eviction then only
        happens on explicit ``evict`` requests.
    clock:
        Time source for background sweeps (overridable in tests).
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = 64,
        max_delay: float = 0.0,
        retention: Optional[RetentionPolicy] = None,
        retention_interval: Optional[float] = None,
        clock=time.time,
    ) -> None:
        if retention is not None and not retention.bounded:
            raise ValueError("the server's retention policy must be bounded")
        if retention_interval is not None:
            if retention is None:
                raise ValueError(
                    "retention_interval requires a retention policy"
                )
            if retention_interval <= 0:
                raise ValueError("retention_interval must be positive")
        self._store = store
        self._host = host
        self._port = port
        self._batcher = QueryBatcher(
            store, max_batch=max_batch, max_delay=max_delay
        )
        self._retention = retention
        self._retention_interval = retention_interval
        self._clock = clock
        self._server: Optional[asyncio.AbstractServer] = None
        self._retention_task: Optional[asyncio.Task] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._closed = False

    @property
    def store(self):
        """The served store."""
        return self._store

    @property
    def stats(self):
        """The coalescing counters of the underlying batcher."""
        return self._batcher.stats

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        if self._retention is not None and self._retention_interval:
            self._retention_task = asyncio.create_task(
                self._retention_loop()
            )
        return self.address

    async def serve_forever(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._stop_event is None:
            raise RuntimeError("server is not started")
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, flush pending queries, close connections."""
        if self._closed:
            return
        self._closed = True
        if self._stop_event is not None:
            self._stop_event.set()
        if self._retention_task is not None:
            self._retention_task.cancel()
            try:
                await self._retention_task
            except asyncio.CancelledError:
                pass
        self._batcher.flush()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()

    async def __aenter__(self) -> "SketchServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _retention_loop(self) -> None:
        while True:
            await asyncio.sleep(self._retention_interval)
            apply_retention(self._store, self._retention, now=self._clock())

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        tasks: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._serve_line(line, writer))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # Loop teardown mid-read (shutdown with the peer still
            # connected) — close out quietly; cleanup happens below.
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(self, line: bytes, writer) -> None:
        request_id = None
        op = None
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
            request_id = payload.get("id")
            op = payload.get("op")
            response = await self._dispatch(payload)
        except (ValueError, KeyError, TypeError, OSError) as exc:
            response = {"ok": False, "error": f"{exc}"}
        response["id"] = request_id
        writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            return
        if op == "shutdown" and response.get("ok"):
            self._stop_event.set()

    async def _dispatch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "query":
            request = QueryRequest.from_payload(payload)
            result, watermark = await self._batcher.submit(request)
            return {"ok": True, "result": result, "watermark": watermark}
        if op == "ingest":
            events = [
                Event.from_dict(entry) for entry in payload.get("events", [])
            ]
            count = self._store.ingest(events)
            if payload.get("snapshot") and self._store.root is not None:
                self._store.snapshot()
            return {
                "ok": True,
                "ingested": count,
                "watermark": self._store.events_ingested,
            }
        if op == "evict":
            if payload.get("ttl") is None and payload.get("max_keys") is None:
                policy = self._retention
            else:
                policy = RetentionPolicy.from_dict(payload)
            if policy is None or not policy.bounded:
                raise ValueError(
                    "evict needs ttl and/or max_keys (or a server-side "
                    "retention policy)"
                )
            now = payload.get("now")
            report = apply_retention(
                self._store,
                policy,
                now=None if now is None else float(now),
                snapshot=bool(payload.get("snapshot", True)),
            )
            return {
                "ok": True,
                "evicted": report,
                "watermark": self._store.events_ingested,
            }
        if op == "info":
            return {"ok": True, "result": self.describe()}
        if op == "shutdown":
            return {"ok": True, "result": "bye"}
        raise ValueError(f"unknown op {op!r}")

    def describe(self) -> Dict[str, Any]:
        """The ``info`` payload: store summary plus coalescing counters."""
        store = self._store
        return {
            "groups": store.groups,
            "events_ingested": store.events_ingested,
            "keys": {
                group: len(store.group_state(group).totals)
                for group in store.groups
            },
            "config": store.config.to_dict(),
            "root": None if store.root is None else str(store.root),
            "retention": (
                None if self._retention is None else self._retention.to_dict()
            ),
            "coalescing": self._batcher.stats.to_dict(),
        }


class ServingClient:
    """Asyncio client for :class:`SketchServer`'s JSON-lines protocol.

    Supports pipelining: every request gets a fresh ``id`` and a future;
    a background reader task matches responses back by ``id``, so many
    requests may be awaited concurrently over one connection.  Methods
    return the full response payload (so callers can read the
    ``watermark``) and raise :class:`ServingError` on ``ok: false``.
    """

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[str, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServingClient":
        """Open a connection to a running server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = json.loads(line)
                future = self._pending.pop(str(payload.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServingError("server closed the connection")
                    )
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one operation and await its response payload."""
        self._next_id += 1
        request_id = str(self._next_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        line = json.dumps({"id": request_id, "op": op, **fields}) + "\n"
        self._writer.write(line.encode())
        await self._writer.drain()
        response = await future
        if not response.get("ok"):
            raise ServingError(response.get("error", "request failed"))
        return response

    async def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check."""
        return await self.request("ping")

    async def query(
        self,
        kind: str,
        groups: Optional[Sequence[str]] = None,
        keys: Optional[Sequence[str]] = None,
        until: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Issue one serving query; the response carries ``result`` and
        ``watermark``."""
        fields: Dict[str, Any] = {"kind": kind}
        if groups is not None:
            fields["groups"] = list(groups)
        if keys is not None:
            fields["keys"] = list(keys)
        if until is not None:
            fields["until"] = until
        if backend is not None:
            fields["backend"] = backend
        return await self.request("query", **fields)

    async def ingest(
        self, events: Iterable[Event], snapshot: bool = False
    ) -> Dict[str, Any]:
        """Ship a batch of events; the response acknowledges the count."""
        return await self.request(
            "ingest",
            events=[event.to_dict() for event in events],
            snapshot=snapshot,
        )

    async def evict(
        self,
        ttl: Optional[float] = None,
        max_keys: Optional[int] = None,
        now: Optional[float] = None,
        snapshot: bool = True,
    ) -> Dict[str, Any]:
        """Run one eviction cycle (explicit knobs or the server default)."""
        fields: Dict[str, Any] = {"snapshot": snapshot}
        if ttl is not None:
            fields["ttl"] = ttl
        if max_keys is not None:
            fields["max_keys"] = max_keys
        if now is not None:
            fields["now"] = now
        return await self.request("evict", **fields)

    async def info(self) -> Dict[str, Any]:
        """The server's ``info`` payload."""
        return (await self.request("info"))["result"]

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (after acknowledging)."""
        return await self.request("shutdown")

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
