"""The asyncio serving front-end: a JSON-lines TCP query/ingest server.

One :class:`SketchServer` owns one :class:`~repro.serving.store.SketchStore`
and speaks a line protocol: every request is one JSON object terminated
by a newline, every response one JSON object echoing the request's
``id``.  Requests on a connection are *pipelined* — each is served by
its own task, so a client may keep many in flight and responses may
return out of order (the ``id`` is the correlation handle).

The framing, per-request error isolation, and request metrics live in
:class:`JSONLinesServer`, which :class:`SketchServer` and the shard
router (:class:`~repro.serving.router.ShardRouter`) both extend — any
front-end speaking the protocol inherits the same guarantees: malformed
lines and unknown operations are answered with per-request errors on
the offending connection, oversized lines are answered once and the
connection dropped, and no fault on one connection wedges another.

Concurrent ``query`` requests — across requests of one connection and
across connections — funnel through a
:class:`~repro.serving.batcher.QueryBatcher`, so a burst of clients
costs a handful of engine dispatches instead of one per request, with
answers bit-identical to sequential single-caller queries (see the
batcher's module docstring for why).  Every query response carries the
store's ``watermark`` (events ingested when the window executed), which
pins the answer to an exact feed prefix.

Operations::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "query", "kind": "sum", "groups": ["a"], "backend": null}
    {"id": 3, "op": "query", "kind": "distinct", "until": 250.0}
    {"id": 4, "op": "query", "kind": "similarity", "groups": ["a", "b"]}
    {"id": 5, "op": "ingest", "events": [{...}], "snapshot": false}
    {"id": 6, "op": "evict", "ttl": 3600.0, "max_keys": 512, "now": ...}
    {"id": 7, "op": "info"}
    {"id": 8, "op": "metrics"}
    {"id": 9, "op": "repl_snapshot"}
    {"id": 10, "op": "repl_subscribe", "after_offset": 0}
    {"id": 11, "op": "shard_view", "groups": null, "kinds": ["pps"]}
    {"id": 12, "op": "promote"}
    {"id": 13, "op": "shutdown"}
    {"op": "repl_ack", "offset": 7}

Responses are ``{"id": ..., "ok": true, ...}`` or ``{"id": ..., "ok":
false, "error": "..."}``; per-request failures never tear down the
connection.  Ingestion is serialized by the event loop (the store
mutates only between awaits), and an optional background
:class:`~repro.serving.retention.RetentionPolicy` keeps the ledger
bounded while serving.

``shard_view`` serves the store's serialized sketch views
(:func:`~repro.serving.store.sketch_view_payload`) tagged with the
replication offset and event watermark — the scatter-gather substrate
of the shard router, with an ``unchanged`` short-circuit so routers can
cache views against the ``(offset, watermark)`` tag.  ``promote``
rewires a read-only follower front-end into primary mode through its
``promoter`` hook (see :mod:`repro.serving.promotion`); on a server
that is already writable it is an acknowledged no-op.

Three subsystems thread through the server (all optional-by-default
except metrics, which is always on and nearly free):

* **Observability** — a :class:`~repro.serving.metrics.MetricsRegistry`
  counts requests/errors per operation and times them in fixed-bucket
  histograms; ingest, coalescing, retention, and replication feed the
  same registry.  The ``metrics`` op returns its snapshot; mount a
  :class:`~repro.serving.metrics.MetricsHTTPShim` on the registry for a
  Prometheus ``/metrics`` scrape endpoint.
* **Admission control** — with ``max_pending_events`` set, ingest
  batches flow through a bounded queue drained by one pump task; a
  batch that would overflow the bound is *shed*: answered immediately
  with ``{"ok": false, "shed": true, "retry_after": ...}`` and never
  applied, so overload degrades deterministically instead of growing
  memory (see :mod:`repro.serving.admission`).
* **Replication** — every applied mutation (acknowledged ingest batch,
  non-empty retention report) is sealed into the
  :class:`~repro.serving.replication.ReplicationHub`; ``repl_subscribe``
  switches a connection to push mode and a per-subscriber pump ships
  segments, ``repl_snapshot`` bootstraps cold followers (see
  :mod:`repro.serving.replication`).  ``read_only=True`` makes the
  server a *follower* front-end: it serves queries but rejects client
  ``ingest``/``evict``, so the replication stream is the only writer.
* **Durable acknowledgement** — followers push ``repl_ack`` frames (no
  ``id``, no reply) carrying their applied offset; with ``sync_ack=N``
  the primary holds each ingest reply until ``N`` subscribers have
  acked the batch's covering segment offset, then answers with
  ``"durable": true``.  The wait is bounded by ``ack_timeout``: when
  the quorum does not form in time the reply *degrades* to an explicit
  ``"durable": false`` — the batch is applied and WAL-logged locally,
  but the client knows it is not yet replicated — instead of wedging
  the producer.  The ``info`` payload counts both outcomes, and the
  ``serving_ack_wait_seconds`` / ``serving_degraded_acks_total``
  series time and count the waits.

:class:`ServingClient` is the matching asyncio client — used by the
load-generating CLI subcommand, the benchmarks, the shard router, and
the stress tests.  It reconnects with exponential backoff when the
connection drops mid-request (retrying *read-only* operations only — an
ingest is never silently re-sent), raises :class:`ProtocolError` with
the offending line when the server (or an impostor) answers with
something that is not a JSON object, and treats a router's
``shard_unavailable`` response like a shed: idempotent operations are
retried with backoff before :class:`ShardUnavailable` surfaces.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Awaitable, Callable, Dict, Iterable, Optional, Sequence, Tuple

from .admission import AdmissionController
from .batcher import QueryBatcher, QueryRequest
from .events import Event
from .metrics import MetricsRegistry
from .replication import (
    AckTracker,
    ReplicationError,
    ReplicationHub,
    snapshot_payload,
)
from .resilience import RetryPolicy
from .retention import RetentionPolicy, apply_retention
from .store import sketch_view_payload

__all__ = [
    "ConnectionLost",
    "JSONLinesServer",
    "Overloaded",
    "ProtocolError",
    "ServingClient",
    "ServingError",
    "ShardUnavailable",
    "SketchServer",
]

#: Default cap on one request line, bytes.  Anything longer is answered
#: with an error and the connection is closed — an unframed blob cannot
#: be resynchronised.
DEFAULT_LINE_LIMIT = 2 ** 20


class ServingError(RuntimeError):
    """A server-side request failure, re-raised by :class:`ServingClient`."""


class ConnectionLost(ServingError):
    """The connection dropped before a response arrived.

    Raised by :class:`ServingClient` when the transport dies with
    requests in flight.  Read-only operations are retried transparently
    (reconnect + exponential backoff); mutating operations surface this
    so the caller decides whether re-sending is safe.
    """


class ProtocolError(ServingError):
    """The peer sent bytes that are not the JSON-lines protocol."""


class Overloaded(ServingError):
    """The server shed an ingest batch under admission control.

    Carries the server's ``retry_after`` hint (seconds) so a
    well-behaved producer can back off precisely.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ShardUnavailable(ServingError):
    """A routed request could not reach its shard.

    The shard router answers ``{"ok": false, "shard_unavailable": true,
    "retry_after": ...}`` when a shard's primary *and* every fallback
    endpoint are down.  :class:`ServingClient` treats this like
    :class:`Overloaded` for idempotent operations — sleep for the hint
    and retry, up to ``max_retries`` — and surfaces it immediately for
    mutating ones (a routed ingest may have partially applied on the
    healthy shards, so blind re-sends are the caller's decision).
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class JSONLinesServer:
    """The protocol shell every serving front-end shares.

    Owns the TCP listener, the per-connection read loop, per-request
    task fan-out, request/error/latency metrics, and the shutdown
    handshake.  Subclasses implement :meth:`_dispatch` (one request
    payload in, one response payload out) and may hook
    :meth:`_post_start` / :meth:`_pre_close` for background tasks and
    :meth:`_cleanup_connection` for per-connection state.

    The error contract — what the protocol-fuzz suite pins for every
    subclass — lives here: a malformed or unknown-op line is answered
    with ``ok: false`` on its own connection and nothing else; a line
    past ``line_limit`` is answered once and the connection dropped (an
    unframed stream cannot be resynchronised); faults on one connection
    never starve another.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics: Optional[MetricsRegistry] = None,
        line_limit: int = DEFAULT_LINE_LIMIT,
    ) -> None:
        if line_limit <= 0:
            raise ValueError("line_limit must be positive")
        self._host = host
        self._port = port
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._line_limit = int(line_limit)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._closed = False

    @property
    def metrics(self) -> MetricsRegistry:
        """The server's metrics registry (shared with the HTTP shim)."""
        return self._metrics

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            self._host,
            self._port,
            limit=self._line_limit,
        )
        await self._post_start()
        return self.address

    async def _post_start(self) -> None:
        """Subclass hook: start background tasks after binding."""

    async def serve_forever(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._stop_event is None:
            raise RuntimeError("server is not started")
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, run subclass teardown, close connections."""
        if self._closed:
            return
        self._closed = True
        if self._stop_event is not None:
            self._stop_event.set()
        await self._pre_close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()

    async def _pre_close(self) -> None:
        """Subclass hook: cancel background tasks, flush pending work."""

    async def __aenter__(self) -> "JSONLinesServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def _cleanup_connection(self, writer) -> None:
        """Subclass hook: drop per-connection state when the peer goes."""

    async def _on_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The peer sent a line past the limit; answer once
                    # and drop the connection — an unframed stream
                    # cannot be resynchronised.
                    self._metrics.counter(
                        "serving_errors_total",
                        help="requests answered with ok=false",
                        op="oversized",
                    ).inc()
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "id": None,
                                    "ok": False,
                                    "error": (
                                        "request line exceeds "
                                        f"{self._line_limit} bytes"
                                    ),
                                },
                                sort_keys=True,
                            )
                            + "\n"
                        ).encode()
                    )
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._serve_line(line, writer))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # Loop teardown mid-read (shutdown with the peer still
            # connected) — close out quietly; cleanup happens below.
            pass
        finally:
            self._cleanup_connection(writer)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_line(self, line: bytes, writer) -> None:
        request_id = None
        op = None
        start = time.perf_counter()
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
            request_id = payload.get("id")
            op = payload.get("op")
            response = await self._dispatch(payload, writer)
        except (
            ValueError,
            KeyError,
            TypeError,
            OSError,
            ReplicationError,
            ServingError,
        ) as exc:
            response = {"ok": False, "error": f"{exc}"}
        label = op if isinstance(op, str) and op else "invalid"
        self._metrics.counter(
            "serving_requests_total",
            help="requests served, by operation",
            op=label,
        ).inc()
        if not response.get("ok"):
            self._metrics.counter(
                "serving_errors_total",
                help="requests answered with ok=false",
                op=label,
            ).inc()
        self._metrics.histogram(
            "serving_request_seconds",
            help="request wall seconds, by operation",
            op=label,
        ).observe(time.perf_counter() - start)
        if response.pop("_noreply", False):
            # A fire-and-forget push frame (repl_ack): accounted above,
            # but answering it would interleave an unsolicited line
            # into the peer's stream.
            return
        response["id"] = request_id
        writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            return
        if op == "shutdown" and response.get("ok"):
            self._stop_event.set()

    async def _dispatch(
        self, payload: Dict[str, Any], writer
    ) -> Dict[str, Any]:
        """Serve one request payload; subclasses must implement this."""
        raise NotImplementedError


class SketchServer(JSONLinesServer):
    """Serve one sketch store over a JSON-lines TCP protocol.

    Parameters
    ----------
    store:
        The store to serve (in-memory or directory-backed).
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    max_batch, max_delay:
        Coalescing window knobs, passed to
        :class:`~repro.serving.batcher.QueryBatcher`.
    retention:
        Optional default :class:`~repro.serving.retention.RetentionPolicy`
        — the policy ``evict`` requests fall back to, and the one the
        background sweep applies.
    retention_interval:
        Seconds between background retention sweeps (requires
        ``retention``); ``None`` disables the sweep — eviction then only
        happens on explicit ``evict`` requests.
    clock:
        Time source for background sweeps (overridable in tests).
    metrics:
        The :class:`~repro.serving.metrics.MetricsRegistry` to
        instrument into; a fresh registry by default.
    max_pending_events:
        Ingest admission bound (events queued but not yet applied);
        ``None`` keeps the legacy direct-apply path with no queue.
    repl_buffer:
        Capacity (entries) of the replication segment buffer.
    sync_ack:
        Synchronous-ack quorum: hold each ingest reply until this many
        streaming subscribers have acked the batch's covering segment
        offset, then answer ``durable: true``.  ``None`` (the default)
        keeps asynchronous replication — replies carry no ``durable``
        field.
    ack_timeout:
        Bound (seconds) on each sync-ack quorum wait; when it expires
        the reply degrades to ``durable: false`` instead of wedging.
    read_only:
        Reject client ``ingest``/``evict`` — the follower front-end
        mode, where the replication stream is the only writer.
    promoter:
        Optional async callable behind the ``promote`` operation of a
        read-only server: it must stop the replication follow loop,
        call :meth:`make_writable`, and return the promotion payload
        (see :class:`~repro.serving.promotion.PromotableReplica`).
    line_limit:
        Per-request line cap in bytes.
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = 64,
        max_delay: float = 0.0,
        retention: Optional[RetentionPolicy] = None,
        retention_interval: Optional[float] = None,
        clock=time.time,
        metrics: Optional[MetricsRegistry] = None,
        max_pending_events: Optional[int] = None,
        repl_buffer: int = 1024,
        sync_ack: Optional[int] = None,
        ack_timeout: float = 1.0,
        read_only: bool = False,
        promoter: Optional[Callable[[], Awaitable[Dict[str, Any]]]] = None,
        line_limit: int = DEFAULT_LINE_LIMIT,
    ) -> None:
        if retention is not None and not retention.bounded:
            raise ValueError("the server's retention policy must be bounded")
        if retention_interval is not None:
            if retention is None:
                raise ValueError(
                    "retention_interval requires a retention policy"
                )
            if retention_interval <= 0:
                raise ValueError("retention_interval must be positive")
        if sync_ack is not None and sync_ack < 1:
            raise ValueError("sync_ack must be a positive quorum size")
        if ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        super().__init__(host, port, metrics=metrics, line_limit=line_limit)
        self._store = store
        self._batcher = QueryBatcher(
            store,
            max_batch=max_batch,
            max_delay=max_delay,
            metrics=self._metrics,
        )
        self._retention = retention
        self._retention_interval = retention_interval
        self._clock = clock
        self._admission = (
            None
            if max_pending_events is None
            else AdmissionController(max_pending_events)
        )
        self._hub = ReplicationHub(capacity=repl_buffer)
        self._acks = AckTracker()
        self._sync_ack = None if sync_ack is None else int(sync_ack)
        self._ack_timeout = float(ack_timeout)
        self._durable_acks = 0
        self._degraded_acks = 0
        self._read_only = bool(read_only)
        self._promoter = promoter
        self._retention_task: Optional[asyncio.Task] = None
        self._ingest_queue: Optional[asyncio.Queue] = None
        self._ingest_pump: Optional[asyncio.Task] = None
        self._repl_pumps: Dict[Any, set] = {}

    @property
    def store(self):
        """The served store."""
        return self._store

    @property
    def stats(self):
        """The coalescing counters of the underlying batcher."""
        return self._batcher.stats

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The ingest admission controller (``None`` = unbounded)."""
        return self._admission

    @property
    def replication(self) -> ReplicationHub:
        """The replication segment buffer."""
        return self._hub

    @property
    def acks(self) -> AckTracker:
        """Per-subscriber replication ack marks (sync-ack quorums)."""
        return self._acks

    @property
    def sync_ack(self) -> Optional[int]:
        """The sync-ack quorum size (``None`` = asynchronous mode)."""
        return self._sync_ack

    @property
    def read_only(self) -> bool:
        """Whether client ``ingest``/``evict`` are rejected."""
        return self._read_only

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    async def _post_start(self) -> None:
        """Start retention/admission pumps; seed the hub watermark.

        A server started over a warm (recovered) store has a fresh hub
        whose watermark would otherwise read 0 while the store sits at
        ``events_ingested > 0`` — a fresh follower would then trip the
        watermark cross-check in its subscribe handshake and loop on
        bootstraps.  Adopting the store's watermark up front keeps the
        hub's advertised cut truthful from the first handshake.
        """
        if self._hub.offset == 0:
            self._hub.reseed(self._store.events_ingested)
        if self._retention is not None and self._retention_interval:
            self._retention_task = asyncio.create_task(
                self._retention_loop()
            )
        if self._admission is not None:
            self._ingest_queue = asyncio.Queue()
            self._ingest_pump = asyncio.create_task(self._pump_ingest())

    async def _pre_close(self) -> None:
        """Cancel pumps, fail queued batches, flush the query window."""
        for task in (self._retention_task, self._ingest_pump):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if self._ingest_queue is not None:
            while not self._ingest_queue.empty():
                events, _snapshot, future = self._ingest_queue.get_nowait()
                self._admission.release(len(events))
                if not future.done():
                    future.set_exception(
                        OSError("server stopped before applying the batch")
                    )
        for tasks in list(self._repl_pumps.values()):
            for task in list(tasks):
                task.cancel()
        self._repl_pumps.clear()
        self._batcher.flush()

    def _cleanup_connection(self, writer) -> None:
        for pump in self._repl_pumps.pop(id(writer), ()):
            pump.cancel()
        # A dead subscriber can never ack again; waking the quorum
        # waiters lets them re-evaluate (and time out) promptly.
        self._acks.unregister(id(writer))

    async def _retention_loop(self) -> None:
        while True:
            await asyncio.sleep(self._retention_interval)
            self._run_retention(self._retention, now=self._clock())

    def make_writable(self) -> None:
        """Rewire a read-only follower front-end into primary mode.

        Called by the promotion path after the follow loop has stopped:
        client ``ingest``/``evict`` are accepted from here on, and the
        (necessarily empty — the follow loop wrote to the store, never
        through this server) replication hub adopts the store's shipped
        watermark so new followers subscribe against a truthful cut.
        Offsets restart from 0 under the promoted primary; subscribers
        of the dead one detect the discontinuity through the existing
        watermark cross-check in their subscribe handshake and
        re-bootstrap.
        """
        self._read_only = False
        if self._hub.offset == 0:
            self._hub.reseed(self._store.events_ingested)

    # ------------------------------------------------------------------
    # Mutation paths (shared by direct / queued / background callers)
    # ------------------------------------------------------------------
    def _apply_ingest(self, events, snapshot: bool) -> Tuple[int, int]:
        """Apply one ingest batch, record its segment, instrument it.

        Returns ``(count, offset)`` — the covering segment offset is
        what a sync-ack quorum wait blocks on (captured here, before
        any await can let a later batch advance the hub).
        """
        with self._metrics.histogram(
            "serving_ingest_apply_seconds",
            help="wall seconds applying one ingest batch to the store",
        ).time():
            count = self._store.ingest(events)
        self._metrics.counter(
            "serving_ingest_events_total",
            help="feed events folded into the ledger",
        ).inc(count)
        self._hub.record_events(events, self._store.events_ingested)
        if snapshot and self._store.root is not None:
            self._store.snapshot()
        return count, self._hub.offset

    def _run_retention(
        self,
        policy: RetentionPolicy,
        now: Optional[float],
        snapshot: bool = True,
    ) -> Dict[str, list]:
        """Apply retention, record its segment, instrument it."""
        with self._metrics.histogram(
            "serving_retention_seconds",
            help="wall seconds per retention sweep",
        ).time():
            report = apply_retention(
                self._store, policy, now=now, snapshot=snapshot
            )
        self._metrics.counter(
            "serving_retention_sweeps_total",
            help="retention sweeps executed",
        ).inc()
        evicted = {group: keys for group, keys in report.items() if keys}
        self._metrics.counter(
            "serving_retention_evicted_keys_total",
            help="keys evicted by retention sweeps",
        ).inc(sum(len(keys) for keys in evicted.values()))
        self._hub.record_evict(evicted, self._store.events_ingested)
        return report

    async def _pump_ingest(self) -> None:
        """Drain the admission queue, applying batches one at a time."""
        while True:
            events, snapshot, future = await self._ingest_queue.get()
            start = time.perf_counter()
            try:
                count, offset = self._apply_ingest(events, snapshot)
            except Exception as exc:
                self._admission.release(len(events))
                if not future.done():
                    future.set_exception(exc)
                continue
            self._admission.note_applied(
                len(events), time.perf_counter() - start
            )
            if not future.done():
                future.set_result(
                    (count, self._store.events_ingested, offset)
                )

    async def _await_durability(
        self, count: int, offset: int
    ) -> Optional[bool]:
        """Hold an ingest reply for its sync-ack quorum (bounded).

        Returns ``None`` in asynchronous mode (the reply then carries
        no ``durable`` field), ``True`` when ``sync_ack`` subscribers
        acked the covering ``offset`` within ``ack_timeout``, ``False``
        when the wait degraded — the batch is applied (and WAL-logged
        locally) but not yet confirmed replicated.
        """
        if self._sync_ack is None:
            return None
        if count <= 0:
            return True  # nothing was recorded, nothing can be lost
        with self._metrics.histogram(
            "serving_ack_wait_seconds",
            help="wall seconds ingest replies waited on follower quorums",
        ).time():
            durable = await self._acks.wait_for(
                offset, self._sync_ack, self._ack_timeout
            )
        if durable:
            self._durable_acks += 1
            self._metrics.counter(
                "serving_durable_acks_total",
                help="ingest replies acknowledged durable (quorum met)",
            ).inc()
        else:
            self._degraded_acks += 1
            self._metrics.counter(
                "serving_degraded_acks_total",
                help="ingest replies degraded to durable=false on timeout",
            ).inc()
        return durable

    async def _ingest_op(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        events = [
            Event.from_dict(entry) for entry in payload.get("events", [])
        ]
        snapshot = bool(payload.get("snapshot"))
        if self._admission is None:
            count, offset = self._apply_ingest(events, snapshot)
            response = {
                "ok": True,
                "ingested": count,
                "watermark": self._store.events_ingested,
            }
            durable = await self._await_durability(count, offset)
            if durable is not None:
                response["durable"] = durable
            return response
        if not self._admission.try_admit(len(events)):
            retry_after = self._admission.retry_after()
            self._metrics.counter(
                "serving_ingest_shed_batches_total",
                help="ingest batches shed by admission control",
            ).inc()
            self._metrics.counter(
                "serving_ingest_shed_events_total",
                help="feed events shed by admission control",
            ).inc(len(events))
            return {
                "ok": False,
                "error": (
                    f"overloaded: {self._admission.pending_events} events "
                    f"pending against a bound of "
                    f"{self._admission.max_pending_events}"
                ),
                "shed": True,
                "retry_after": retry_after,
            }
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._ingest_queue.put_nowait((events, snapshot, future))
        count, watermark, offset = await future
        response = {"ok": True, "ingested": count, "watermark": watermark}
        durable = await self._await_durability(count, offset)
        if durable is not None:
            response["durable"] = durable
        return response

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, payload: Dict[str, Any], writer
    ) -> Dict[str, Any]:
        """Serve one request against the store and its subsystems."""
        op = payload.get("op")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "repl_ack":
            # Fire-and-forget upstream push from a subscriber; no reply
            # line (it would interleave into the segment stream).
            self._acks.ack(id(writer), int(payload.get("offset", 0)))
            self._metrics.counter(
                "serving_repl_acks_total",
                help="repl_ack frames received from subscribers",
            ).inc()
            return {"ok": True, "_noreply": True}
        if op == "query":
            request = QueryRequest.from_payload(payload)
            result, watermark = await self._batcher.submit(request)
            return {"ok": True, "result": result, "watermark": watermark}
        if op == "ingest":
            if self._read_only:
                raise ValueError(
                    "server is read-only (replica follower); ingest on "
                    "the primary"
                )
            return await self._ingest_op(payload)
        if op == "evict":
            if self._read_only:
                raise ValueError(
                    "server is read-only (replica follower); evict on "
                    "the primary"
                )
            if payload.get("ttl") is None and payload.get("max_keys") is None:
                policy = self._retention
            else:
                policy = RetentionPolicy.from_dict(payload)
            if policy is None or not policy.bounded:
                raise ValueError(
                    "evict needs ttl and/or max_keys (or a server-side "
                    "retention policy)"
                )
            now = payload.get("now")
            report = self._run_retention(
                policy,
                now=None if now is None else float(now),
                snapshot=bool(payload.get("snapshot", True)),
            )
            return {
                "ok": True,
                "evicted": report,
                "watermark": self._store.events_ingested,
            }
        if op == "info":
            return {"ok": True, "result": self.describe()}
        if op == "metrics":
            return {"ok": True, "result": self._metrics.snapshot()}
        if op == "shard_view":
            return self._shard_view_op(payload)
        if op == "promote":
            if not self._read_only:
                # Already a primary (e.g. promoted earlier, or the
                # original primary came back): acknowledged no-op, so a
                # router's failover scan can adopt it idempotently.
                return {
                    "ok": True,
                    "promoted": False,
                    "watermark": self._store.events_ingested,
                    "offset": self._hub.offset,
                }
            if self._promoter is None:
                raise ValueError(
                    "server is read-only with no promoter; start the "
                    "follower with promotion enabled (--promotable)"
                )
            result = await self._promoter()
            return {"ok": True, "promoted": True, **result}
        if op == "repl_snapshot":
            self._metrics.counter(
                "serving_repl_snapshots_shipped_total",
                help="ledger snapshots shipped to followers",
            ).inc()
            return {
                "ok": True,
                "result": snapshot_payload(self._store, self._hub.offset),
            }
        if op == "repl_subscribe":
            after = int(payload.get("after_offset", 0))
            if self._hub.can_resume_from(after):
                # The pump task cannot run before this response line is
                # queued: _serve_line writes it synchronously after this
                # return, with no intervening await.
                pump = asyncio.create_task(self._pump_segments(writer, after))
                self._repl_pumps.setdefault(id(writer), set()).add(pump)
                self._acks.register(id(writer))
                mode = "stream"
            else:
                mode = "snapshot"
            return {
                "ok": True,
                "mode": mode,
                "offset": self._hub.offset,
                "watermark": self._hub.watermark,
            }
        if op == "shutdown":
            return {"ok": True, "result": "bye"}
        raise ValueError(f"unknown op {op!r}")

    def _shard_view_op(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Serve serialized sketch views tagged with the mutation cut.

        The tag is the ``(replication offset, event watermark)`` pair:
        the offset advances on *every* mutation (ingest and eviction
        both), the watermark only on ingest, so together they identify
        the store's content cut across restarts far more robustly than
        either alone.  When the caller's ``since_offset`` /
        ``since_watermark`` match, the response is a bare ``unchanged``
        acknowledgement — the router's view cache rides on this.
        """
        offset = self._hub.offset
        watermark = self._store.events_ingested
        response: Dict[str, Any] = {
            "ok": True,
            "offset": offset,
            "watermark": watermark,
        }
        since_offset = payload.get("since_offset")
        since_watermark = payload.get("since_watermark")
        if (
            since_offset is not None
            and since_watermark is not None
            and int(since_offset) == offset
            and int(since_watermark) == watermark
        ):
            response["unchanged"] = True
            return response
        kinds = payload.get("kinds")
        response["view"] = sketch_view_payload(
            self._store,
            groups=payload.get("groups"),
            kinds=tuple(kinds) if kinds else ("pps", "ads"),
        )
        return response

    async def _pump_segments(self, writer, after_offset: int) -> None:
        """Push segment entries past ``after_offset`` to one subscriber."""
        shipped = self._metrics.counter(
            "serving_repl_segments_shipped_total",
            help="segment entries pushed to subscribers",
        )
        offset = after_offset
        try:
            while True:
                entries = self._hub.entries_after(offset)
                if entries is None:
                    # The subscriber fell out of the bounded buffer —
                    # tell it to re-bootstrap and drop the stream.
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "op": "repl_segment",
                                    "reset": True,
                                    "oldest_offset": self._hub.oldest_offset,
                                },
                                sort_keys=True,
                            )
                            + "\n"
                        ).encode()
                    )
                    await writer.drain()
                    return
                for entry in entries:
                    writer.write(
                        (
                            json.dumps(
                                {"op": "repl_segment", "entry": entry},
                                sort_keys=True,
                            )
                            + "\n"
                        ).encode()
                    )
                    offset = entry["offset"]
                    shipped.inc()
                await writer.drain()
                await self._hub.wait_beyond(offset)
        except (ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            return

    def describe(self) -> Dict[str, Any]:
        """The ``info`` payload: store summary plus subsystem counters."""
        store = self._store
        return {
            "groups": store.groups,
            "events_ingested": store.events_ingested,
            "keys": {
                group: len(store.group_state(group).totals)
                for group in store.groups
            },
            "config": store.config.to_dict(),
            "root": None if store.root is None else str(store.root),
            "retention": (
                None if self._retention is None else self._retention.to_dict()
            ),
            "coalescing": self._batcher.stats.to_dict(),
            "replication": self._hub.describe(),
            "admission": (
                None if self._admission is None else self._admission.describe()
            ),
            "read_only": self._read_only,
            "promotable": self._promoter is not None,
            "durability": {
                "sync_ack": self._sync_ack,
                "ack_timeout": self._ack_timeout,
                "durable_acks": self._durable_acks,
                "degraded_acks": self._degraded_acks,
                "ack_subscribers": self._acks.subscribers,
            },
        }


class ServingClient:
    """Asyncio client for the JSON-lines serving protocol.

    Speaks to a :class:`SketchServer` or a
    :class:`~repro.serving.router.ShardRouter` interchangeably.
    Supports pipelining: every request gets a fresh ``id`` and a future;
    a background reader task matches responses back by ``id``, so many
    requests may be awaited concurrently over one connection.  Methods
    return the full response payload (so callers can read the
    ``watermark``) and raise :class:`ServingError` on ``ok: false`` —
    :class:`Overloaded` (with the ``retry_after`` hint) when the server
    shed an ingest batch under admission control.

    Robustness: when the connection drops mid-request the pending
    request fails with :class:`ConnectionLost`; *read-only* operations
    (``ping``/``query``/``info``/``metrics``) are then retried
    transparently — reconnect with exponential backoff, up to
    ``max_retries`` attempts — while mutating operations surface the
    error (re-sending an ``ingest`` whose fate is unknown could apply
    it twice).  A router's ``shard_unavailable`` answer follows the
    same split: idempotent operations sleep for the ``retry_after``
    hint and retry (the router may promote a fallback in the meantime),
    mutating ones raise :class:`ShardUnavailable` at once.  A response
    line that is not a JSON object fails every pending request with
    :class:`ProtocolError` naming the offending bytes, and is never
    retried.

    All backoff arithmetic lives in one shared
    :class:`~repro.serving.resilience.RetryPolicy` — pass ``retry`` to
    override the ``max_retries``/``backoff`` shorthand (e.g. to inject
    a virtual clock, or a different ``cap``).  Server ``retry_after``
    hints are honoured *clamped to the policy's cap*: a confused router
    cannot park the client arbitrarily long.
    """

    #: Operations safe to re-send after a connection drop: they do not
    #: mutate the store, so at-least-once delivery cannot corrupt it.
    RETRYABLE_OPS = frozenset({"ping", "query", "info", "metrics"})

    def __init__(
        self,
        reader,
        writer,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        retry: Optional[RetryPolicy] = None,
        limit: int = DEFAULT_LINE_LIMIT,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        if backoff <= 0:
            raise ValueError("backoff must be positive")
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._retry = (
            retry
            if retry is not None
            else RetryPolicy(max_retries=max_retries, base=backoff)
        )
        self._limit = int(limit)
        self._pending: Dict[str, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_retries: int = 2,
        backoff: float = 0.05,
        retry: Optional[RetryPolicy] = None,
        limit: int = DEFAULT_LINE_LIMIT,
    ) -> "ServingClient":
        """Open a connection to a running server.

        Clients built this way remember the address and can reconnect;
        clients built directly from a ``(reader, writer)`` pair cannot.
        ``limit`` caps the response line the client will buffer — it
        defaults to the protocol's line limit rather than asyncio's
        64 KiB stream default, because one ``shard_view`` or ``metrics``
        response line can easily outgrow the latter.
        """
        reader, writer = await asyncio.open_connection(
            host, port, limit=limit
        )
        return cls(
            reader,
            writer,
            host=host,
            port=port,
            max_retries=max_retries,
            backoff=backoff,
            retry=retry,
            limit=limit,
        )

    async def _read_loop(self) -> None:
        error: ServingError = ConnectionLost("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                except ValueError:
                    error = ProtocolError(
                        f"malformed response line: {line[:120]!r}"
                    )
                    break
                if not isinstance(payload, dict):
                    error = ProtocolError(
                        f"response is not a JSON object: {line[:120]!r}"
                    )
                    break
                future = self._pending.pop(str(payload.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ConnectionError, OSError) as exc:
            error = ConnectionLost(f"connection lost: {exc}")
        except ValueError as exc:
            # readline() past the stream limit; the frame cannot be
            # resynchronised, so the connection is done for.
            error = ProtocolError(f"response line exceeds the limit: {exc}")
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def _reconnect(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        reader, writer = await asyncio.open_connection(
            self._host, self._port, limit=self._limit
        )
        self._reader = reader
        self._writer = writer
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _roundtrip(self, op: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        # The writer of a connection the *server* closed often still
        # accepts buffered writes, so the reader task's liveness is the
        # authoritative signal: once it has exited (failing all pending
        # futures), a new future would never be resolved.
        if self._writer.is_closing() or self._reader_task.done():
            raise ConnectionLost("connection is closed")
        self._next_id += 1
        request_id = str(self._next_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        line = json.dumps({"id": request_id, "op": op, **fields}) + "\n"
        try:
            self._writer.write(line.encode())
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise ConnectionLost(f"connection lost while sending: {exc}")
        return await future

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one operation and await its response payload."""
        attempt = 0
        while True:
            try:
                response = await self._roundtrip(op, fields)
            except ConnectionLost:
                if (
                    op not in self.RETRYABLE_OPS
                    or self._host is None
                    or not self._retry.should_retry(attempt + 1)
                ):
                    raise
                while True:
                    attempt += 1
                    await self._retry.pause(attempt)
                    try:
                        await self._reconnect()
                        break
                    except (ConnectionError, OSError):
                        if not self._retry.should_retry(attempt + 1):
                            raise ConnectionLost(
                                f"could not reconnect to "
                                f"{self._host}:{self._port}"
                            )
                continue
            if not response.get("ok"):
                message = response.get("error", "request failed")
                if response.get("shed"):
                    raise Overloaded(
                        message, float(response.get("retry_after", 0.0))
                    )
                if response.get("shard_unavailable"):
                    retry_after = float(response.get("retry_after", 0.0))
                    if op in self.RETRYABLE_OPS and self._retry.should_retry(
                        attempt + 1
                    ):
                        attempt += 1
                        # The hint wins over the computed backoff, but
                        # clamped to the policy's cap.
                        await self._retry.pause(
                            attempt, retry_after=retry_after or None
                        )
                        continue
                    raise ShardUnavailable(message, retry_after)
                raise ServingError(message)
            return response

    async def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check."""
        return await self.request("ping")

    async def query(
        self,
        kind: str,
        groups: Optional[Sequence[str]] = None,
        keys: Optional[Sequence[str]] = None,
        until: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Issue one serving query; the response carries ``result`` and
        ``watermark``."""
        fields: Dict[str, Any] = {"kind": kind}
        if groups is not None:
            fields["groups"] = list(groups)
        if keys is not None:
            fields["keys"] = list(keys)
        if until is not None:
            fields["until"] = until
        if backend is not None:
            fields["backend"] = backend
        return await self.request("query", **fields)

    async def ingest(
        self, events: Iterable[Event], snapshot: bool = False
    ) -> Dict[str, Any]:
        """Ship a batch of events; the response acknowledges the count.

        Raises :class:`Overloaded` (with ``retry_after``) when the
        server sheds the batch under admission control — the batch was
        *not* applied and may be re-sent after backing off.
        """
        return await self.request(
            "ingest",
            events=[event.to_dict() for event in events],
            snapshot=snapshot,
        )

    async def evict(
        self,
        ttl: Optional[float] = None,
        max_keys: Optional[int] = None,
        now: Optional[float] = None,
        snapshot: bool = True,
    ) -> Dict[str, Any]:
        """Run one eviction cycle (explicit knobs or the server default)."""
        fields: Dict[str, Any] = {"snapshot": snapshot}
        if ttl is not None:
            fields["ttl"] = ttl
        if max_keys is not None:
            fields["max_keys"] = max_keys
        if now is not None:
            fields["now"] = now
        return await self.request("evict", **fields)

    async def info(self) -> Dict[str, Any]:
        """The server's ``info`` payload."""
        return (await self.request("info"))["result"]

    async def metrics(self) -> Dict[str, Any]:
        """The server's metrics snapshot (counters + histograms)."""
        return (await self.request("metrics"))["result"]

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (after acknowledging)."""
        return await self.request("shutdown")

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
