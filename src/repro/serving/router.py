"""Key-partitioned shard router: one protocol front-end, many primaries.

:class:`ShardRouter` speaks the same JSON-lines protocol as
:class:`~repro.serving.server.SketchServer` (it extends the same
:class:`~repro.serving.server.JSONLinesServer` shell), but owns no
store.  Behind it sit *shards* — independent primaries, each optionally
trailed by its own follower chain — and the router's job is to make
them answer as one store:

* **Ingest routing** — every batch is split with the same key-routed
  hash the merge suite pins
  (:func:`~repro.serving.events.shard_events`): a ``(group, key)`` pair
  always lands on the same shard, so each key's accumulated weight
  lives in exactly one place.  Sub-batches ship to their shards
  concurrently; the acknowledgement carries the per-shard watermark
  vector and their sum as the routed watermark.
* **Scatter-gather queries** — ``sum``/``distinct``/``similarity`` are
  answered by gathering each shard's *serialized sketch views*
  (``shard_view`` responses, cached against each shard's
  ``(offset, watermark)`` mutation tag), fusing them with
  :func:`~repro.serving.store.merge_sketch_views`, and running the
  fused store through the identical
  :meth:`~repro.serving.store.SketchStore.query` code path.  Because
  coordinated sketches over disjoint key populations merge exactly,
  routed answers are **bit-identical** to an unsharded store at the
  same watermark cut — the property suite pins ``==``, not ``approx``.
  Partial scalar answers are deliberately *not* summed router-side:
  floating-point reduction order would differ from the unsharded
  engine dispatch and break bit-identity.
* **Failover** — each shard slot is an ordered endpoint chain
  (primary first, then followers).  When the current target dies, the
  router re-scans the chain: a writable survivor wins in chain order;
  otherwise the **most-advanced** read-only survivor (highest applied
  watermark) is asked to ``promote`` (see
  :mod:`repro.serving.promotion`).  Picking by watermark matters under
  synchronous-ack replication: followers apply contiguous prefixes of
  one primary's stream, so their histories are totally ordered and the
  max-watermark survivor holds every batch *any* follower acked —
  promoting it can never lose a ``durable: true`` batch even when the
  quorum was smaller than the follower count.  The shard's remaining
  followers detect the promoted primary's offset discontinuity through
  the watermark cross-check already in ``repl_subscribe`` and
  re-bootstrap.  When every endpoint of a shard is down, routed
  requests answer ``{"ok": false, "shard_unavailable": true,
  "retry_after": ...}`` — the typed unavailability
  :class:`~repro.serving.server.ServingClient` retries for idempotent
  operations and surfaces as
  :class:`~repro.serving.server.ShardUnavailable` for mutating ones.
* **Durability propagation** — when shards run in synchronous-ack mode
  their ingest replies carry ``durable``; the routed acknowledgement
  reports the *weakest* shard's verdict (``durable: true`` only when
  every contacted shard confirmed its quorum; a shard that reported
  nothing — asynchronous mode — counts as not confirmed).  A routed
  batch is only as durable as its least-replicated sub-batch.

Watermark semantics: every routed answer carries ``watermarks`` — the
per-shard vector — and ``watermark``, their sum.  Each shard's view is
internally consistent (one mutation cut per shard, tagged by its
replication offset *and* event watermark, so eviction-only mutations
invalidate too); under concurrent ingest the vector is the cut the
answer describes, and a quiesced router answers at the exact global
cut, which is what the parity suites compare against.

The router is deliberately store-less and almost stateless: shard
watermarks and cached views are reconstructed from shard responses, so
a router restart needs no recovery protocol.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import ROUTING_SALT, Event, shard_events
from .metrics import MetricsRegistry
from .resilience import RetryPolicy
from .server import (
    DEFAULT_LINE_LIMIT,
    ConnectionLost,
    JSONLinesServer,
    Overloaded,
    ServingClient,
    ServingError,
    ShardUnavailable,
)
from .store import StoreConfig, merge_sketch_views

__all__ = ["ShardRouter", "ShardSlot"]

#: Sketch kinds each routed query kind gathers from the shards.
_QUERY_VIEW_KINDS = {
    "sum": ("pps",),
    "similarity": ("pps",),
    "distinct": ("ads",),
}

#: Cap on cached view shapes per shard (distinct ``(groups, kinds)``
#: selections); the common serving mix uses a handful.
_VIEW_CACHE_SHAPES = 32


class ShardSlot:
    """One shard's routing state: endpoint chain, live client, watermark.

    ``endpoints[0]`` is the preferred primary; the rest are fallbacks
    (typically the shard's followers) scanned in order on failure.  A
    successful failover rotates the winning endpoint to the front, so
    subsequent reconnects try the promoted primary first.
    """

    def __init__(
        self, index: int, endpoints: Sequence[Tuple[str, int]]
    ) -> None:
        if not endpoints:
            raise ValueError(f"shard {index} has no endpoints")
        self.index = int(index)
        self.endpoints: List[Tuple[str, int]] = [
            (str(host), int(port)) for host, port in endpoints
        ]
        self.client: Optional[ServingClient] = None
        self.watermark = 0
        self.failovers = 0
        #: ``(groups, kinds) -> (offset, watermark, view payload)``.
        self.view_cache: Dict[Tuple, Tuple[int, int, Dict[str, Any]]] = {}
        self.lock = asyncio.Lock()

    def invalidate_views(self) -> None:
        """Drop cached views (after re-targeting to a different server).

        Within one primary the ``(offset, watermark)`` tag identifies
        the mutation cut exactly, but a *promoted* primary restarts
        offsets from 0, so a tag could collide across servers; clearing
        on every re-target keeps the cache sound.
        """
        self.view_cache.clear()

    def describe(self) -> Dict[str, Any]:
        """The slot's entry in the router's ``info`` payload."""
        return {
            "index": self.index,
            "primary": (
                None
                if self.client is None
                else f"{self.endpoints[0][0]}:{self.endpoints[0][1]}"
            ),
            "endpoints": [f"{host}:{port}" for host, port in self.endpoints],
            "watermark": self.watermark,
            "failovers": self.failovers,
        }


class ShardRouter(JSONLinesServer):
    """Route the serving protocol across key-partitioned shard primaries.

    Parameters
    ----------
    shards:
        One endpoint chain per shard: each entry is a sequence of
        ``(host, port)`` pairs, preferred primary first.  The shard
        *count and order* define the key partition — they must match
        across router restarts (and match the
        :func:`~repro.serving.events.shard_events` split used for any
        offline pre-sharding).
    host, port:
        Router bind address; port ``0`` picks a free port.
    metrics:
        Registry for the router's own series (``router_*`` plus the
        shared ``serving_requests_total`` family from the protocol
        shell); a fresh registry by default.
    salt:
        Routing-hash salt; leave at the default so offline
        ``shard_events`` splits agree with the router.
    retry_after:
        The backoff hint (seconds) carried by ``shard_unavailable``
        responses.
    backoff:
        Base reconnect backoff for the router's shard clients.
        Shorthand for the default ``retry`` policy.
    retry:
        A :class:`~repro.serving.resilience.RetryPolicy` governing how
        many times a routed request re-targets and re-sends (its
        ``max_retries``) and the pause between attempts; overrides the
        ``backoff`` shorthand.
    health_interval:
        Seconds between background health sweeps (ping every shard,
        re-target on failure); ``None`` disables the sweep — failures
        are then only detected on routed traffic.
    line_limit:
        Per-request line cap in bytes.
    """

    def __init__(
        self,
        shards: Sequence[Sequence[Tuple[str, int]]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics: Optional[MetricsRegistry] = None,
        salt: str = ROUTING_SALT,
        retry_after: float = 0.25,
        backoff: float = 0.05,
        retry: Optional[RetryPolicy] = None,
        health_interval: Optional[float] = None,
        line_limit: int = DEFAULT_LINE_LIMIT,
    ) -> None:
        if not shards:
            raise ValueError("the router needs at least one shard")
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        if health_interval is not None and health_interval <= 0:
            raise ValueError("health_interval must be positive")
        super().__init__(host, port, metrics=metrics, line_limit=line_limit)
        self._slots = [
            ShardSlot(index, endpoints)
            for index, endpoints in enumerate(shards)
        ]
        self._salt = str(salt)
        self._retry_after = float(retry_after)
        self._backoff = float(backoff)
        self._retry = (
            retry
            if retry is not None
            else RetryPolicy(max_retries=1, base=backoff)
        )
        self._health_interval = health_interval
        self._config: Optional[StoreConfig] = None
        self._health_task: Optional[asyncio.Task] = None

    @property
    def slots(self) -> List[ShardSlot]:
        """The shard slots, in partition order."""
        return self._slots

    @property
    def config(self) -> Optional[StoreConfig]:
        """The shards' shared store config (pinned at first contact)."""
        return self._config

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _post_start(self) -> None:
        """Contact every shard, pin the shared config, start health sweeps."""
        for slot in self._slots:
            await self._retarget(slot)
        if self._health_interval is not None:
            self._health_task = asyncio.create_task(self._health_loop())

    async def _pre_close(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        for slot in self._slots:
            if slot.client is not None:
                await slot.client.close()
                slot.client = None

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._health_interval)
            for slot in self._slots:
                try:
                    await self._shard_request(slot, "ping")
                except ServingError:
                    # Unreachable through every endpoint right now; the
                    # unavailability counter is already bumped, and the
                    # next sweep (or routed request) re-scans the chain.
                    continue

    # ------------------------------------------------------------------
    # Shard targeting
    # ------------------------------------------------------------------
    async def _retarget(self, slot: ShardSlot) -> None:
        """(Re)connect ``slot`` to the best serving endpoint of its chain.

        Probes the whole chain: a *writable* endpoint wins in chain
        order; with none, the **most-advanced** read-only survivor
        (highest applied watermark, chain order breaking ties) is asked
        to ``promote``.  Followers apply contiguous prefixes of one
        primary's stream, so the max-watermark survivor's ledger
        contains every other survivor's — promoting it preserves every
        batch any follower acked, which is what makes a sync-ack quorum
        smaller than the follower count safe across failover.  The
        winner is rotated to the front of the chain.  Raises
        :class:`~repro.serving.server.ShardUnavailable` when no
        endpoint serves.
        """
        if slot.client is not None:
            await slot.client.close()
            slot.client = None
        was_primary = slot.endpoints[0]
        #: ``(-watermark, position, host, port, client)`` promotion
        #: candidates — sortable so the most-advanced survivor leads.
        candidates: List[Tuple[int, int, str, int, ServingClient]] = []
        chosen: Optional[Tuple[int, ServingClient, Dict[str, Any]]] = None
        try:
            for position, (host, port) in enumerate(list(slot.endpoints)):
                client: Optional[ServingClient] = None
                try:
                    client = await ServingClient.connect(
                        host, port, max_retries=0, backoff=self._backoff
                    )
                    info = await client.info()
                except (ConnectionError, OSError, ServingError):
                    if client is not None:
                        await client.close()
                    continue
                if info.get("read_only"):
                    candidates.append(
                        (
                            -int(info.get("events_ingested", 0)),
                            position,
                            host,
                            port,
                            client,
                        )
                    )
                    continue
                chosen = (position, client, info)
                break
            if chosen is None:
                for _, position, host, port, client in sorted(
                    candidates, key=lambda item: item[:2]
                ):
                    try:
                        promoted = await client.request("promote")
                        info = await client.info()
                        if info.get("read_only"):
                            # Promotion did not take (raced a
                            # demotion?) — a read-only target cannot
                            # own the shard.
                            raise ServingError("endpoint stayed read-only")
                    except (ConnectionError, OSError, ServingError):
                        await client.close()
                        continue
                    if promoted.get("promoted"):
                        self._metrics.counter(
                            "router_promotions_total",
                            help="followers promoted to shard primary",
                            shard=str(slot.index),
                        ).inc()
                    chosen = (position, client, info)
                    break
        finally:
            for _, _, _, _, client in candidates:
                if chosen is None or client is not chosen[1]:
                    await client.close()
        if chosen is None:
            raise ShardUnavailable(
                f"shard {slot.index} is unavailable: no endpoint of "
                + ", ".join(
                    f"{host}:{port}" for host, port in slot.endpoints
                )
                + " is serving",
                self._retry_after,
            )
        position, client, info = chosen
        config = StoreConfig.from_dict(info["config"])
        if self._config is None:
            self._config = config
        elif config != self._config:
            await client.close()
            host, port = slot.endpoints[position]
            raise ValueError(
                f"shard {slot.index} endpoint {host}:{port} serves "
                f"config {config}, but the router pinned "
                f"{self._config}; shards must share one config"
            )
        if position:
            slot.endpoints.insert(0, slot.endpoints.pop(position))
        slot.client = client
        slot.watermark = int(info.get("events_ingested", slot.watermark))
        slot.invalidate_views()
        if slot.endpoints[0] != was_primary:
            slot.failovers += 1
            self._metrics.counter(
                "router_failovers_total",
                help="shard slots re-targeted to a different endpoint",
                shard=str(slot.index),
            ).inc()

    async def _shard_request(
        self, slot: ShardSlot, op: str, **fields: Any
    ) -> Dict[str, Any]:
        """One request to a shard, re-targeting between policy retries.

        A connection drop triggers a chain re-scan (which may promote a
        follower), a policy backoff pause, and a re-send — up to the
        retry policy's ``max_retries``.  Note the re-send makes routed
        ``ingest`` *at-least-once* across failover: a primary that died
        after applying but before acknowledging leaves the re-sent
        sub-batch double-applied on its successor — see the promotion
        runbook in the docs for when that window exists.
        """
        attempt = 0
        while True:
            if slot.client is None:
                async with slot.lock:
                    if slot.client is None:
                        await self._retarget(slot)
            client = slot.client
            self._metrics.counter(
                "router_shard_requests_total",
                help="requests routed to shards, by shard and operation",
                shard=str(slot.index),
                op=op,
            ).inc()
            try:
                return await client.request(op, **fields)
            except ConnectionLost:
                async with slot.lock:
                    if slot.client is client and client is not None:
                        await client.close()
                        slot.client = None
                attempt += 1
                if not self._retry.should_retry(attempt):
                    raise ShardUnavailable(
                        f"shard {slot.index} dropped the connection "
                        f"{attempt + 1} times",
                        self._retry_after,
                    )
                await self._retry.pause(attempt)

    # ------------------------------------------------------------------
    # Routed operations
    # ------------------------------------------------------------------
    def _watermark_fields(self) -> Dict[str, Any]:
        vector = [slot.watermark for slot in self._slots]
        return {"watermark": sum(vector), "watermarks": vector}

    async def _ingest_op(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        events = [
            Event.from_dict(entry) for entry in payload.get("events", [])
        ]
        snapshot = bool(payload.get("snapshot"))
        batches = shard_events(events, len(self._slots), salt=self._salt)
        work = [
            (slot, batch)
            for slot, batch in zip(self._slots, batches)
            if batch
        ]

        async def send(slot: ShardSlot, batch: List[Event]):
            return await self._shard_request(
                slot,
                "ingest",
                events=[event.to_dict() for event in batch],
                snapshot=snapshot,
            )

        results = await asyncio.gather(
            *(send(slot, batch) for slot, batch in work),
            return_exceptions=True,
        )
        ingested = 0
        error: Optional[BaseException] = None
        durables: List[Optional[bool]] = []
        for (slot, batch), result in zip(work, results):
            if isinstance(result, BaseException):
                error = error if error is not None else result
                continue
            ingested += int(result["ingested"])
            slot.watermark = int(result["watermark"])
            durables.append(result.get("durable"))
            self._metrics.counter(
                "router_routed_events_total",
                help="feed events routed to shards, by shard",
                shard=str(slot.index),
            ).inc(len(batch))
        if error is not None:
            # Healthy shards above already applied and had their
            # watermarks advanced — routed ingest is per-shard atomic,
            # not transactional across shards.
            raise error
        response = {
            "ok": True,
            "ingested": ingested,
            **self._watermark_fields(),
        }
        if any(flag is not None for flag in durables):
            # The weakest shard's verdict: a routed batch is only as
            # durable as its least-replicated sub-batch, and a shard
            # that reported nothing (asynchronous mode) confirmed
            # nothing.
            response["durable"] = all(bool(flag) for flag in durables)
        return response

    async def _shard_view(
        self,
        slot: ShardSlot,
        groups: Optional[Sequence[str]],
        kinds: Sequence[str],
    ) -> Dict[str, Any]:
        """One shard's view payload, through the per-slot view cache."""
        cache_key = (
            None if groups is None else tuple(groups),
            tuple(kinds),
        )
        fields: Dict[str, Any] = {"kinds": list(kinds)}
        if groups is not None:
            fields["groups"] = list(groups)
        entry = slot.view_cache.get(cache_key)
        if entry is not None:
            fields["since_offset"] = entry[0]
            fields["since_watermark"] = entry[1]
        response = await self._shard_request(slot, "shard_view", **fields)
        slot.watermark = int(response["watermark"])
        if response.get("unchanged") and entry is not None:
            self._metrics.counter(
                "router_view_cache_hits_total",
                help="shard view fetches answered unchanged, by shard",
                shard=str(slot.index),
            ).inc()
            return entry[2]
        view = response["view"]
        if (
            cache_key not in slot.view_cache
            and len(slot.view_cache) >= _VIEW_CACHE_SHAPES
        ):
            slot.view_cache.pop(next(iter(slot.view_cache)))
        slot.view_cache[cache_key] = (
            int(response["offset"]),
            int(response["watermark"]),
            view,
        )
        return view

    async def _query_op(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        kind = payload.get("kind")
        view_kinds = _QUERY_VIEW_KINDS.get(kind)
        if view_kinds is None:
            raise ValueError(
                f"unknown routed query kind {kind!r}; expected one of "
                f"{sorted(_QUERY_VIEW_KINDS)}"
            )
        groups = payload.get("groups")
        if groups is not None and (
            isinstance(groups, str)
            or not all(isinstance(group, str) for group in groups)
        ):
            # A bare string would silently fan out per character.
            raise ValueError("groups must be a list of group names")
        start = time.perf_counter()
        results = await asyncio.gather(
            *(
                self._shard_view(slot, groups, view_kinds)
                for slot in self._slots
            ),
            return_exceptions=True,
        )
        self._metrics.histogram(
            "router_gather_seconds",
            help="scatter-gather wall seconds, by query kind",
            kind=str(kind),
        ).observe(time.perf_counter() - start)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        fused = merge_sketch_views(self._config, results)
        until = payload.get("until")
        result = fused.query(
            kind,
            groups=groups,
            keys=payload.get("keys"),
            until=None if until is None else float(until),
            backend=payload.get("backend"),
        )
        return {"ok": True, "result": result, **self._watermark_fields()}

    async def _evict_op(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        fields = {
            field: payload[field]
            for field in ("ttl", "max_keys", "now", "snapshot")
            if field in payload
        }
        results = await asyncio.gather(
            *(
                self._shard_request(slot, "evict", **fields)
                for slot in self._slots
            ),
            return_exceptions=True,
        )
        evicted: Dict[str, List[str]] = {}
        error: Optional[BaseException] = None
        for slot, result in zip(self._slots, results):
            if isinstance(result, BaseException):
                error = error if error is not None else result
                continue
            slot.watermark = int(result["watermark"])
            for group, keys in result["evicted"].items():
                evicted.setdefault(group, []).extend(keys)
        if error is not None:
            raise error
        return {"ok": True, "evicted": evicted, **self._watermark_fields()}

    async def _info_op(self) -> Dict[str, Any]:
        results = await asyncio.gather(
            *(self._shard_request(slot, "info") for slot in self._slots),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, BaseException):
                raise result
        infos = [result["result"] for result in results]
        groups = sorted({group for info in infos for group in info["groups"]})
        keys = {
            group: sum(info["keys"].get(group, 0) for info in infos)
            for group in groups
        }
        coalescing: Dict[str, float] = {}
        for info in infos:
            for field, value in info["coalescing"].items():
                coalescing[field] = coalescing.get(field, 0) + value
        for slot, info in zip(self._slots, infos):
            slot.watermark = int(info["events_ingested"])
        durability = {
            "sync_ack": [
                info.get("durability", {}).get("sync_ack") for info in infos
            ],
            "durable_acks": sum(
                info.get("durability", {}).get("durable_acks", 0)
                for info in infos
            ),
            "degraded_acks": sum(
                info.get("durability", {}).get("degraded_acks", 0)
                for info in infos
            ),
        }
        return {
            "router": True,
            "config": self._config.to_dict(),
            "groups": groups,
            "events_ingested": sum(
                slot.watermark for slot in self._slots
            ),
            "keys": keys,
            "coalescing": coalescing,
            "durability": durability,
            "read_only": False,
            "root": None,
            "shards": [slot.describe() for slot in self._slots],
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, payload: Dict[str, Any], writer
    ) -> Dict[str, Any]:
        op = payload.get("op")
        try:
            if op == "ping":
                return {"ok": True, "result": "pong"}
            if op == "query":
                return await self._query_op(payload)
            if op == "ingest":
                return await self._ingest_op(payload)
            if op == "evict":
                return await self._evict_op(payload)
            if op == "info":
                return {"ok": True, "result": await self._info_op()}
            if op == "metrics":
                return {"ok": True, "result": self._metrics.snapshot()}
            if op == "shutdown":
                if payload.get("shards"):
                    # Best-effort fan-out; a dead shard cannot block the
                    # router's own shutdown.
                    for slot in self._slots:
                        try:
                            await self._shard_request(slot, "shutdown")
                        except ServingError:
                            continue
                return {"ok": True, "result": "bye"}
            if op in ("repl_snapshot", "repl_subscribe", "shard_view"):
                raise ValueError(
                    f"the router does not serve {op!r}; address the "
                    "shard primary directly"
                )
            raise ValueError(f"unknown op {op!r}")
        except ShardUnavailable as exc:
            self._metrics.counter(
                "router_unavailable_total",
                help="routed requests refused for shard unavailability",
            ).inc()
            return {
                "ok": False,
                "error": f"{exc}",
                "shard_unavailable": True,
                "retry_after": exc.retry_after,
            }
        except Overloaded as exc:
            # A shard shed a routed sub-batch; surface the shed (and its
            # backoff hint) so producers back off exactly as they would
            # against a single overloaded primary.
            return {
                "ok": False,
                "error": f"{exc}",
                "shed": True,
                "retry_after": exc.retry_after,
            }
