"""Multi-process ingestion: fan an event feed across worker processes.

A :class:`ParallelIngestor` parallelizes what
:func:`~repro.serving.events.shard_events` +
:func:`~repro.serving.store.merge_stores` already make *correct*: route
events to shards by key, ingest each shard in its own process, fold the
shard ledgers back together.  Because every ``(group, key)`` pair lives
on exactly one shard — with its events in arrival order — the fold is a
plain copy per key and the merged ledger (hence every derived sketch
and query answer) is **bit-identical** to single-pass ingestion of the
whole feed.  The property suite in
``tests/serving/test_parallel_ingest.py`` pins this against
:func:`~repro.serving.store.merge_stores`' own guarantee.

Workers return *ledger payloads* (totals / first-seen / last-seen per
group), not event streams — the data crossing process boundaries is
proportional to the number of distinct keys, not the feed length.

Durable mode (:meth:`ParallelIngestor.ingest_durable`) gives each
worker a directory-backed store under ``root/worker-NN``; every batch
is write-ahead logged and fsynced before it is acknowledged.  A worker
killed mid-run therefore leaves exactly its acknowledged prefix on
disk, and *re-running the same call resumes*: each worker reopens its
directory, recovers ``events_ingested``, skips that many events of its
shard, and ingests the rest.  :func:`ingest_shard_durable` exposes the
worker entry point directly (its ``limit`` parameter lets the fault
tests fabricate a kill at an exact acknowledgement boundary instead of
racing a real ``SIGKILL``).
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .events import Event, read_events, shard_events
from .store import SketchStore, StoreConfig

__all__ = ["ParallelIngestor", "ingest_shard_durable"]

#: Event tuples crossing the process boundary: (key, weight, ts, group).
_EventRow = Tuple[str, float, float, str]


def _event_rows(events: Iterable[Event]) -> List[_EventRow]:
    return [(e.key, e.weight, e.timestamp, e.group) for e in events]


def _row_events(rows: Iterable[_EventRow]) -> List[Event]:
    return [
        Event(key=key, weight=weight, timestamp=timestamp, group=group)
        for key, weight, timestamp, group in rows
    ]


def _ledger_payload(store: SketchStore) -> Dict[str, Any]:
    """A store's ledger as a picklable payload (what workers return)."""
    return {
        "events": store.events_ingested,
        "groups": {
            group: {
                "totals": dict(store.group_state(group).totals),
                "first_seen": dict(store.group_state(group).first_seen),
                "last_seen": dict(store.group_state(group).last_seen),
                "events": store.group_state(group).events,
            }
            for group in store.groups
        },
    }


def _fold_payload(store: SketchStore, payload: Dict[str, Any]) -> None:
    """Fold one shard's ledger payload into ``store``.

    The accumulation rule is exactly :func:`~repro.serving.store.merge_stores`'
    (totals add, first-seen min, last-seen max, event counts add); with
    key-routed shards every key appears in one payload only, so the
    addition degenerates to a copy and bit-identity to single-pass
    ingestion follows from the merge guarantee.
    """
    for group, bucket in payload["groups"].items():
        state = store.group_state(group)
        for key, total in bucket["totals"].items():
            if key in state.totals:
                state.totals[key] = state.totals[key] + total
            else:
                state.totals[key] = total
        for key, seen in bucket["first_seen"].items():
            prior = state.first_seen.get(key)
            if prior is None or seen < prior:
                state.first_seen[key] = seen
        for key, seen in bucket["last_seen"].items():
            prior = state.last_seen.get(key)
            if prior is None or seen > prior:
                state.last_seen[key] = seen
        state.events += bucket["events"]
        state.invalidate()
    store._events += payload["events"]


def _ingest_shard(config_payload: Dict[str, Any], rows: List[_EventRow]):
    """Worker: fold one in-memory shard, return its ledger payload."""
    store = SketchStore(StoreConfig.from_dict(config_payload))
    store.ingest(_row_events(rows))
    return _ledger_payload(store)


def _ingest_shard_feed(config_payload: Dict[str, Any], path: str):
    """Worker: fold one feed file, return its ledger payload."""
    store = SketchStore(StoreConfig.from_dict(config_payload))
    store.ingest(read_events(path))
    return _ledger_payload(store)


def ingest_shard_durable(
    config_payload: Dict[str, Any],
    rows: List[_EventRow],
    root: Union[str, Path],
    batch_size: int = 1024,
    limit: Optional[int] = None,
) -> Dict[str, Any]:
    """Worker: fold one shard into a directory-backed store, resumably.

    Opens (or creates) the store at ``root``, recovers the acknowledged
    prefix length (``events_ingested``), skips that many events of the
    shard, and ingests the remainder in write-ahead-logged, fsynced
    batches of ``batch_size``.  Re-running after a crash therefore
    continues from the last durable acknowledgement — never duplicating,
    never dropping an acknowledged event.

    Parameters
    ----------
    config_payload:
        ``StoreConfig.to_dict()`` of the shared store config.
    rows:
        The worker's full shard as event tuples (the same shard every
        run — sharding is deterministic).
    root:
        The worker's store directory.
    batch_size:
        Events per WAL-acknowledged ingest batch (positive).
    limit:
        Fault-injection hook: stop after acknowledging this many *new*
        events this run — the state a ``SIGKILL`` right after the last
        fsync would leave, made deterministic.

    Returns
    -------
    dict
        The worker store's ledger payload (see worker return contract),
        plus ``"acknowledged"``: its total durable event count.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    store = SketchStore.open(Path(root), StoreConfig.from_dict(config_payload))
    try:
        already = store.events_ingested
        pending = _row_events(rows[already:])
        if limit is not None:
            pending = pending[: max(0, int(limit))]
        for start in range(0, len(pending), batch_size):
            store.ingest(pending[start : start + batch_size])
        payload = _ledger_payload(store)
        payload["acknowledged"] = store.events_ingested
        return payload
    finally:
        store.close()


class ParallelIngestor:
    """Ingest an event feed with several worker processes, bit-identically.

    Parameters
    ----------
    config:
        The shared :class:`~repro.serving.store.StoreConfig` (defaults
        to the default config).
    num_workers:
        Worker process count; ``1`` skips the process pool entirely
        (the honest single-pass baseline the benchmarks compare
        against).
    batch_size:
        Durable mode's events-per-acknowledged-batch.
    mp_context:
        Optional :mod:`multiprocessing` context for the pool.
    """

    def __init__(
        self,
        config: Optional[StoreConfig] = None,
        num_workers: int = 2,
        batch_size: int = 1024,
        mp_context=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self._config = config if config is not None else StoreConfig()
        self._num_workers = num_workers
        self._batch_size = batch_size
        self._mp_context = mp_context

    @property
    def config(self) -> StoreConfig:
        """The shared store config workers build with."""
        return self._config

    @property
    def num_workers(self) -> int:
        """The worker process count."""
        return self._num_workers

    def _pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._num_workers, mp_context=self._mp_context
        )

    def _fold(self, payloads: Iterable[Dict[str, Any]]) -> SketchStore:
        store = SketchStore(self._config)
        for payload in payloads:
            _fold_payload(store, payload)
        return store

    def ingest(self, events: Iterable[Event]) -> SketchStore:
        """Shard, ingest in parallel, fold — returns an in-memory store.

        Bit-identical to ``SketchStore(config).ingest(events)``: ledgers,
        sketches, and query answers compare with ``==``.
        """
        events = list(events)
        if self._num_workers == 1:
            store = SketchStore(self._config)
            store.ingest(events)
            return store
        shards = shard_events(events, self._num_workers)
        with self._pool() as pool:
            payloads = list(
                pool.map(
                    _ingest_shard,
                    repeat(self._config.to_dict()),
                    [_event_rows(shard) for shard in shards],
                )
            )
        return self._fold(payloads)

    def ingest_feeds(
        self, paths: Sequence[Union[str, Path]]
    ) -> SketchStore:
        """Parallel-ingest pre-sharded feed files (one file per task).

        Each worker reads and folds one file; bit-identity to a single
        pass over the concatenation holds when the files are key-routed
        (every ``(group, key)`` in one file — e.g. written from
        :func:`~repro.serving.events.shard_events` output).  Files are
        processed by up to ``num_workers`` processes at a time.
        """
        paths = [str(path) for path in paths]
        if self._num_workers == 1 or len(paths) <= 1:
            store = SketchStore(self._config)
            for path in paths:
                store.ingest(read_events(path))
            return store
        with self._pool() as pool:
            payloads = list(
                pool.map(
                    _ingest_shard_feed,
                    repeat(self._config.to_dict()),
                    paths,
                )
            )
        return self._fold(payloads)

    def ingest_durable(
        self, events: Iterable[Event], root: Union[str, Path]
    ) -> SketchStore:
        """Durable parallel ingest under ``root``, resumable after crashes.

        Each worker owns ``root/worker-NN`` (WAL + snapshots via the
        store's own persistence); re-running the same call after a
        worker died resumes every worker from its acknowledged prefix.
        The fold of the worker payloads is returned as an in-memory
        store; the worker directories remain on disk as the durable
        copies.

        ``root/ingest.json`` pins the worker count — resuming with a
        different ``num_workers`` would re-route keys to different
        shards, so it is rejected.
        """
        events = list(events)
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        meta_path = root / "ingest.json"
        meta = {"workers": self._num_workers}
        if meta_path.exists():
            stored = json.loads(meta_path.read_text())
            if stored != meta:
                raise ValueError(
                    f"ingest root {root} was laid out for {stored}, which "
                    f"conflicts with the requested {meta}"
                )
        else:
            meta_path.write_text(json.dumps(meta, sort_keys=True))
        shards = shard_events(events, self._num_workers)
        rows = [_event_rows(shard) for shard in shards]
        dirs = [
            str(root / f"worker-{index:02d}")
            for index in range(self._num_workers)
        ]
        if self._num_workers == 1:
            payloads = [
                ingest_shard_durable(
                    self._config.to_dict(), rows[0], dirs[0], self._batch_size
                )
            ]
        else:
            with self._pool() as pool:
                payloads = list(
                    pool.map(
                        ingest_shard_durable,
                        repeat(self._config.to_dict()),
                        rows,
                        dirs,
                        repeat(self._batch_size),
                    )
                )
        return self._fold(payloads)
