"""Deterministic chaos harness: seeded faults for the serving stack.

The serving layer's durability contract — *no event acked ``durable:
true`` is ever absent after any failover/recovery path, and survivors
converge bit-identical* — is only worth stating if it holds under the
failures that actually happen: connections that drop mid-segment,
frames that arrive late, twice, or out of order, write-ahead logs torn
mid-line by a crash, and primaries killed outright while a quorum wait
is in flight.  This module injects exactly those faults,
**deterministically**: every decision is drawn from a
:class:`random.Random` stream seeded from ``(seed, link)``, consumed in
frame order, so a failing schedule replays bit-for-bit from its seed.

Pieces:

:class:`ChaosSchedule`
    The seeded fault plan.  Per link (a named direction of one proxied
    connection) it yields one :class:`FrameFate` per frame — drop,
    duplicate, hold-for-reorder, delay, or cut — with independent
    per-link streams, so adding a follower never perturbs the faults
    another link sees.

:class:`ChaosProxy`
    A TCP proxy speaking raw JSON lines.  Put one between a follower
    and its primary (or a client and a server) and every frame in both
    directions flows through the schedule.  Replication survives all of
    it by construction: duplicated or reordered segments break the
    follower's contiguity check, which raises, resets the offset, and
    re-bootstraps — the chaos tests assert convergence *through* those
    recoveries, not around them.

:func:`tear_wal_tail`
    Mangle a store directory's write-ahead log the way a crash mid-write
    does: append a torn (newline-less, half-JSON) record, optionally
    truncating real bytes first.  Recovery must stop at the tear and
    keep every acknowledged batch before it.

:func:`crash_server`
    Kill a serving front-end the unfriendly way — abort every open
    connection's transport mid-frame, then tear the listener down — so
    in-process tests exercise the same "primary vanished mid-quorum"
    path the ``chaos-smoke`` CI job drives with real ``kill -9``.

``tests/serving/test_chaos.py`` is the matching battery; the invariant
it pins is the acceptance criterion of the durability subsystem.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .replication import FOLLOWER_LINE_LIMIT

__all__ = [
    "ChaosProxy",
    "ChaosSchedule",
    "FrameFate",
    "crash_server",
    "tear_wal_tail",
]


@dataclass(frozen=True)
class FrameFate:
    """What the schedule decided for one frame on one link."""

    #: Abort the whole proxied connection before forwarding this frame.
    cut: bool = False
    #: Swallow the frame entirely.
    drop: bool = False
    #: Forward the frame twice back to back.
    duplicate: bool = False
    #: Hold the frame and emit it *after* the next one (adjacent swap).
    hold: bool = False
    #: Sleep this long (seconds) before forwarding.
    delay: float = 0.0

    @property
    def action(self) -> str:
        """The fate's dominant action label (for the chaos metrics)."""
        if self.cut:
            return "cut"
        if self.drop:
            return "drop"
        if self.duplicate:
            return "duplicate"
        if self.hold:
            return "reorder"
        if self.delay:
            return "delay"
        return "forward"


@dataclass
class ChaosSchedule:
    """A seeded, per-link deterministic fault plan.

    Each probability is evaluated independently per frame, in priority
    order ``cut > drop > duplicate > hold > delay``, from a
    :class:`random.Random` stream seeded with ``f"{seed}:{link}"``
    (string seeding is stable across processes and hash
    randomisation).  The stream is consumed once per frame in arrival
    order, so a link's fate sequence is a pure function of ``(seed,
    link)`` — the property :func:`fates` exposes and the tests pin.
    """

    seed: int = 0
    #: Probability a frame is swallowed.
    drop: float = 0.0
    #: Probability a frame is forwarded twice.
    duplicate: float = 0.0
    #: Probability a frame is held past its successor (adjacent swap).
    reorder: float = 0.0
    #: Probability a frame is delayed by :attr:`delay_seconds`.
    delay: float = 0.0
    #: The delay applied to delayed frames, seconds.
    delay_seconds: float = 0.002
    #: Probability the connection is aborted at a frame boundary.
    cut: float = 0.0
    _streams: Dict[str, random.Random] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "delay", "cut"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be nonnegative")

    def _stream(self, link: str) -> random.Random:
        stream = self._streams.get(link)
        if stream is None:
            stream = self._streams[link] = random.Random(
                f"{self.seed}:{link}"
            )
        return stream

    def next_fate(self, link: str) -> FrameFate:
        """Draw the next frame's fate on ``link`` (consumes the stream).

        Exactly five draws happen per call regardless of the outcome,
        so the fates of later frames never depend on which faults fired
        earlier — schedules stay comparable across probability knobs.
        """
        stream = self._stream(link)
        draws = [stream.random() for _ in range(5)]
        if draws[0] < self.cut:
            return FrameFate(cut=True)
        if draws[1] < self.drop:
            return FrameFate(drop=True)
        if draws[2] < self.duplicate:
            return FrameFate(duplicate=True)
        if draws[3] < self.reorder:
            return FrameFate(hold=True)
        if draws[4] < self.delay:
            return FrameFate(delay=self.delay_seconds)
        return FrameFate()

    def fates(self, link: str, count: int) -> List[FrameFate]:
        """The first ``count`` fates of ``link`` from a *fresh* stream
        (does not consume this schedule's live streams)."""
        probe = ChaosSchedule(
            seed=self.seed,
            drop=self.drop,
            duplicate=self.duplicate,
            reorder=self.reorder,
            delay=self.delay,
            delay_seconds=self.delay_seconds,
            cut=self.cut,
        )
        return [probe.next_fate(link) for _ in range(count)]


class ChaosProxy:
    """A fault-injecting TCP proxy for the JSON-lines protocol.

    Accepts connections on its own port and pipes each to ``upstream``,
    pushing every line in both directions through the
    :class:`ChaosSchedule`.  Connection ``n``'s directions are the
    links ``c{n}>`` (toward upstream) and ``c{n}<`` (back); connection
    numbering is per proxy in accept order, so a test driving one
    follower through one proxy sees a reproducible link naming even
    across the follower's reconnects.

    The proxy is transparent to the protocol: it frames on newlines
    (with the replication-sized line limit, so snapshot payloads fit)
    and chaos is applied to *frames*, exactly the unit the replication
    contiguity checks defend.  One deliberate asymmetry: the lossy
    faults (drop, duplicate, reorder) apply only to **push frames** —
    lines without an ``id``, i.e. ``repl_segment`` and ``repl_ack`` —
    because request/response exchanges block on ``readline`` and a
    silently swallowed response would wedge the peer forever instead of
    exercising a recovery path.  Requests and responses still suffer
    ``delay`` and ``cut`` (both of which the retry loops absorb), and
    every frame consumes the schedule stream either way, so fate
    sequences stay a pure function of ``(seed, link)``.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        schedule: ChaosSchedule,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._upstream = (upstream_host, int(upstream_port))
        self._schedule = schedule
        self._host = host
        self._port = int(port)
        self._metrics = metrics
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections = 0
        self._writers: List = []
        self._tasks: set = set()

    @property
    def address(self) -> Tuple[str, int]:
        """The proxy's bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("proxy is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def connections(self) -> int:
        """Connections accepted so far."""
        return self._connections

    async def start(self) -> Tuple[str, int]:
        """Bind and start proxying; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("proxy is already started")
        self._server = await asyncio.start_server(
            self._on_connection,
            self._host,
            self._port,
            limit=FOLLOWER_LINE_LIMIT,
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting and abort every proxied connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.cut_all()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    def cut_all(self) -> None:
        """Abort every live proxied connection (a scripted link cut)."""
        for writer in self._writers:
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _count(self, action: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "chaos_frames_total",
                help="frames through the chaos proxy, by applied action",
                action=action,
            ).inc()

    async def _on_connection(self, down_reader, down_writer) -> None:
        index = self._connections
        self._connections += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self._upstream, limit=FOLLOWER_LINE_LIMIT
            )
        except (ConnectionError, OSError):
            down_writer.close()
            return
        self._writers.extend([down_writer, up_writer])
        forward = asyncio.create_task(
            self._pump(down_reader, up_writer, f"c{index}>")
        )
        backward = asyncio.create_task(
            self._pump(up_reader, down_writer, f"c{index}<")
        )
        self._tasks.update({forward, backward})
        forward.add_done_callback(self._tasks.discard)
        backward.add_done_callback(self._tasks.discard)
        # Either direction dying ends the connection: abort both sides
        # so the peers see a hard drop, the failure the retry loops and
        # contiguity checks are built to absorb.
        await asyncio.wait(
            {forward, backward}, return_when=asyncio.FIRST_COMPLETED
        )
        for writer in (down_writer, up_writer):
            if writer in self._writers:
                self._writers.remove(writer)
            transport = writer.transport
            if transport is not None:
                transport.abort()
        forward.cancel()
        backward.cancel()

    @staticmethod
    def _is_push_frame(line: bytes) -> bool:
        """Whether ``line`` is a fire-and-forget push frame (no ``id``).

        Push frames (``repl_segment``, ``repl_ack``) are safe to lose —
        the contiguity checks and quorum timeouts recover.  Correlated
        request/response frames are not: swallowing one wedges a peer
        blocked on ``readline``, which is a harness bug, not a fault
        worth injecting.  Unparseable lines count as correlated (never
        lossy-faulted) so the proxy stays transparent to junk.
        """
        try:
            return "id" not in json.loads(line)
        except ValueError:
            return False

    async def _pump(self, reader, writer, link: str) -> None:
        held: Optional[bytes] = None

        async def emit(frame: bytes) -> None:
            writer.write(frame)
            await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                fate = self._schedule.next_fate(link)
                if not self._is_push_frame(line) and (
                    fate.drop or fate.duplicate or fate.hold
                ):
                    fate = FrameFate(delay=fate.delay)
                self._count(fate.action)
                if fate.cut:
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    return
                if fate.drop:
                    continue
                if fate.hold and held is None:
                    held = line
                    continue
                if fate.delay:
                    await asyncio.sleep(fate.delay)
                await emit(line)
                if fate.duplicate:
                    await emit(line)
                if held is not None:
                    swapped, held = held, None
                    await emit(swapped)
            if held is not None:
                # Stream ended with a frame still held: emit it rather
                # than silently dropping (reorder is not loss).
                await emit(held)
        except (ConnectionError, OSError, asyncio.CancelledError):
            return


def tear_wal_tail(
    root,
    *,
    truncate: int = 0,
    garbage: bytes = b'{"kind": "events", "torn": ',
) -> Path:
    """Mangle a store directory's WAL tail like a crash mid-write.

    Optionally truncates the last ``truncate`` bytes (tearing the final
    record mid-line), then appends ``garbage`` without a newline — the
    shape an interrupted ``write()`` leaves behind.  Recovery replay
    stops at the first malformed line, so everything before the tear
    survives and nothing after it is invented.  Returns the WAL path.
    """
    path = Path(root) / "events.jsonl"
    data = path.read_bytes() if path.exists() else b""
    if truncate > 0:
        data = data[: max(0, len(data) - truncate)]
    path.write_bytes(data + garbage)
    return path


async def crash_server(server) -> None:
    """Kill a serving front-end abruptly (the in-process ``kill -9``).

    Aborts every open connection's transport — peers see the stream die
    mid-frame, with no graceful close — then stops the listener.  The
    store is left exactly as the last applied batch wrote it: no final
    snapshot, no flush, which is what a real SIGKILL leaves on disk.
    """
    for writer in list(server._connections):
        transport = writer.transport
        if transport is not None:
            transport.abort()
    await server.stop()


def _json_frames(lines: List[bytes]) -> List[dict]:
    """Parse proxied frames for assertions (test helper)."""
    return [json.loads(line) for line in lines if line.strip()]
