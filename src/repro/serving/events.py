"""The append-only event feed a :class:`~repro.serving.store.SketchStore` ingests.

An event is the serving layer's unit of input: item ``key`` gained
``weight`` at ``timestamp`` within ``group`` (one group per sketch, e.g.
one per user or per metric).  Feeds are JSON-lines files — one event per
line — which keeps them appendable, greppable, and streamable.

:func:`shard_events` routes events to shards *by key*, not round-robin.
That choice is what makes distributed ingestion bit-reproducible: all of
a key's weight accumulates on a single shard in arrival order, so the
shard-then-merge ledger holds exactly the floats a single-pass ingest
would hold (float addition is not associative, so splitting one key's
events across shards would only agree up to rounding).  The mergeability
property suite relies on this.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Union

import numpy as np

from ..core.seeds import hash_to_unit

__all__ = [
    "Event",
    "read_events",
    "shard_events",
    "synthetic_feed",
    "write_events",
]

#: Salt mixed into the key hash used for shard routing, kept distinct
#: from the sampling salt so routing never correlates with inclusion.
ROUTING_SALT = "serving-shard-router"


@dataclass(frozen=True)
class Event:
    """One feed record: ``key`` gained ``weight`` at ``timestamp`` in ``group``."""

    key: str
    weight: float
    timestamp: float
    group: str = "default"

    def to_dict(self) -> Dict[str, Any]:
        """The event's JSON-line payload."""
        return {
            "key": self.key,
            "weight": self.weight,
            "timestamp": self.timestamp,
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            key=str(payload["key"]),
            weight=float(payload["weight"]),
            timestamp=float(payload["timestamp"]),
            group=str(payload.get("group", "default")),
        )


def write_events(path: Union[str, os.PathLike], events: Iterable[Event]) -> Path:
    """Write a feed file: one JSON event per line.

    Parameters
    ----------
    path:
        Destination ``.jsonl`` file (parent directories are created).
    events:
        The events, written in iteration order.

    Returns
    -------
    Path
        The written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    return path


def read_events(path: Union[str, os.PathLike]) -> Iterator[Event]:
    """Iterate a feed file's events in order.

    Blank lines are skipped; a malformed line raises :class:`ValueError`
    (feed files are complete documents — torn-write tolerance belongs to
    the write-ahead log in :mod:`repro.serving.persistence`).
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed feed line: {exc}"
                ) from None
            yield Event.from_dict(payload)


def shard_events(
    events: Iterable[Event], num_shards: int, salt: str = ROUTING_SALT
) -> List[List[Event]]:
    """Split a feed into key-routed shards.

    Every event of a given ``(group, key)`` pair lands on the same shard
    (a deterministic hash route), and within a shard events keep their
    arrival order.  Ingesting the shards into separate stores and merging
    them therefore reproduces the single-pass ledger bit for bit — the
    guarantee ``tests/serving/test_merge_properties.py`` enforces.

    Parameters
    ----------
    events:
        The feed, in arrival order.
    num_shards:
        Number of shards (positive).
    salt:
        Routing-hash salt; change it to re-balance without touching the
        sampling seeds.

    Returns
    -------
    list of list of Event
        ``num_shards`` sub-feeds, order-preserving within each.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    shards: List[List[Event]] = [[] for _ in range(num_shards)]
    for event in events:
        route = hash_to_unit(f"{event.group}\x00{event.key}", salt)
        index = min(num_shards - 1, int(route * num_shards))
        shards[index].append(event)
    return shards


def synthetic_feed(
    num_events: int,
    num_keys: int = 100,
    groups: Sequence[str] = ("default",),
    seed: int = 0,
    start: float = 0.0,
    step: float = 1.0,
) -> List[Event]:
    """A deterministic synthetic feed for tests, demos, and benchmarks.

    Keys are drawn Zipf-like (a few heavy hitters, a long tail of rare
    keys), weights are log-normal, timestamps increase by ``step`` per
    event, and groups rotate pseudo-randomly — a caricature of the
    per-user activity feeds the paper's deployments summarise.  The same
    arguments always produce the same feed.

    Parameters
    ----------
    num_events:
        Feed length.
    num_keys:
        Size of the key universe (``k000``...).
    groups:
        Group names to rotate through.
    seed:
        Generator seed; the feed is a pure function of all arguments.
    start, step:
        Timestamp of the first event and the increment per event.

    Returns
    -------
    list of Event
        The feed, in timestamp order.
    """
    if num_events < 0:
        raise ValueError("num_events must be nonnegative")
    if num_keys <= 0:
        raise ValueError("num_keys must be positive")
    if not groups:
        raise ValueError("at least one group is required")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_keys + 1, dtype=float)
    probabilities = (1.0 / ranks) / np.sum(1.0 / ranks)
    key_ids = rng.choice(num_keys, size=num_events, p=probabilities)
    weights = rng.lognormal(mean=0.0, sigma=0.75, size=num_events)
    group_ids = rng.integers(0, len(groups), size=num_events)
    width = len(str(max(num_keys - 1, 1)))
    return [
        Event(
            key=f"k{int(key_ids[i]):0{width}d}",
            weight=float(weights[i]),
            timestamp=start + step * i,
            group=groups[int(group_ids[i])],
        )
        for i in range(num_events)
    ]
