"""Failover promotion: rewire a replica follower into a shard primary.

A shard's follower (PR 8's ``serve --follow``) is two cooperating
pieces: a read-only :class:`~repro.serving.server.SketchServer`
front-end and a :class:`~repro.serving.replication.ReplicaFollower`
applying the primary's shipped segments to the shared store.
*Promotion* is the controlled hand-over when the primary dies:

1. stop the follow loop (so the store has exactly one writer again),
2. flip the front-end writable (:meth:`SketchServer.make_writable`),
   which also seeds the — necessarily still pristine — replication hub
   with the store's shipped watermark,
3. answer with that watermark/offset so the caller (typically the
   shard router's failover scan, via the wire ``promote`` operation)
   knows the cut the new primary starts from.

The promoted primary's history is the follower's **shipped** prefix:
with *asynchronous* replication, a batch the dead primary acknowledged
but had not yet shipped is *lost* — the convergence the promotion test
battery pins is "every batch durably acknowledged *and shipped*
survives", and the operational remedy (quiesce ingest, let followers
drain, then fail over) lives in the runbook in ``docs/serving.md``.
Synchronous-ack mode (``serve --sync-ack N``) closes that window for
acks that came back ``durable: true``: such a batch was applied by at
least ``N`` followers before the client saw the ack, so promoting the
most-advanced survivor (what the router's failover scan does) can
never lose it — the invariant ``tests/serving/test_chaos.py`` pins
under seeded fault schedules.
Offsets restart from 0 under the new primary; sibling followers of the
dead one detect the discontinuity through the watermark cross-check in
their ``repl_subscribe`` handshake and re-bootstrap against the
promoted server.

:class:`PromotableReplica` bundles the pieces for in-process use and
for ``serve --follow ... --promotable``: a follower whose server
answers the wire ``promote`` operation, so a router (or an operator
with one JSON line) can fail over without touching the follower's
process.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from .metrics import MetricsRegistry
from .replication import ReplicaFollower
from .server import SketchServer

__all__ = ["PromotableReplica", "promote_follower"]


def promote_follower(server: SketchServer) -> Dict[str, Any]:
    """Flip a read-only follower front-end into primary mode.

    The caller must have stopped the replication follow loop first —
    promotion makes client ingest the store's writer, and two writers
    (an ingest path racing late segment applies) would corrupt the
    ledger.  Returns the promotion payload: the ``watermark`` (shipped
    events the new primary starts from) and its hub ``offset`` (0 —
    offsets restart under a new primary).
    """
    server.make_writable()
    return {
        "watermark": server.store.events_ingested,
        "offset": server.replication.offset,
    }


class PromotableReplica:
    """A shard follower that can be promoted to primary over the wire.

    Runs a read-only :class:`~repro.serving.server.SketchServer` and a
    :class:`~repro.serving.replication.ReplicaFollower` over one store,
    sharing one metrics registry.  The server's ``promote`` operation
    (and the local :meth:`promote`) performs the hand-over described in
    the module docstring; promotion is idempotent — repeated calls
    return the same payload without re-running the hand-over, so a
    router's concurrent failover scans cannot double-promote.

    Parameters
    ----------
    store:
        The replica store (in-memory or directory-backed).
    primary_host, primary_port:
        The primary to follow until promotion.
    host, port:
        Bind address of the replica's own front-end.
    metrics:
        Shared registry for the server's and follower's series; a fresh
        registry by default.
    backoff, max_backoff:
        The follow loop's reconnect backoff window.
    retry:
        A :class:`~repro.serving.resilience.RetryPolicy` for the follow
        loop, overriding the backoff shorthand (virtual-time tests).
    server_kwargs:
        Extra :class:`~repro.serving.server.SketchServer` keyword
        arguments (``max_batch``, ``line_limit``, ...).
    """

    def __init__(
        self,
        store,
        primary_host: str,
        primary_port: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        retry=None,
        **server_kwargs: Any,
    ) -> None:
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._server = SketchServer(
            store,
            host,
            port,
            read_only=True,
            promoter=self.promote,
            metrics=self._metrics,
            **server_kwargs,
        )
        self._follower = ReplicaFollower(
            store,
            primary_host,
            primary_port,
            backoff=backoff,
            max_backoff=max_backoff,
            retry=retry,
            metrics=self._metrics,
        )
        self._stop: Optional[asyncio.Event] = None
        self._follow_task: Optional[asyncio.Task] = None
        self._promoted = False

    @property
    def server(self) -> SketchServer:
        """The replica's protocol front-end."""
        return self._server

    @property
    def follower(self) -> ReplicaFollower:
        """The replication follow loop's state (offset, counters)."""
        return self._follower

    @property
    def store(self):
        """The replica store."""
        return self._server.store

    @property
    def address(self) -> Tuple[str, int]:
        """The front-end's bound ``(host, port)`` (after :meth:`start`)."""
        return self._server.address

    @property
    def promoted(self) -> bool:
        """Whether the hand-over has run."""
        return self._promoted

    async def start(self) -> Tuple[str, int]:
        """Start the front-end and the follow loop; returns the address."""
        address = await self._server.start()
        self._stop = asyncio.Event()
        self._follow_task = asyncio.create_task(
            self._follower.run(stop=self._stop)
        )
        return address

    async def promote(self) -> Dict[str, Any]:
        """Stop following and flip the front-end writable (idempotent).

        Safe against a mid-stream cancel: the follow loop mutates the
        store only inside synchronous segment applies, so cancelling at
        an await point never leaves a half-applied entry.
        """
        if not self._promoted:
            self._promoted = True
            if self._stop is not None:
                self._stop.set()
            if self._follow_task is not None:
                self._follow_task.cancel()
                try:
                    await self._follow_task
                except asyncio.CancelledError:
                    pass
                self._follow_task = None
            promote_follower(self._server)
            self._metrics.counter(
                "serving_promotions_total",
                help="follower front-ends promoted to primary",
            ).inc()
        return {
            "watermark": self._server.store.events_ingested,
            "offset": self._server.replication.offset,
        }

    async def stop(self) -> None:
        """Stop the follow loop (if still running) and the front-end."""
        if self._stop is not None:
            self._stop.set()
        if self._follow_task is not None:
            self._follow_task.cancel()
            try:
                await self._follow_task
            except asyncio.CancelledError:
                pass
            self._follow_task = None
        await self._server.stop()

    async def __aenter__(self) -> "PromotableReplica":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
