"""repro.serving — a long-lived sketch-serving layer over the library.

Everything below :mod:`repro.api` treats sampling as an offline act: build
a sample, estimate, throw the sample away.  This package makes the
*sketches themselves* the product, the way the paper's motivating
deployments (per-user activity summaries answering sum / similarity /
distinct-count queries) use them:

:mod:`repro.serving.events`
    The append-only event feed — ``(key, weight, timestamp, group)``
    records — with a JSONL wire form, a deterministic synthetic feed
    generator, and the key-routed sharding helper that makes distributed
    ingestion bit-reproducible.

:mod:`repro.serving.store`
    :class:`~repro.serving.store.SketchStore`: streaming ingestion into
    per-group weight ledgers, lazily materialised bottom-k / PPS /
    temporal-ADS sketches coordinated via shared hashed seeds, first-class
    :func:`~repro.serving.store.merge_stores`, and a batch query
    front-end (``sum`` / ``similarity`` / ``distinct``) dispatched through
    the engine kernels under the shared
    :class:`~repro.api.backend.BackendPolicy`.

:mod:`repro.serving.persistence`
    Durability: a write-ahead event log plus atomic snapshots reusing the
    :class:`~repro.api.records.RecordStore` finalize machinery, so a
    crash at any byte boundary loses at most the unacknowledged tail of
    the log.

:mod:`repro.serving.batcher`
    Request coalescing: a micro-batching
    :class:`~repro.serving.batcher.QueryBatcher` that folds concurrent
    in-flight queries into single engine dispatches with answers
    bit-identical to sequential single-caller queries.

:mod:`repro.serving.server`
    The asyncio front-end: a JSON-lines TCP
    :class:`~repro.serving.server.SketchServer` (pipelined connections,
    coalesced queries, watermark-tagged answers, background retention)
    and its :class:`~repro.serving.server.ServingClient`.

:mod:`repro.serving.ingest`
    Multi-process ingestion: a
    :class:`~repro.serving.ingest.ParallelIngestor` fanning key-routed
    shards across worker processes — bit-identical to single-pass
    ingestion, with a durable resumable mode.

:mod:`repro.serving.retention`
    Bounded retention: deterministic per-group TTL / max-keys ledger
    eviction (:class:`~repro.serving.retention.RetentionPolicy`), made
    durable through the snapshot + log-compaction path.

:mod:`repro.serving.replication`
    Primary/follower replication: a bounded
    :class:`~repro.serving.replication.ReplicationHub` of sealed WAL
    segments shipped over the TCP protocol, snapshot shipping for cold
    followers, a :class:`~repro.serving.replication.ReplicaFollower`
    whose ledger — and every query answer — converges bit-identically
    to the primary's at the same watermark, and the
    :class:`~repro.serving.replication.AckTracker` counting follower
    ``repl_ack`` confirmations for synchronous-ack quorum waits.

:mod:`repro.serving.metrics`
    Observability: a deterministic
    :class:`~repro.serving.metrics.MetricsRegistry` (counters +
    fixed-bucket latency histograms) threaded through the server,
    batcher, ingest, retention, and replication paths, exposed by the
    ``metrics`` op and a stdlib-only Prometheus
    :class:`~repro.serving.metrics.MetricsHTTPShim`.

:mod:`repro.serving.admission`
    Ingest admission control: a bounded pending-events queue with
    explicit shed responses carrying a measured ``retry_after`` hint
    (:class:`~repro.serving.admission.AdmissionController`), so
    overload degrades deterministically instead of growing memory.

:mod:`repro.serving.router`
    Scale-out sharding: a :class:`~repro.serving.router.ShardRouter`
    front-end routing ingest by the same key hash ``shard_events``
    pins and answering ``sum`` / ``distinct`` / ``similarity`` by
    scatter-gathering serialized sketch views and fusing them —
    bit-identical to an unsharded store — with per-shard watermark
    vectors and failover re-targeting across each shard's endpoint
    chain.

:mod:`repro.serving.resilience`
    The one retry/timeout policy behind every serving-layer retry loop:
    :class:`~repro.serving.resilience.RetryPolicy` (capped exponential
    backoff, seeded deterministic jitter, ``retry_after`` hints clamped
    to the cap), :class:`~repro.serving.resilience.BackoffTimer` for
    open-ended reconnect loops, and
    :class:`~repro.serving.resilience.VirtualClock` so those loops run
    in virtual time under test.

:mod:`repro.serving.chaos`
    The deterministic chaos harness: a seeded
    :class:`~repro.serving.chaos.ChaosSchedule` of per-link frame fates
    driven through a fault-injecting
    :class:`~repro.serving.chaos.ChaosProxy`, torn-WAL-tail and
    kill-mid-quorum helpers — the machinery behind the invariant that
    no ``durable: true`` ack is ever lost across failover.

:mod:`repro.serving.promotion`
    Failover promotion: :func:`~repro.serving.promotion.promote_follower`
    and :class:`~repro.serving.promotion.PromotableReplica` rewire a
    replica follower into primary mode at its shipped watermark,
    answerable over the wire (``promote``) so the router — or one JSON
    line from an operator — can fail a shard over.

:mod:`repro.serving.cli`
    ``python -m repro.serving`` — ``synth`` / ``ingest`` / ``query`` /
    ``snapshot`` / ``merge`` / ``info`` subcommands over a store
    directory, plus ``serve`` (the asyncio server; ``--follow`` runs a
    read-only replica — promotable with ``--promotable`` — ``--router``
    runs the shard router, ``--sync-ack N`` holds ingest acks for a
    follower quorum, ``--metrics-port`` mounts the scrape endpoint),
    ``load`` (a load-generating client) and ``evict`` (offline
    retention).
"""

from .admission import AdmissionController
from .batcher import QueryBatcher, QueryRequest
from .chaos import ChaosProxy, ChaosSchedule, crash_server, tear_wal_tail
from .events import Event, read_events, shard_events, synthetic_feed, write_events
from .ingest import ParallelIngestor
from .metrics import MetricsHTTPShim, MetricsRegistry
from .promotion import PromotableReplica, promote_follower
from .replication import (
    AckTracker,
    ReplicaFollower,
    ReplicationError,
    ReplicationHub,
)
from .resilience import BackoffTimer, RetryPolicy, VirtualClock
from .retention import RetentionPolicy, apply_retention
from .router import ShardRouter, ShardSlot
from .server import (
    ConnectionLost,
    JSONLinesServer,
    Overloaded,
    ProtocolError,
    ServingClient,
    ServingError,
    ShardUnavailable,
    SketchServer,
)
from .store import (
    SERVING_QUERY_KINDS,
    SketchStore,
    StoreConfig,
    merge_sketch_views,
    merge_stores,
    sketch_view_payload,
)

__all__ = [
    "AckTracker",
    "AdmissionController",
    "BackoffTimer",
    "ChaosProxy",
    "ChaosSchedule",
    "ConnectionLost",
    "Event",
    "JSONLinesServer",
    "MetricsHTTPShim",
    "MetricsRegistry",
    "Overloaded",
    "ParallelIngestor",
    "PromotableReplica",
    "ProtocolError",
    "QueryBatcher",
    "QueryRequest",
    "ReplicaFollower",
    "ReplicationError",
    "ReplicationHub",
    "RetentionPolicy",
    "RetryPolicy",
    "ServingClient",
    "ServingError",
    "ShardRouter",
    "ShardSlot",
    "ShardUnavailable",
    "SketchServer",
    "VirtualClock",
    "apply_retention",
    "crash_server",
    "promote_follower",
    "read_events",
    "shard_events",
    "synthetic_feed",
    "tear_wal_tail",
    "write_events",
    "SERVING_QUERY_KINDS",
    "SketchStore",
    "StoreConfig",
    "merge_sketch_views",
    "merge_stores",
    "sketch_view_payload",
]
