"""repro.serving — a long-lived sketch-serving layer over the library.

Everything below :mod:`repro.api` treats sampling as an offline act: build
a sample, estimate, throw the sample away.  This package makes the
*sketches themselves* the product, the way the paper's motivating
deployments (per-user activity summaries answering sum / similarity /
distinct-count queries) use them:

:mod:`repro.serving.events`
    The append-only event feed — ``(key, weight, timestamp, group)``
    records — with a JSONL wire form, a deterministic synthetic feed
    generator, and the key-routed sharding helper that makes distributed
    ingestion bit-reproducible.

:mod:`repro.serving.store`
    :class:`~repro.serving.store.SketchStore`: streaming ingestion into
    per-group weight ledgers, lazily materialised bottom-k / PPS /
    temporal-ADS sketches coordinated via shared hashed seeds, first-class
    :func:`~repro.serving.store.merge_stores`, and a batch query
    front-end (``sum`` / ``similarity`` / ``distinct``) dispatched through
    the engine kernels under the shared
    :class:`~repro.api.backend.BackendPolicy`.

:mod:`repro.serving.persistence`
    Durability: a write-ahead event log plus atomic snapshots reusing the
    :class:`~repro.api.records.RecordStore` finalize machinery, so a
    crash at any byte boundary loses at most the unacknowledged tail of
    the log.

:mod:`repro.serving.cli`
    ``python -m repro.serving`` — ``synth`` / ``ingest`` / ``query`` /
    ``snapshot`` / ``merge`` / ``info`` subcommands over a store
    directory.
"""

from .events import Event, read_events, shard_events, synthetic_feed, write_events
from .store import (
    SERVING_QUERY_KINDS,
    SketchStore,
    StoreConfig,
    merge_stores,
)

__all__ = [
    "Event",
    "read_events",
    "shard_events",
    "synthetic_feed",
    "write_events",
    "SERVING_QUERY_KINDS",
    "SketchStore",
    "StoreConfig",
    "merge_stores",
]
