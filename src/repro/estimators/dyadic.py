"""A dyadic bounded unbiased estimator (the J-estimator style baseline).

The paper cites the J estimator of Cohen & Kaplan (RANDOM 2013) as an
estimator that is *bounded* and O(1)-competitive but neither in-range nor
monotone, with a large competitive constant (84).  The original
construction partitions the seed range into dyadic intervals and charges
each interval with the information gained over the previous (coarser)
one.  We implement that telescoping construction directly:

On the dyadic interval ``I_i = (2^{-(i+1)}, 2^{-i}]`` the estimate is the
constant

    c_i = ( f_v(2^{-i}) - f_v(2^{-(i-1)}) ) / |I_i|        (|I_i| = 2^{-(i+1)})

(with ``f_v(2)`` read as ``f_v(1)``), plus the outcome-computable constant
``f_v(1)``.  Summing ``c_i * |I_i|`` telescopes to
``lim_{u->0} f_v(u) - f_v(1) = f(v) - f_v(1)``, so the estimator is
unbiased; it is nonnegative because the lower-bound function is
non-increasing; and it is bounded on every vector satisfying the
boundedness characterisation (11).

It serves as the "bounded but not admissible" baseline in the comparison
experiments — we do not claim it reproduces the constant 84, only the
qualitative role the paper assigns to it.
"""

from __future__ import annotations

import math

from ..core.functions import EstimationTarget
from ..core.lower_bound import OutcomeLowerBound
from ..core.outcome import Outcome
from .base import Estimator

__all__ = ["DyadicEstimator"]


class DyadicEstimator(Estimator):
    """Dyadic telescoping estimator: bounded, unbiased, nonnegative."""

    name = "dyadic (J-style)"

    def __init__(self, target: EstimationTarget) -> None:
        self._target = target

    @property
    def target(self) -> EstimationTarget:
        return self._target

    def estimate(self, outcome: Outcome) -> float:
        rho = outcome.seed
        lb = OutcomeLowerBound(outcome, self._target)
        level = self._dyadic_level(rho)
        upper_of_level = 2.0 ** (-level)          # right end of I_level
        coarser = min(1.0, 2.0 ** (-(level - 1)))  # right end of the parent
        width = 2.0 ** (-(level + 1))
        gain = lb(upper_of_level) - lb(coarser)
        baseline = lb(1.0)
        return max(0.0, gain / width + baseline)

    @staticmethod
    def _dyadic_level(rho: float) -> int:
        """Index ``i`` with ``rho`` in ``(2^{-(i+1)}, 2^{-i}]``."""
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"seed must be in (0, 1], got {rho}")
        level = int(math.floor(-math.log2(rho)))
        # Floating point can land the level one off at exact powers of two;
        # fix up so the half-open interval convention holds.
        while 2.0 ** (-(level + 1)) >= rho:
            level += 1
        while rho > 2.0 ** (-level):
            level -= 1
        return level
