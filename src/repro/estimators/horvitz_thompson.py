"""The Horvitz–Thompson (HT) estimator, adapted to monotone sampling.

The HT estimate is positive only on outcomes that fully *reveal* the
target value ``f(v)`` (the infimum and supremum of ``f`` over the
consistency set coincide).  On such an outcome the estimate is the inverse
probability estimate ``f(v) / q``, where ``q`` is the probability, over the
seed, of obtaining an outcome that reveals ``f(v)``.  On all other
outcomes the estimate is zero.

The paper uses HT as the classical baseline that the L* estimator
dominates: HT throws away the partial information carried by outcomes
that only bound ``f(v)``, and it is not even applicable when the
revelation probability is zero (e.g. the range ``|v1 - v2|`` with
``v2 = 0`` under PPS).  In that situation this implementation returns 0
estimates for every outcome, which makes the bias of HT measurable in the
experiments rather than raising midway through a sweep (an explicit
``is_applicable`` probe is provided for callers that want to know).
"""

from __future__ import annotations

from typing import Sequence

from ..core.functions import EstimationTarget
from ..core.outcome import Outcome
from ..core.schemes import MonotoneSamplingScheme
from .base import Estimator

__all__ = ["HorvitzThompsonEstimator"]

_REL_TOL = 1e-12


class HorvitzThompsonEstimator(Estimator):
    """Inverse-probability estimator on fully-revealing outcomes."""

    name = "HT"

    def __init__(self, target: EstimationTarget, tolerance: float = 1e-9) -> None:
        self._target = target
        self._tolerance = tolerance

    @property
    def target(self) -> EstimationTarget:
        return self._target

    @property
    def tolerance(self) -> float:
        """Relative tolerance used to decide whether ``f`` is revealed."""
        return self._tolerance

    def estimate(self, outcome: Outcome) -> float:
        revealed, value = self._revealed_value(outcome, outcome.seed)
        if not revealed:
            return 0.0
        if value <= 0.0:
            return 0.0
        probability = self._revelation_probability(outcome)
        if probability <= 0.0:
            return 0.0
        return value / probability

    def is_applicable(
        self,
        scheme: MonotoneSamplingScheme,
        vector: Sequence[float],
        probe_seed: float = 1e-6,
    ) -> bool:
        """Whether ``f(v)`` is revealed with positive probability.

        Probes the outcome at a small seed: by monotonicity, if the value
        is not revealed there, the revelation probability is (numerically)
        zero and HT is not applicable to this vector.  The probe seed is
        kept well above the revelation tolerance so that an
        asymptotically-hidden value (e.g. the range of ``(v1, 0)`` under
        PPS, hidden for every positive seed) is not mistaken for a
        revealed one.
        """
        outcome = scheme.sample(vector, probe_seed)
        revealed, _ = self._revealed_value(outcome, probe_seed)
        return revealed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _revealed_value(self, outcome: Outcome, u: float):
        known = outcome.known_at(u)
        upper = outcome.upper_bounds_at(u)
        low = self._target.infimum_over_box(known, upper)
        high = self._target.supremum_over_box(known, upper)
        scale = max(1.0, abs(high))
        return (high - low) <= self._tolerance * scale, low

    def _revelation_probability(self, outcome: Outcome) -> float:
        """Largest seed at which the outcome still reveals the value.

        Revelation is monotone (more information can only be lost as the
        seed grows), so the set of revealing seeds is an interval
        ``(0, q]`` and ``q`` is found by bisection between the last
        revealing and the first non-revealing probe point.  Probes are
        placed at the information breakpoints, where entries drop out of
        the hypothetical sample.
        """
        rho = outcome.seed
        probes = [rho, *outcome.information_breakpoints(), 1.0]
        probes = sorted(set(p for p in probes if rho <= p <= 1.0))
        last_revealing = rho
        first_hidden = None
        for u in probes:
            revealed, _ = self._revealed_value(outcome, u)
            if revealed:
                last_revealing = u
            else:
                first_hidden = u
                break
        if first_hidden is None:
            return 1.0
        lo, hi = last_revealing, first_hidden
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            revealed, _ = self._revealed_value(outcome, mid)
            if revealed:
                lo = mid
            else:
                hi = mid
            if hi - lo <= _REL_TOL * max(1.0, hi):
                break
        return lo
