"""v-optimal (oracle) estimates.

For a fixed data vector ``v`` the *v-optimal* estimates (eq. 15,
Theorem 2.1) are the negated slopes of the lower convex hull of the
lower-bound function ``f^{(v)}``.  They minimise the expected square — and
hence the variance — *for that particular vector*, among all nonnegative
unbiased estimators.  No single estimator can be v-optimal for every
vector simultaneously (there is no UMVUE), which is precisely why the
paper studies competitiveness: the denominator of the competitive ratio is
the v-optimal expected square computed here.

:class:`VOptimalOracle` is not a legal estimator (it peeks at ``v``); it
exists for analysis, for the figures of Examples 3–4, and as the
building block of the order-optimal construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.functions import EstimationTarget
from ..core.lower_bound import VectorLowerBound
from ..core.lower_hull import PiecewiseLinearHull, hull_of_curve
from ..core.outcome import Outcome
from ..core.schemes import MonotoneSamplingScheme
from .base import Estimator

__all__ = ["VOptimalOracle"]


class VOptimalOracle(Estimator):
    """Minimum-variance estimates for one known data vector.

    Parameters
    ----------
    scheme, target, vector:
        The monotone estimation problem instance and the data vector the
        oracle is optimal for.
    grid:
        Resolution used to trace the lower-bound curve when building the
        hull.  Closed-form hulls are not needed: the curves involved are
        monotone and piecewise smooth, so a breakpoint-aware grid of a few
        hundred points reproduces them to high accuracy.
    """

    name = "v-optimal"

    def __init__(
        self,
        scheme: MonotoneSamplingScheme,
        target: EstimationTarget,
        vector: Sequence[float],
        grid: int = 1024,
    ) -> None:
        self._scheme = scheme
        self._target = target
        self._vector = tuple(float(x) for x in vector)
        self._curve = VectorLowerBound(scheme, target, self._vector)
        self._hull: Optional[PiecewiseLinearHull] = None
        self._grid = grid

    @property
    def vector(self):
        return self._vector

    @property
    def hull(self) -> PiecewiseLinearHull:
        """The lower hull of ``f^{(v)}`` (built lazily and cached)."""
        if self._hull is None:
            self._hull = hull_of_curve(
                self._curve,
                limit_at_zero=self._curve.true_value(),
                grid=self._grid,
            )
        return self._hull

    def estimate_at_seed(self, u: float) -> float:
        """The v-optimal estimate on the outcome obtained at seed ``u``."""
        if not 0.0 < u <= 1.0:
            raise ValueError(f"seed must be in (0, 1], got {u}")
        return self.hull.negated_slope(u)

    def estimates_at_seeds(self, us) -> "np.ndarray":
        """Vectorized :meth:`estimate_at_seed` over an array of seeds.

        Builds the hull once and evaluates every seed with one
        ``searchsorted`` — bit-identical to the scalar method (the hull
        segments and arithmetic are shared).

        Raises
        ------
        ValueError
            If any seed lies outside ``(0, 1]``.
        """
        import numpy as np

        us = np.asarray(us, dtype=float)
        if us.size and (us.min() <= 0.0 or us.max() > 1.0):
            raise ValueError("seeds must lie in (0, 1]")
        return self.hull.negated_slopes(us)

    def estimate(self, outcome: Outcome) -> float:
        """Oracle estimate for an outcome *of the oracle's own vector*.

        The outcome must be consistent with the vector the oracle was
        built for; otherwise the notion of v-optimality does not apply and
        a ``ValueError`` is raised.
        """
        if not outcome.consistent_with(self._vector):
            raise ValueError(
                "outcome is not consistent with the oracle's data vector"
            )
        return self.estimate_at_seed(outcome.seed)

    def minimal_expected_square(self) -> float:
        """``inf ∫ estimate(u)^2 du`` over nonnegative unbiased estimators.

        This is the denominator of the paper's competitive ratio for this
        data vector.
        """
        return self.hull.squared_slope_integral()

    def minimal_variance(self) -> float:
        """The minimum attainable variance for this data vector."""
        return self.minimal_expected_square() - self._curve.true_value() ** 2
