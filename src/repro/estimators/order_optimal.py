"""Order-optimal (≺+-optimal) estimators over finite domains (Section 5).

An estimator is ``≺+``-optimal for a partial order ``≺`` on the data
domain when no other nonnegative unbiased estimator can have strictly
lower variance on some vector without paying strictly more on a vector
that *precedes* it.  Order-optimality implies admissibility and, given the
order, pins the estimator down uniquely — which is how the paper turns
estimator selection into *customisation*: order the data patterns you
expect to see first and the construction hands you the admissible
estimator tailored to them.

For finite grid domains the construction is fully explicit (Example 5):

1. enumerate the seeds at which any outcome can change (the inclusion
   probabilities of the grid values) — these split ``(0, 1]`` into
   finitely many intervals on which every outcome is constant;
2. process the data vectors in ``≺`` order (any linear extension); for
   each vector, extend the partially-built estimator to the not yet
   covered outcomes with the *v-optimal extension* of Theorem 2.1 —
   the negated slopes of the lower hull of the vector's (step) lower-bound
   function together with the already-committed expectation.

Choosing the order "small ``f`` first" reproduces the L* estimator and
"large ``f`` first" reproduces U* (both verified in the tests against the
closed forms), while arbitrary custom priorities — such as Example 5's
"difference exactly 2 first" — produce new admissible estimators.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.domain import GridDomain
from ..core.functions import EstimationTarget
from ..core.lower_hull import lower_hull_points, PiecewiseLinearHull
from ..core.outcome import Outcome
from ..core.schemes import MonotoneSamplingScheme
from .base import Estimator

__all__ = [
    "DiscreteProblem",
    "OrderOptimalEstimator",
    "build_order_optimal",
    "order_by_target_ascending",
    "order_by_target_descending",
]

Vector = Tuple[float, ...]
OutcomeKey = Tuple[int, Tuple[Optional[float], ...]]


@dataclass(frozen=True)
class _Interval:
    """A seed interval ``(low, high]`` on which outcomes are constant."""

    index: int
    low: float
    high: float

    @property
    def length(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.low + self.high)


class DiscreteProblem:
    """A monotone estimation problem over a finite grid domain.

    Precomputes the seed intervals, the outcome key of every
    (vector, interval) pair and the step lower-bound functions, which is
    everything the order-optimal construction needs.
    """

    def __init__(
        self,
        scheme: MonotoneSamplingScheme,
        target: EstimationTarget,
        domain: GridDomain,
    ) -> None:
        self.scheme = scheme
        self.target = target
        self.domain = domain
        self.vectors: Tuple[Vector, ...] = tuple(domain)
        self.intervals = self._build_intervals()
        self._values = {v: target(v) for v in self.vectors}
        self._lower_bounds = self._build_lower_bounds()

    # -- construction ---------------------------------------------------
    def _build_intervals(self) -> Tuple[_Interval, ...]:
        points = {1.0}
        for entry_index, levels in enumerate(self.domain.levels):
            for value in levels:
                if value <= 0:
                    continue
                p = self.scheme.inclusion_probability(entry_index, value)
                if 0.0 < p < 1.0:
                    points.add(p)
        sorted_points = sorted(points)
        intervals = []
        low = 0.0
        for index, high in enumerate(sorted_points):
            intervals.append(_Interval(index=index, low=low, high=high))
            low = high
        return tuple(intervals)

    def _sampled_pattern(self, vector: Vector, interval: _Interval) -> Tuple[Optional[float], ...]:
        """Values reported when sampling ``vector`` at a seed in ``interval``."""
        probe = interval.high  # any seed in the interval gives the same pattern
        return tuple(
            value
            if value > 0
            and self.scheme.inclusion_probability(i, value) >= probe
            else None
            for i, value in enumerate(vector)
        )

    def outcome_key(self, vector: Vector, interval: _Interval) -> OutcomeKey:
        return (interval.index, self._sampled_pattern(vector, interval))

    def consistent_vectors(self, key: OutcomeKey) -> Tuple[Vector, ...]:
        """All domain vectors consistent with the outcome ``key``."""
        interval = self.intervals[key[0]]
        pattern = key[1]
        result = []
        for z in self.vectors:
            ok = True
            for i, required in enumerate(pattern):
                p = self.scheme.inclusion_probability(i, z[i]) if z[i] > 0 else 0.0
                if required is None:
                    # Entry must be unsampled throughout the interval.
                    if p > interval.low + 1e-15:
                        ok = False
                        break
                else:
                    if z[i] != required:
                        ok = False
                        break
            if ok:
                result.append(z)
        return tuple(result)

    def _build_lower_bounds(self) -> Dict[Vector, Tuple[float, ...]]:
        """Step lower-bound function of each vector, one value per interval."""
        bounds: Dict[Vector, Tuple[float, ...]] = {}
        cache: Dict[OutcomeKey, float] = {}
        for v in self.vectors:
            per_interval = []
            for interval in self.intervals:
                key = self.outcome_key(v, interval)
                if key not in cache:
                    consistent = self.consistent_vectors(key)
                    cache[key] = min(self._values[z] for z in consistent)
                per_interval.append(cache[key])
            bounds[v] = tuple(per_interval)
        return bounds

    # -- queries ----------------------------------------------------------
    def value(self, vector: Vector) -> float:
        return self._values[vector]

    def lower_bound_steps(self, vector: Vector) -> Tuple[float, ...]:
        """``f^{(v)}`` as one value per seed interval (left to right)."""
        return self._lower_bounds[vector]

    def interval_of_seed(self, seed: float) -> _Interval:
        highs = [iv.high for iv in self.intervals]
        idx = bisect.bisect_left(highs, seed)
        idx = min(idx, len(self.intervals) - 1)
        return self.intervals[idx]

    def key_for_outcome(self, outcome: Outcome) -> OutcomeKey:
        interval = self.interval_of_seed(outcome.seed)
        return (interval.index, tuple(outcome.values))


class OrderOptimalEstimator(Estimator):
    """A fully-specified estimator over a :class:`DiscreteProblem`.

    The estimator is a finite table mapping outcome keys to estimate
    values.  Exact expectations and variances are finite sums, which makes
    the admissibility / unbiasedness tests exact rather than Monte Carlo.
    """

    name = "order-optimal"

    def __init__(
        self,
        problem: DiscreteProblem,
        estimates: Dict[OutcomeKey, float],
        order_name: str = "custom",
    ) -> None:
        self._problem = problem
        self._estimates = dict(estimates)
        self.name = f"order-optimal ({order_name})"

    @property
    def problem(self) -> DiscreteProblem:
        return self._problem

    @property
    def table(self) -> Dict[OutcomeKey, float]:
        """The outcome-key → estimate table (a copy)."""
        return dict(self._estimates)

    def estimate(self, outcome: Outcome) -> float:
        key = self._problem.key_for_outcome(outcome)
        if key not in self._estimates:
            raise KeyError(
                f"outcome {key} was not covered by the construction; is the "
                "data vector inside the declared finite domain?"
            )
        return self._estimates[key]

    def estimate_for_vector(self, vector: Sequence[float], seed: float) -> float:
        """Estimate on the outcome produced by ``vector`` at ``seed``."""
        v = tuple(float(x) for x in vector)
        interval = self._problem.interval_of_seed(seed)
        return self._estimates[self._problem.outcome_key(v, interval)]

    def expected_value(self, vector: Sequence[float]) -> float:
        """Exact ``E[estimate]`` for ``vector`` (finite sum over intervals)."""
        v = tuple(float(x) for x in vector)
        total = 0.0
        for interval in self._problem.intervals:
            key = self._problem.outcome_key(v, interval)
            total += self._estimates[key] * interval.length
        return total

    def expected_square(self, vector: Sequence[float]) -> float:
        v = tuple(float(x) for x in vector)
        total = 0.0
        for interval in self._problem.intervals:
            key = self._problem.outcome_key(v, interval)
            total += self._estimates[key] ** 2 * interval.length
        return total

    def variance(self, vector: Sequence[float]) -> float:
        v = tuple(float(x) for x in vector)
        return self.expected_square(v) - self._problem.value(v) ** 2


def order_by_target_ascending(problem: DiscreteProblem) -> List[Vector]:
    """Linear extension of ``z ≺ v  ⇔  f(z) < f(v)`` (yields L*)."""
    return sorted(problem.vectors, key=lambda v: (problem.value(v), v))


def order_by_target_descending(problem: DiscreteProblem) -> List[Vector]:
    """Linear extension of ``z ≺ v  ⇔  f(z) > f(v)`` (yields U*)."""
    return sorted(problem.vectors, key=lambda v: (-problem.value(v), v))


def build_order_optimal(
    problem: DiscreteProblem,
    order: Iterable[Vector] = None,
    priority: Callable[[Vector], float] = None,
    order_name: str = "custom",
) -> OrderOptimalEstimator:
    """Construct the ``≺+``-optimal estimator for a processing order.

    Parameters
    ----------
    problem:
        The finite monotone estimation problem.
    order:
        Explicit processing order (vectors listed from most-prioritised to
        least).  Must contain every vector of the domain exactly once.
    priority:
        Alternatively, a key function; vectors are processed in increasing
        key order.  Exactly one of ``order`` and ``priority`` must be
        given.
    order_name:
        Label used in reports.
    """
    if (order is None) == (priority is None):
        raise ValueError("provide exactly one of `order` or `priority`")
    if order is None:
        ordering = sorted(problem.vectors, key=lambda v: (priority(v), v))
    else:
        ordering = [tuple(float(x) for x in v) for v in order]
        if sorted(ordering) != sorted(problem.vectors):
            raise ValueError("`order` must enumerate the whole domain exactly once")

    estimates: Dict[OutcomeKey, float] = {}
    for vector in ordering:
        _extend_for_vector(problem, vector, estimates)
    return OrderOptimalEstimator(problem, estimates, order_name=order_name)


def _extend_for_vector(
    problem: DiscreteProblem,
    vector: Vector,
    estimates: Dict[OutcomeKey, float],
) -> None:
    """Apply the v-optimal extension of Theorem 2.1 for one vector.

    The estimator is already defined on a suffix of the seed range (the
    outcomes shared with previously processed vectors); the extension
    covers the remaining, more informative outcomes with the negated
    slopes of the lower hull of the vector's step lower-bound function
    anchored at the already-committed expectation.
    """
    intervals = problem.intervals
    keys = [problem.outcome_key(vector, interval) for interval in intervals]
    steps = problem.lower_bound_steps(vector)

    # Locate the frontier: assigned outcomes always form a suffix in the
    # seed (less informative outcomes are shared with earlier vectors).
    first_assigned = len(intervals)
    for idx in range(len(intervals) - 1, -1, -1):
        if keys[idx] in estimates:
            first_assigned = idx
        else:
            break
    committed = sum(
        estimates[keys[idx]] * intervals[idx].length
        for idx in range(first_assigned, len(intervals))
    )
    if first_assigned == 0:
        # Fully specified already; nothing to extend.
        return
    rho = intervals[first_assigned - 1].high  # = intervals[first_assigned].low or 1.0

    # Lower hull of the step lower-bound function on (0, rho] plus the
    # anchor point (rho, committed).  The step value of interval j applies
    # on (low_j, high_j]; its left end-point carries the relevant hull
    # point because the function is left-continuous.
    xs: List[float] = [intervals[idx].low for idx in range(first_assigned)]
    ys: List[float] = [steps[idx] for idx in range(first_assigned)]
    xs.append(rho)
    ys.append(committed)
    hull_x, hull_y = lower_hull_points(xs, ys)
    if len(hull_x) == 1:
        hull = None
    else:
        hull = PiecewiseLinearHull(hull_x, hull_y)

    for idx in range(first_assigned):
        interval = intervals[idx]
        if keys[idx] in estimates:
            # The theory guarantees that already-assigned outcomes form a
            # suffix in the seed; hitting one below the frontier means the
            # processing order was inconsistent with the outcome structure.
            raise RuntimeError(
                "outcome below the assignment frontier was already specified; "
                "the processing order is not a linear extension of a valid ≺"
            )
        if hull is None:
            value = 0.0
        else:
            value = hull.negated_slope(interval.midpoint)
        estimates[keys[idx]] = value
