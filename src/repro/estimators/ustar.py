"""The U* estimator (Section 6 of the paper).

The U* estimator solves the in-range constraints at the *upper* end of the
optimal range: on every outcome it takes the supremum, over consistent
vectors ``z``, of the z-optimal estimate given what has already been
committed on less informative outcomes (eq. 48).  Under condition (49) —
satisfied by ``RG_p`` and ``RG_p+`` — it is order-optimal for the order
that prioritises data with *large* ``f`` (e.g. very dissimilar instances
for range-type targets), which is the mirror image of L*.

Implementations:

* :class:`UStarOneSidedRangePPS` — exact closed form for ``RG_p+`` under
  the canonical coordinated PPS scheme with ``tau* = 1`` (Example 4):

      p >= 1:  est = p (v1 - u)^(p-1)          on u in (v2, v1],  0 otherwise
      p <= 1:  est = v1^(p-1)                  on u in (v2, v1]
               est = ((v1-v2)^p - v1^(p-1)(v1-v2)) / v2   on u <= v2 < v1

* :class:`UStarNumeric` — a generic grid-based backward solver of the
  integral equation (48) for arbitrary targets; slower and approximate,
  but validated against the closed form in the tests.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.functions import EstimationTarget, OneSidedRange
from ..core.lower_bound import VectorLowerBound
from ..core.outcome import Outcome
from .base import Estimator
from .lstar import _uniform_pps_rate
from .optimal_range import candidate_vectors

__all__ = ["UStarOneSidedRangePPS", "UStarNumeric"]


class UStarOneSidedRangePPS(Estimator):
    """Closed-form U* estimator for ``RG_p+`` under coordinated PPS.

    Exact for any shared rate ``tau*`` via the same reparametrisation as
    :class:`~repro.estimators.lstar.LStarOneSidedRangePPS`: the estimate
    is ``tau^p`` times the unit-rate estimate of the rescaled outcome.
    """

    name = "U* (closed form, RG_p+)"

    def __init__(self, p: float = 1.0) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self._target = OneSidedRange(p=self._p)

    @property
    def p(self) -> float:
        return self._p

    @property
    def target(self) -> OneSidedRange:
        return self._target

    def estimate(self, outcome: Outcome) -> float:
        tau = _uniform_pps_rate(outcome, dimension=2)
        u = outcome.seed
        v1, v2 = outcome.values
        if v1 is None:
            # Entry 1 unsampled: a zero value is consistent, so both the
            # lower and upper range boundaries are 0 here.
            return 0.0
        p = self._p
        v1 = v1 / tau
        if v2 is None:
            # u in (v2, v1]: entry 2 hidden below the threshold u * tau.
            if u > v1:
                return 0.0
            if p >= 1.0:
                return tau ** p * (p * (v1 - u) ** (p - 1.0))
            return tau ** p * v1 ** (p - 1.0)
        # Both entries sampled: u <= v2 (and u <= v1), in scaled units.
        v2 = v2 / tau
        if v2 >= v1:
            return 0.0
        if p >= 1.0:
            return 0.0
        return tau ** p * ((v1 - v2) ** p - v1 ** (p - 1.0) * (v1 - v2)) / v2


class UStarNumeric(Estimator):
    """Generic U* estimator via a backward grid solve of eq. (48).

    For the observed outcome at seed ``rho`` the solver walks a seed grid
    from 1 down to ``rho``.  At each grid seed ``u`` it

    1. accumulates ``M(u) = ∫_u^1 est`` from the already-computed grid
       estimates,
    2. forms the upper envelope ``sup_z f^{(z)}(eta)`` over candidate
       vectors consistent with the (hypothetical) outcome at ``u``, and
    3. takes the infimum over ``eta < u`` of
       ``(envelope(eta) - M(u)) / (u - eta)``.

    The candidate vectors are box corners plus a refinement grid
    (see :func:`~repro.estimators.optimal_range.candidate_vectors`), which
    realises the supremum exactly for the paper's range-type targets.
    """

    name = "U* (numeric)"

    def __init__(
        self,
        target: EstimationTarget,
        seed_grid: int = 192,
        eta_grid: int = 65,
        candidates_per_entry: int = 4,
    ) -> None:
        self._target = target
        self._seed_grid = seed_grid
        self._eta_grid = eta_grid
        self._per_entry = candidates_per_entry

    @property
    def target(self) -> EstimationTarget:
        return self._target

    def estimate(self, outcome: Outcome) -> float:
        rho = outcome.seed
        grid = self._build_grid(outcome)
        estimates = np.zeros_like(grid)
        committed = 0.0
        # Walk from the least informative seed (1.0) down to rho.
        for idx in range(len(grid) - 1, -1, -1):
            u = float(grid[idx])
            if idx < len(grid) - 1:
                width = float(grid[idx + 1] - grid[idx])
                committed += float(estimates[idx + 1]) * width
            estimates[idx] = self._upper_boundary(outcome, u, committed)
        return float(max(0.0, estimates[0]))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_grid(self, outcome: Outcome) -> np.ndarray:
        rho = outcome.seed
        points = set(np.linspace(rho, 1.0, self._seed_grid).tolist())
        for b in outcome.information_breakpoints():
            points.add(b)
            points.add(min(1.0, b + 1e-9))
        points.add(rho)
        points.add(1.0)
        return np.array(sorted(points))

    def _upper_boundary(self, outcome: Outcome, u: float, committed: float) -> float:
        best = 0.0
        hypothetical = _HypotheticalOutcome(outcome, u)
        for z in candidate_vectors(hypothetical, per_entry=self._per_entry):
            value = self._z_lambda(outcome, z, u, committed)
            if value > best:
                best = value
        return best

    def _z_lambda(
        self, outcome: Outcome, z, u: float, committed: float
    ) -> float:
        curve = VectorLowerBound(outcome.scheme, self._target, z)
        etas: List[float] = list(np.linspace(0.0, u, self._eta_grid)[:-1])
        for b in curve.breakpoints():
            if b < u:
                etas.append(b)
                etas.append(max(0.0, b - 1e-9))
        best = math.inf
        for eta in sorted(set(etas)):
            value = curve(eta) if eta > 0.0 else self._target(z)
            ratio = (value - committed) / (u - eta)
            if ratio < best:
                best = ratio
        return best


class _HypotheticalOutcome:
    """Adapter exposing the outcome at a larger seed ``u >= rho``.

    Only the pieces :func:`candidate_vectors` needs are provided: the
    seed, the entry values as they would have been reported at ``u``, and
    the scheme.
    """

    def __init__(self, outcome: Outcome, u: float) -> None:
        self.seed = u
        self.scheme = outcome.scheme
        known = outcome.known_at(u)
        self.values = tuple(
            known.get(i) for i in range(outcome.dimension)
        )
