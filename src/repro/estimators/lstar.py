"""The L* estimator (Section 4 of the paper).

The L* estimator is the solution of the in-range constraints taken at the
*lower* end of the optimal range.  Its closed form (eq. 31) is

    f_L(rho, v) = f_v(rho) / rho  -  ∫_rho^1 f_v(u) / u^2 du ,

where ``f_v`` is the lower-bound function — which, crucially, can be
evaluated at every ``u >= rho`` from the observed outcome alone.

Properties established in the paper and exercised by the test-suite:

* unbiased and nonnegative whenever an unbiased nonnegative estimator
  exists (it is in-range);
* monotone (the estimate does not decrease as the sample becomes more
  informative), and in fact the *unique admissible monotone* estimator;
* dominates the Horvitz–Thompson estimator;
* 4-competitive: its expected square is within a factor 4 of the minimum
  attainable for every data vector (Theorem 4.1), with the factor 4 tight
  over all monotone estimation problems;
* order-optimal for the order that prioritises data with small ``f``
  (e.g. very similar instances when ``f`` is a range-type difference).

Two implementations are provided: :class:`LStarEstimator`, fully generic
(numeric integration of the lower-bound curve), and
:class:`LStarOneSidedRangePPS`, a closed form for ``RG_p+`` under the
canonical coordinated PPS scheme with ``tau* = 1`` used throughout the
paper's examples (exact and much faster; validated against the generic
implementation in the tests).
"""

from __future__ import annotations

import math

from scipy import integrate

from ..core.integration import integral_of_lb_over_u2
from ..core.functions import EstimationTarget, OneSidedRange
from ..core.lower_bound import OutcomeLowerBound
from ..core.outcome import Outcome
from ..core.schemes import CoordinatedScheme, LinearThreshold
from .base import Estimator

__all__ = ["LStarEstimator", "LStarOneSidedRangePPS"]


class LStarEstimator(Estimator):
    """Generic L* estimator for any target function (eq. 31).

    Parameters
    ----------
    target:
        The estimation target ``f``.
    rtol:
        Relative tolerance passed to the quadrature of the lower-bound
        integral.
    """

    name = "L*"

    def __init__(self, target: EstimationTarget, rtol: float = 1e-9) -> None:
        self._target = target
        self._rtol = rtol

    @property
    def target(self) -> EstimationTarget:
        return self._target

    def estimate(self, outcome: Outcome) -> float:
        rho = outcome.seed
        lb = OutcomeLowerBound(outcome, self._target)
        value_at_rho = lb(rho)
        if value_at_rho <= 0.0:
            # The lower-bound curve is non-increasing in the seed, so it
            # vanishes on the whole integration range: the estimate is 0.
            return 0.0
        integral = integral_of_lb_over_u2(
            lb, rho, 1.0, lb.breakpoints(), rtol=self._rtol
        )
        estimate = value_at_rho / rho - integral
        # Guard against quadrature round-off driving a mathematically
        # nonnegative estimate slightly below zero.
        return max(0.0, estimate)


class LStarOneSidedRangePPS(Estimator):
    """Closed-form L* estimator for ``RG_p+`` under coordinated PPS.

    For an outcome with seed ``u`` in which entry 1 is sampled with value
    ``v1`` (and writing ``a`` for the sampled value ``v2`` when entry 2 is
    sampled, or ``u`` otherwise), Example 4 of the paper gives, for the
    canonical rate ``tau* = 1``,

        est = (v1 - a)^p / a  -  ∫_a^{v1} (v1 - x)^p / x^2 dx        (a < v1)

    and 0 whenever entry 1 is unsampled or ``a >= v1``.  For ``p = 1`` the
    integral collapses to ``log(v1 / a)`` and for ``p = 2`` to
    ``2 v1 log(v1 / a) - 2 (v1 - a)``; other exponents use quadrature on
    the one-dimensional integral.

    A shared non-unit rate ``tau`` (both entries using the same PPS
    threshold ``u * tau``) is an exact reparametrisation of the unit
    problem: the inclusion event ``w >= u * tau`` equals ``w / tau >= u``
    and ``RG_p+`` is homogeneous of degree ``p``, so the estimate is
    ``tau^p`` times the unit-rate estimate of the rescaled outcome.
    Distinct per-entry rates are rejected — they change the outcome
    geometry, not just its scale.
    """

    name = "L* (closed form, RG_p+)"

    def __init__(self, p: float = 1.0, rtol: float = 1e-10) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self._rtol = rtol
        self._target = OneSidedRange(p=self._p)

    @property
    def p(self) -> float:
        return self._p

    @property
    def target(self) -> OneSidedRange:
        return self._target

    def estimate(self, outcome: Outcome) -> float:
        tau = _uniform_pps_rate(outcome, dimension=2)
        v1, v2 = outcome.values
        if v1 is None:
            return 0.0
        v1 = v1 / tau
        a = v2 / tau if v2 is not None else outcome.seed
        if a >= v1:
            return 0.0
        p = self._p
        if a <= 0.0:
            raise ValueError(
                "the closed form requires a positive anchor; a zero sampled "
                "value cannot occur under PPS with positive seed"
            )
        if p == 1.0:
            return tau ** p * math.log(v1 / a)
        if p == 2.0:
            return tau ** p * (2.0 * v1 * math.log(v1 / a) - 2.0 * (v1 - a))
        # Integration by parts of eq. (31): the head (v1-a)^p / a and the
        # tail integral both grow like 1/a, so subtracting them loses all
        # precision for tiny anchors (a sampled v2 near zero); the
        # by-parts form p * ∫_a^{v1} (v1-x)^(p-1) / x dx is the same
        # value with no cancellation.  Substituting t = v1 - x exposes the
        # t^(p-1) endpoint singularity to quad's algebraic weight, which
        # integrates it exactly instead of subdividing toward it.
        value, _ = integrate.quad(
            lambda t: 1.0 / (v1 - t), 0.0, v1 - a,
            weight="alg", wvar=(p - 1.0, 0.0), epsrel=self._rtol,
        )
        return tau ** p * max(0.0, p * value)


def _uniform_pps_rate(outcome: Outcome, dimension: int) -> float:
    """The shared PPS rate ``tau*`` of the outcome's scheme.

    The closed-form estimators are exact for coordinated PPS schemes in
    which every entry shares one linear threshold rate (the canonical
    ``tau* = 1`` setting of the paper's examples, or any uniform rescaling
    of it).  Anything else — non-linear thresholds, or per-entry rates
    that differ — raises, directing callers to the generic estimators.
    """
    scheme = outcome.scheme
    if outcome.dimension != dimension:
        raise ValueError(
            f"expected {dimension}-entry outcomes, got {outcome.dimension}"
        )
    if not isinstance(scheme, CoordinatedScheme):
        raise TypeError("closed-form estimators require a CoordinatedScheme")
    rates = []
    for threshold in scheme.thresholds:
        if not isinstance(threshold, LinearThreshold):
            raise ValueError(
                "closed-form estimators require PPS (linear) thresholds; "
                "use the generic estimator for other schemes"
            )
        rates.append(threshold.tau_star)
    tau = rates[0]
    if any(not math.isclose(r, tau, rel_tol=1e-12) for r in rates[1:]):
        raise ValueError(
            "closed-form estimators require one shared PPS rate tau* for "
            "every entry; use the generic estimator for per-entry rates"
        )
    return tau
