"""The L* estimator (Section 4 of the paper).

The L* estimator is the solution of the in-range constraints taken at the
*lower* end of the optimal range.  Its closed form (eq. 31) is

    f_L(rho, v) = f_v(rho) / rho  -  ∫_rho^1 f_v(u) / u^2 du ,

where ``f_v`` is the lower-bound function — which, crucially, can be
evaluated at every ``u >= rho`` from the observed outcome alone.

Properties established in the paper and exercised by the test-suite:

* unbiased and nonnegative whenever an unbiased nonnegative estimator
  exists (it is in-range);
* monotone (the estimate does not decrease as the sample becomes more
  informative), and in fact the *unique admissible monotone* estimator;
* dominates the Horvitz–Thompson estimator;
* 4-competitive: its expected square is within a factor 4 of the minimum
  attainable for every data vector (Theorem 4.1), with the factor 4 tight
  over all monotone estimation problems;
* order-optimal for the order that prioritises data with small ``f``
  (e.g. very similar instances when ``f`` is a range-type difference).

Two implementations are provided: :class:`LStarEstimator`, fully generic
(numeric integration of the lower-bound curve), and
:class:`LStarOneSidedRangePPS`, a closed form for ``RG_p+`` under the
canonical coordinated PPS scheme with ``tau* = 1`` used throughout the
paper's examples (exact and much faster; validated against the generic
implementation in the tests).
"""

from __future__ import annotations

import math

from scipy import integrate

from ..core.integration import integral_of_lb_over_u2
from ..core.functions import EstimationTarget, OneSidedRange
from ..core.lower_bound import OutcomeLowerBound
from ..core.outcome import Outcome
from ..core.schemes import CoordinatedScheme, LinearThreshold
from .base import Estimator

__all__ = ["LStarEstimator", "LStarOneSidedRangePPS"]


class LStarEstimator(Estimator):
    """Generic L* estimator for any target function (eq. 31).

    Parameters
    ----------
    target:
        The estimation target ``f``.
    rtol:
        Relative tolerance passed to the quadrature of the lower-bound
        integral.
    """

    name = "L*"

    def __init__(self, target: EstimationTarget, rtol: float = 1e-9) -> None:
        self._target = target
        self._rtol = rtol

    @property
    def target(self) -> EstimationTarget:
        return self._target

    def estimate(self, outcome: Outcome) -> float:
        rho = outcome.seed
        lb = OutcomeLowerBound(outcome, self._target)
        value_at_rho = lb(rho)
        if value_at_rho <= 0.0:
            # The lower-bound curve is non-increasing in the seed, so it
            # vanishes on the whole integration range: the estimate is 0.
            return 0.0
        integral = integral_of_lb_over_u2(
            lb, rho, 1.0, lb.breakpoints(), rtol=self._rtol
        )
        estimate = value_at_rho / rho - integral
        # Guard against quadrature round-off driving a mathematically
        # nonnegative estimate slightly below zero.
        return max(0.0, estimate)


class LStarOneSidedRangePPS(Estimator):
    """Closed-form L* estimator for ``RG_p+`` under coordinated PPS, tau*=1.

    For an outcome with seed ``u`` in which entry 1 is sampled with value
    ``v1`` (and writing ``a`` for the sampled value ``v2`` when entry 2 is
    sampled, or ``u`` otherwise), Example 4 of the paper gives

        est = (v1 - a)^p / a  -  ∫_a^{v1} (v1 - x)^p / x^2 dx        (a < v1)

    and 0 whenever entry 1 is unsampled or ``a >= v1``.  For ``p = 1`` the
    integral collapses to ``log(v1 / a)`` and for ``p = 2`` to
    ``2 v1 log(v1 / a) - 2 (v1 - a)``; other exponents use quadrature on
    the one-dimensional integral.
    """

    name = "L* (closed form, RG_p+)"

    def __init__(self, p: float = 1.0, rtol: float = 1e-10) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self._rtol = rtol
        self._target = OneSidedRange(p=self._p)

    @property
    def p(self) -> float:
        return self._p

    @property
    def target(self) -> OneSidedRange:
        return self._target

    def estimate(self, outcome: Outcome) -> float:
        _require_unit_pps(outcome, dimension=2)
        v1, v2 = outcome.values
        if v1 is None:
            return 0.0
        a = v2 if v2 is not None else outcome.seed
        if a >= v1:
            return 0.0
        p = self._p
        if a <= 0.0:
            raise ValueError(
                "the closed form requires a positive anchor; a zero sampled "
                "value cannot occur under PPS with positive seed"
            )
        if p == 1.0:
            return math.log(v1 / a)
        if p == 2.0:
            return 2.0 * v1 * math.log(v1 / a) - 2.0 * (v1 - a)
        head = (v1 - a) ** p / a
        tail, _ = integrate.quad(
            lambda x: (v1 - x) ** p / (x * x), a, v1, epsrel=self._rtol
        )
        return max(0.0, head - tail)


def _require_unit_pps(outcome: Outcome, dimension: int) -> None:
    """Validate that the outcome came from the canonical tau*=1 PPS scheme."""
    scheme = outcome.scheme
    if outcome.dimension != dimension:
        raise ValueError(
            f"expected {dimension}-entry outcomes, got {outcome.dimension}"
        )
    if not isinstance(scheme, CoordinatedScheme):
        raise TypeError("closed-form estimators require a CoordinatedScheme")
    for threshold in scheme.thresholds:
        if not isinstance(threshold, LinearThreshold) or not math.isclose(
            threshold.tau_star, 1.0
        ):
            raise ValueError(
                "closed-form estimators require PPS thresholds with tau*=1; "
                "use the generic estimator for other schemes"
            )
