"""Estimator interface.

An estimator for a monotone estimation problem is a function of the
*outcome* only — it never sees the data vector.  All estimators in this
package implement :class:`Estimator`; the analysis helpers additionally
use the convenience method :meth:`Estimator.estimate_for`, which samples a
known vector at a given seed and applies the estimator, making exact
integration over the seed straightforward.
"""

from __future__ import annotations

from typing import Sequence

from ..core.outcome import Outcome
from ..core.schemes import MonotoneSamplingScheme

__all__ = ["Estimator"]


class Estimator:
    """Base class for outcome-only estimators."""

    #: Human-readable name used in experiment reports.
    name: str = "estimator"

    def estimate(self, outcome: Outcome) -> float:
        """Return the estimate for ``outcome``."""
        raise NotImplementedError

    def estimate_for(
        self,
        scheme: MonotoneSamplingScheme,
        vector: Sequence[float],
        seed: float,
    ) -> float:
        """Sample ``vector`` at ``seed`` under ``scheme`` and estimate.

        This is the bridge used by analysis code: the estimator still only
        looks at the outcome, but the caller controls which data vector
        and seed produced it.
        """
        return self.estimate(scheme.sample(vector, seed))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
