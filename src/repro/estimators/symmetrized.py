"""Symmetrized one-sided estimators for the two-sided range ``RG_p``.

The two-sided exponentiated range decomposes as

    |v1 - v2|^p  =  RG_p+(v1, v2) + RG_p+(v2, v1),

so applying a one-sided estimator to an outcome *and* to the outcome with
its entries swapped — the same seed, hence the same coordinated sample —
and summing gives an estimator of ``RG_p`` that inherits unbiasedness and
nonnegativity from its one-sided building block.  This is exactly the
forward-plus-backward loop the ``L_p``-difference experiment (E9) used to
hand-roll: estimating ``sum_k |v1_k - v2_k|^p`` with per-direction L* or
U* customisation.  Expressed as a single :class:`Estimator` it plugs into
:meth:`repro.api.session.EstimationSession.simulate` and resolves to a
vectorized kernel (see :class:`repro.engine.kernels.SymmetrizedKernel`).

Note this is *not* the same estimator as the generic L* applied to the
two-sided target (:class:`~repro.estimators.lstar.LStarEstimator` over
``ExponentiatedRange``): both are unbiased for ``RG_p``, but they commit
different estimates outcome by outcome.
"""

from __future__ import annotations

from ..core.outcome import Outcome
from ..core.schemes import CoordinatedScheme
from .base import Estimator

__all__ = ["SymmetrizedRangeEstimator"]


class SymmetrizedRangeEstimator(Estimator):
    """``inner(outcome) + inner(swapped outcome)`` over two-entry tuples."""

    def __init__(self, inner: Estimator, name: str = "") -> None:
        self._inner = inner
        self.name = name or f"sym({inner.name})"

    @property
    def inner(self) -> Estimator:
        """The one-sided per-direction estimator being symmetrized."""
        return self._inner

    def estimate(self, outcome: Outcome) -> float:
        if outcome.dimension != 2:
            raise ValueError(
                "the symmetrized estimator handles two-entry outcomes only"
            )
        return self._inner.estimate(outcome) + self._inner.estimate(
            _swap(outcome)
        )


def _swap(outcome: Outcome) -> Outcome:
    """The same sampled outcome with its two entries (and thresholds) swapped."""
    scheme = outcome.scheme
    if isinstance(scheme, CoordinatedScheme):
        scheme = CoordinatedScheme([scheme.thresholds[1], scheme.thresholds[0]])
    return Outcome(
        seed=outcome.seed,
        values=(outcome.values[1], outcome.values[0]),
        scheme=scheme,
    )
