"""The optimal range of estimate values (Section 3 of the paper).

For an outcome ``S`` at seed ``rho`` and a value ``M`` equal to the
expected contribution already committed on less-informative outcomes
(``M = ∫_rho^1 fhat(u, v) du``), the paper defines the range of
*z-optimal* estimate values over the vectors ``z`` consistent with ``S``:

    lambda(rho, z, M)  = inf_{0 <= eta < rho} ( f^{(z)}(eta) - M ) / (rho - eta)
    lambda_L(S, M)     = inf_z  lambda(rho, z, M)  =  ( f(S) - M ) / rho
    lambda_U(S, M)     = sup_z  lambda(rho, z, M)

Estimates that stay inside ``[lambda_L, lambda_U]`` (almost everywhere)
are exactly the admissible candidates: in-range is necessary for
admissibility and sufficient for unbiasedness and nonnegativity
(Lemma 3.1 / Theorem 3.1).  The L* and U* estimators solve the lower and
upper boundary with equality.

``lambda_L`` has the closed form above and is exact.  ``lambda_U``
requires a supremum over the (usually infinite) consistency set; it is
computed here by maximising over a structured family of candidate vectors
(box corners plus a refinement grid), which is exact for the paper's
convex range-type targets and a controlled approximation otherwise.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.functions import EstimationTarget
from ..core.lower_bound import VectorLowerBound
from ..core.outcome import Outcome

__all__ = [
    "lambda_lower",
    "lambda_upper",
    "candidate_vectors",
    "z_optimal_estimate",
    "in_range",
]


def lambda_lower(outcome: Outcome, target: EstimationTarget, committed: float) -> float:
    """The lower end of the optimal range, ``(f(S) - M) / rho`` (eq. 19)."""
    rho = outcome.seed
    known = outcome.known_at(rho)
    upper = outcome.upper_bounds_at(rho)
    f_lower = target.infimum_over_box(known, upper)
    return (f_lower - committed) / rho


def z_optimal_estimate(
    outcome: Outcome,
    target: EstimationTarget,
    vector: Sequence[float],
    committed: float,
    eta_grid: int = 129,
) -> float:
    """``lambda(rho, z, M)`` for one candidate vector ``z`` (eq. 17).

    The infimum over ``eta`` is taken on a grid of ``[0, rho)`` refined
    with the breakpoints of ``f^{(z)}``; the value at ``eta = 0`` uses the
    limit ``f(z)`` itself.
    """
    rho = outcome.seed
    curve = VectorLowerBound(outcome.scheme, target, vector)
    etas = set(np.linspace(0.0, rho, eta_grid)[:-1].tolist())
    for b in curve.breakpoints():
        if b < rho:
            etas.add(b)
            etas.add(max(0.0, b - 1e-9))
    best = float("inf")
    for eta in sorted(etas):
        value = curve(eta) if eta > 0.0 else target(vector)
        ratio = (value - committed) / (rho - eta)
        if ratio < best:
            best = ratio
    return best


def candidate_vectors(
    outcome: Outcome, per_entry: int = 5
) -> List[Tuple[float, ...]]:
    """Representative vectors of the consistency set ``S*`` of an outcome.

    Sampled entries are pinned to their values; unsampled entries range
    over ``{0, bound/ (per_entry-1), ..., bound^-}``.  For the convex
    range-type targets of the paper the extremal candidates (corners)
    already realise the supremum of ``lambda``; the interior points guard
    against non-convex user-supplied targets.
    """
    rho = outcome.seed
    choices: List[Tuple[float, ...]] = []
    for i, value in enumerate(outcome.values):
        if value is not None:
            choices.append((value,))
        else:
            bound = outcome.scheme.threshold(i, rho)
            if bound <= 0:
                choices.append((0.0,))
            else:
                # Stay strictly below the (open) upper bound.
                grid = np.linspace(0.0, bound, per_entry + 1)[:-1]
                top = bound * (1.0 - 1e-9)
                choices.append(tuple(sorted(set(grid.tolist() + [top]))))
    return [tuple(c) for c in itertools.product(*choices)]


def lambda_upper(
    outcome: Outcome,
    target: EstimationTarget,
    committed: float,
    per_entry: int = 5,
    eta_grid: int = 129,
) -> float:
    """The upper end of the optimal range (eq. 18), via candidate search."""
    best = -float("inf")
    for z in candidate_vectors(outcome, per_entry=per_entry):
        value = z_optimal_estimate(outcome, target, z, committed, eta_grid)
        if value > best:
            best = value
    return best


def in_range(
    outcome: Outcome,
    target: EstimationTarget,
    estimate: float,
    committed: float,
    slack: float = 1e-6,
    per_entry: int = 5,
) -> bool:
    """Whether ``estimate`` lies in the optimal range at ``outcome``.

    ``slack`` is an absolute-plus-relative tolerance absorbing the
    numerical error of the ``lambda_U`` search.
    """
    low = lambda_lower(outcome, target, committed)
    high = lambda_upper(outcome, target, committed, per_entry=per_entry)
    tol = slack * max(1.0, abs(low), abs(high))
    return (estimate >= low - tol) and (estimate <= high + tol)
