"""Estimators for monotone estimation problems.

The headline constructions of the paper (L*, U*, order-optimal) together
with the classical Horvitz–Thompson baseline, the bounded dyadic baseline,
the v-optimal oracle used by the competitiveness analysis, and the
optimal-range helpers of Section 3.
"""

from .base import Estimator
from .dyadic import DyadicEstimator
from .horvitz_thompson import HorvitzThompsonEstimator
from .lstar import LStarEstimator, LStarOneSidedRangePPS
from .optimal_range import (
    candidate_vectors,
    in_range,
    lambda_lower,
    lambda_upper,
    z_optimal_estimate,
)
from .order_optimal import (
    DiscreteProblem,
    OrderOptimalEstimator,
    build_order_optimal,
    order_by_target_ascending,
    order_by_target_descending,
)
from .ustar import UStarNumeric, UStarOneSidedRangePPS
from .vopt import VOptimalOracle

__all__ = [
    "Estimator",
    "DyadicEstimator",
    "HorvitzThompsonEstimator",
    "LStarEstimator",
    "LStarOneSidedRangePPS",
    "candidate_vectors",
    "in_range",
    "lambda_lower",
    "lambda_upper",
    "z_optimal_estimate",
    "DiscreteProblem",
    "OrderOptimalEstimator",
    "build_order_optimal",
    "order_by_target_ascending",
    "order_by_target_descending",
    "UStarNumeric",
    "UStarOneSidedRangePPS",
    "VOptimalOracle",
]
