"""Estimators for monotone estimation problems.

The headline constructions of the paper (L*, U*, order-optimal) together
with the classical Horvitz–Thompson baseline, the bounded dyadic baseline,
the v-optimal oracle used by the competitiveness analysis, and the
optimal-range helpers of Section 3.
"""

from .base import Estimator
from .dyadic import DyadicEstimator
from .horvitz_thompson import HorvitzThompsonEstimator
from .lstar import LStarEstimator, LStarOneSidedRangePPS
from .optimal_range import (
    candidate_vectors,
    in_range,
    lambda_lower,
    lambda_upper,
    z_optimal_estimate,
)
from .order_optimal import (
    DiscreteProblem,
    OrderOptimalEstimator,
    build_order_optimal,
    order_by_target_ascending,
    order_by_target_descending,
)
from .symmetrized import SymmetrizedRangeEstimator
from .ustar import UStarNumeric, UStarOneSidedRangePPS
from .vopt import VOptimalOracle

__all__ = [
    "SymmetrizedRangeEstimator",
    "Estimator",
    "DyadicEstimator",
    "HorvitzThompsonEstimator",
    "LStarEstimator",
    "LStarOneSidedRangePPS",
    "candidate_vectors",
    "in_range",
    "lambda_lower",
    "lambda_upper",
    "z_optimal_estimate",
    "DiscreteProblem",
    "OrderOptimalEstimator",
    "build_order_optimal",
    "order_by_target_ascending",
    "order_by_target_descending",
    "UStarNumeric",
    "UStarOneSidedRangePPS",
    "VOptimalOracle",
]

# ----------------------------------------------------------------------
# Facade wiring: estimator factories self-register into the repro.api
# registry.  Every factory takes the estimation target first — that is
# the contract EstimationSession.estimator("name", **params) relies on —
# and the closed forms validate that the target matches their setting.
# ----------------------------------------------------------------------
from ..core.functions import EstimationTarget, ExponentiatedRange, OneSidedRange
from ..api.registry import register_estimator


def _require_one_sided(target: EstimationTarget, name: str) -> OneSidedRange:
    if not isinstance(target, OneSidedRange):
        raise TypeError(
            f"estimator {name!r} is the closed form for the one-sided range "
            "RG_p+ under unit PPS; use the generic variant for other targets"
        )
    return target


def _require_range(target: EstimationTarget, name: str) -> ExponentiatedRange:
    if not isinstance(target, ExponentiatedRange):
        raise TypeError(
            f"estimator {name!r} symmetrizes the one-sided closed form over "
            "the two-sided range RG_p; set the target to 'range' (RG_p)"
        )
    return target


def _lstar(target: EstimationTarget, **params) -> Estimator:
    return LStarEstimator(target, **params)


def _lstar_closed(target: EstimationTarget, **params) -> Estimator:
    return LStarOneSidedRangePPS(
        p=_require_one_sided(target, "lstar_closed").p, **params
    )


def _ustar(target: EstimationTarget, **params) -> Estimator:
    return UStarOneSidedRangePPS(
        p=_require_one_sided(target, "ustar").p, **params
    )


def _ustar_numeric(target: EstimationTarget, **params) -> Estimator:
    return UStarNumeric(target, **params)


def _ht(target: EstimationTarget, **params) -> Estimator:
    return HorvitzThompsonEstimator(target, **params)


def _dyadic(target: EstimationTarget, **params) -> Estimator:
    return DyadicEstimator(target, **params)


def _lstar_symmetric(target: EstimationTarget, **params) -> Estimator:
    p = _require_range(target, "lstar_symmetric").p
    return SymmetrizedRangeEstimator(
        LStarOneSidedRangePPS(p=p, **params), name="L* (symmetrized, RG_p)"
    )


def _ustar_symmetric(target: EstimationTarget, **params) -> Estimator:
    p = _require_range(target, "ustar_symmetric").p
    return SymmetrizedRangeEstimator(
        UStarOneSidedRangePPS(p=p, **params), name="U* (symmetrized, RG_p)"
    )


def _order_optimal(target: EstimationTarget, problem=None, **params) -> Estimator:
    if problem is None:
        raise ValueError(
            "the order-optimal construction needs a DiscreteProblem: "
            "session.estimator('order_optimal', problem=..., order=...)"
        )
    return build_order_optimal(problem, **params)


register_estimator("lstar", _lstar)
register_estimator("lstar_closed", _lstar_closed)
register_estimator("lstar_symmetric", _lstar_symmetric)
register_estimator("ustar", _ustar)
register_estimator("ustar_symmetric", _ustar_symmetric)
register_estimator("ustar_numeric", _ustar_numeric)
register_estimator("ht", _ht)
register_estimator("horvitz_thompson", _ht)
register_estimator("dyadic", _dyadic)
register_estimator("order_optimal", _order_optimal)
