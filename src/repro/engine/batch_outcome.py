"""Array-of-outcomes representation for vectorized estimation.

The scalar pipeline materialises one :class:`~repro.core.outcome.Outcome`
object per item and calls ``Estimator.estimate`` on each — perfectly
faithful to the paper, but the object churn and per-item Python dispatch
dominate the running time long before the mathematics does.

:class:`BatchOutcome` stores the *same information* as a list of outcomes
in three parallel NumPy arrays:

* ``seeds`` — shape ``(n,)``, the seed ``rho_k`` of every item;
* ``values`` — shape ``(n, r)``, the sampled value of entry ``i`` of item
  ``k``, with ``NaN`` marking an unsampled entry (the scalar ``None``);
* the shared :class:`~repro.core.schemes.CoordinatedScheme`, which fixes
  the per-entry threshold functions exactly as in the scalar pipeline.

Because the arrays are column-parallel, every closed-form estimator of the
paper becomes a handful of NumPy expressions over them (see
:mod:`repro.engine.kernels`), and sampling a whole dataset is a single
broadcast comparison ``values >= seed * tau_star`` instead of a Python
loop.  Conversion helpers to and from scalar outcomes are provided so the
two representations stay interchangeable (and testable against each
other).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.outcome import Outcome
from ..core.schemes import CoordinatedScheme, LinearThreshold

__all__ = [
    "BatchOutcome",
    "linear_rates",
    "is_unit_pps",
    "uniform_pps_rate",
]


def linear_rates(scheme: CoordinatedScheme) -> Optional[np.ndarray]:
    """Per-entry PPS rates ``tau*`` when every threshold is linear, else None."""
    rates = []
    for threshold in scheme.thresholds:
        if not isinstance(threshold, LinearThreshold):
            return None
        rates.append(threshold.tau_star)
    return np.asarray(rates, dtype=float)


def is_unit_pps(scheme: CoordinatedScheme, dimension: Optional[int] = None) -> bool:
    """Whether ``scheme`` is coordinated PPS with ``tau* = 1`` per entry."""
    if dimension is not None and scheme.dimension != dimension:
        return False
    rates = linear_rates(scheme)
    return rates is not None and bool(np.all(np.abs(rates - 1.0) <= 1e-12))


def uniform_pps_rate(
    scheme: CoordinatedScheme, dimension: Optional[int] = None
) -> Optional[float]:
    """The shared PPS rate ``tau*`` when every entry uses the same linear
    threshold, else ``None``.

    A uniform non-unit rate is an exact reparametrisation of the unit
    problem (``w >= u * tau`` equals ``w / tau >= u``), which is what lets
    the unit-rate closed-form kernels cover scaled samplers by rescaling.
    """
    if dimension is not None and scheme.dimension != dimension:
        return None
    rates = linear_rates(scheme)
    if rates is None or rates.size == 0:
        return None
    tau = float(rates[0])
    if not np.all(np.abs(rates - tau) <= 1e-12 * max(1.0, abs(tau))):
        return None
    return tau


@dataclass(frozen=True)
class BatchOutcome:
    """``n`` monotone-sampling outcomes under one scheme, as parallel arrays.

    Attributes
    ----------
    seeds:
        Shape ``(n,)`` array of the per-item seeds, each in ``(0, 1]``.
    values:
        Shape ``(n, r)`` array of sampled values; ``NaN`` marks an entry
        that was not sampled (the scalar representation's ``None``).
    scheme:
        The shared coordinated sampling scheme of all ``n`` items.
    """

    seeds: np.ndarray
    values: np.ndarray
    scheme: CoordinatedScheme

    def __post_init__(self) -> None:
        seeds = np.asarray(self.seeds, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if seeds.ndim != 1:
            raise ValueError("seeds must be a one-dimensional array")
        if values.ndim != 2 or values.shape[0] != seeds.shape[0]:
            raise ValueError(
                f"values must have shape (n, r) with n = {seeds.shape[0]}, "
                f"got {values.shape}"
            )
        if values.shape[1] != self.scheme.dimension:
            raise ValueError(
                f"values have {values.shape[1]} entries per item, scheme "
                f"expects {self.scheme.dimension}"
            )
        if seeds.size and (seeds.min() <= 0.0 or seeds.max() > 1.0):
            raise ValueError("seeds must lie in (0, 1]")
        object.__setattr__(self, "seeds", seeds)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.seeds.shape[0])

    @property
    def dimension(self) -> int:
        """Number of entries per item tuple."""
        return int(self.values.shape[1])

    @property
    def sampled(self) -> np.ndarray:
        """Boolean mask of shape ``(n, r)``: entry was sampled."""
        return ~np.isnan(self.values)

    @property
    def is_empty(self) -> np.ndarray:
        """Boolean mask of shape ``(n,)``: no entry of the item sampled."""
        return ~self.sampled.any(axis=1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_outcomes(
        cls, outcomes: Sequence[Outcome], scheme: Optional[CoordinatedScheme] = None
    ) -> "BatchOutcome":
        """Pack scalar outcomes (sharing one scheme) into a batch."""
        if scheme is None:
            if not outcomes:
                raise ValueError("cannot infer the scheme from an empty sequence")
            scheme = outcomes[0].scheme  # type: ignore[assignment]
        if not isinstance(scheme, CoordinatedScheme):
            raise TypeError("BatchOutcome requires a CoordinatedScheme")
        n = len(outcomes)
        seeds = np.empty(n)
        values = np.full((n, scheme.dimension), np.nan)
        for k, outcome in enumerate(outcomes):
            if outcome.dimension != scheme.dimension:
                raise ValueError("all outcomes must share the scheme dimension")
            seeds[k] = outcome.seed
            for i, v in enumerate(outcome.values):
                if v is not None:
                    values[k, i] = v
        return cls(seeds=seeds, values=values, scheme=scheme)

    @classmethod
    def sample_vectors(
        cls,
        scheme: CoordinatedScheme,
        vectors: np.ndarray,
        seeds: np.ndarray,
    ) -> "BatchOutcome":
        """Vectorized counterpart of ``scheme.sample`` over many vectors.

        ``vectors`` has shape ``(n, r)`` and ``seeds`` shape ``(n,)``.  An
        entry is reported exactly when its weight is at or above the
        threshold at the item's seed — identical to the scalar sampler,
        including the boundary convention (``>=`` keeps a weight that lands
        exactly on the threshold).
        """
        vectors = np.asarray(vectors, dtype=float)
        seeds = np.asarray(seeds, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != scheme.dimension:
            raise ValueError(
                f"vectors must have shape (n, {scheme.dimension}), got {vectors.shape}"
            )
        rates = linear_rates(scheme)
        if rates is not None:
            thresholds = seeds[:, None] * rates[None, :]
        else:
            thresholds = np.empty_like(vectors)
            for i in range(scheme.dimension):
                tau = scheme.thresholds[i]
                thresholds[:, i] = [tau(u) for u in seeds]
        values = np.where(vectors >= thresholds, vectors, np.nan)
        return cls(seeds=seeds, values=values, scheme=scheme)

    @classmethod
    def sample_vectors_sparse(
        cls,
        scheme: CoordinatedScheme,
        vectors: np.ndarray,
        seeds: np.ndarray,
    ) -> Tuple["BatchOutcome", np.ndarray]:
        """Like :meth:`sample_vectors`, but dropping empty outcomes first.

        At low sampling rates most items are sampled in *no* instance and
        every kernel maps them to 0; materialising the full ``(n, r)``
        ``NaN`` matrix just to carry those rows wastes both the allocation
        and the kernel arithmetic.  This constructor computes the
        inclusion mask, keeps only the rows with at least one sampled
        entry, and builds the ``NaN``-coded value matrix for the retained
        rows alone.

        Returns
        -------
        (batch, retained)
            The batch of non-empty outcomes and the integer indices of
            the retained rows in the input order (so callers can scatter
            per-item estimates back into a zero-initialised array).  The
            retained rows are byte-identical to the corresponding rows of
            :meth:`sample_vectors`.
        """
        vectors = np.asarray(vectors, dtype=float)
        seeds = np.asarray(seeds, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != scheme.dimension:
            raise ValueError(
                f"vectors must have shape (n, {scheme.dimension}), got {vectors.shape}"
            )
        rates = linear_rates(scheme)
        if rates is not None:
            included = vectors >= seeds[:, None] * rates[None, :]
        else:
            thresholds = np.empty_like(vectors)
            for i in range(scheme.dimension):
                tau = scheme.thresholds[i]
                thresholds[:, i] = [tau(u) for u in seeds]
            included = vectors >= thresholds
        retained = np.flatnonzero(included.any(axis=1))
        sub = vectors[retained]
        values = np.where(included[retained], sub, np.nan)
        return (
            cls(seeds=seeds[retained], values=values, scheme=scheme),
            retained,
        )

    # ------------------------------------------------------------------
    # Conversion / slicing
    # ------------------------------------------------------------------
    def to_outcomes(self) -> Iterator[Outcome]:
        """Yield the equivalent scalar :class:`Outcome` objects."""
        for k in range(len(self)):
            values: List[Optional[float]] = [
                None if np.isnan(v) else float(v) for v in self.values[k]
            ]
            yield Outcome(
                seed=float(self.seeds[k]), values=tuple(values), scheme=self.scheme
            )

    def outcome_at(self, index: int) -> Outcome:
        """The scalar outcome of item ``index``."""
        row = self.values[index]
        values = tuple(None if np.isnan(v) else float(v) for v in row)
        return Outcome(seed=float(self.seeds[index]), values=values, scheme=self.scheme)

    def take(self, indices: np.ndarray) -> "BatchOutcome":
        """A new batch restricted to the given item indices (or mask)."""
        indices = np.asarray(indices)
        return BatchOutcome(
            seeds=self.seeds[indices],
            values=self.values[indices],
            scheme=self.scheme,
        )

    def select_instances(self, instances: Iterable[int]) -> "BatchOutcome":
        """Restrict every item tuple to (and reorder by) ``instances``.

        Mirrors ``CoordinatedSample.outcome_for(..., instances=...)``: the
        scheme is restricted to the matching threshold functions.
        """
        idx: Tuple[int, ...] = tuple(instances)
        scheme = CoordinatedScheme([self.scheme.thresholds[i] for i in idx])
        return BatchOutcome(
            seeds=self.seeds, values=self.values[:, idx], scheme=scheme
        )
