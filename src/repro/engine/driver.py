"""Chunked batch driver: dataset → coordinated sampling → sum estimate.

This is the streaming counterpart of building a
:class:`~repro.aggregates.coordinated.CoordinatedSample` and running
:class:`~repro.aggregates.sum_estimator.SumAggregateEstimator` over it.
Instead of materialising per-item ``Outcome`` objects, the driver walks a
:class:`~repro.aggregates.dataset.MultiInstanceDataset` in configurable
chunks, samples each chunk with one broadcast comparison, packs the
survivors into a :class:`~repro.engine.batch_outcome.BatchOutcome`, and
applies a vectorized kernel — so memory stays bounded by the chunk size
while throughput is NumPy-bound rather than interpreter-bound.

Seeds follow the same precedence as the scalar sampler (explicit mapping,
then generator, then key hash), and the generator path consumes the
random stream in the same item order as
:class:`~repro.aggregates.coordinated.CoordinatedPPSSampler`, so a batch
run with the same ``rng`` seed reproduces the scalar pipeline's sample —
and therefore its estimate — exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.seeds import hash_to_unit
from ..core.schemes import CoordinatedScheme, LinearThreshold
from ..estimators.base import Estimator
from .batch_outcome import BatchOutcome
from .kernels import BatchKernel, resolve_kernel

__all__ = ["BatchSumResult", "BatchSumEngine"]


@dataclass(frozen=True)
class BatchSumResult:
    """Outcome of one streamed batch estimation pass."""

    value: float
    estimator: str
    items_seen: int
    items_sampled: int
    items_contributing: int
    chunks: int


class BatchSumEngine:
    """Streamed, vectorized sum-aggregate estimation over a dataset.

    Parameters
    ----------
    estimator:
        The scalar per-item estimator defining *what* is estimated.  A
        vectorized kernel is resolved for it — including under shared
        non-unit PPS rates, where the unit-rate kernels apply through the
        exact rescaling wrapper; when none exists the engine
        transparently falls back to calling the scalar estimator on each
        outcome of a batch (still chunked, so memory stays bounded).
    rates:
        Per-instance PPS rates ``tau*`` (as in
        :class:`~repro.aggregates.coordinated.CoordinatedPPSSampler`).
    instances:
        Which instances (and in which order) form the tuple handed to the
        estimator; defaults to all of them.
    chunk_size:
        Number of items sampled and estimated per chunk.
    """

    def __init__(
        self,
        estimator: Estimator,
        rates: Sequence[float],
        instances: Optional[Sequence[int]] = None,
        chunk_size: int = 65536,
    ) -> None:
        rate_values = tuple(float(t) for t in rates)
        if not rate_values or any(t <= 0 for t in rate_values):
            raise ValueError("rates must be positive for every instance")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._rates = np.asarray(rate_values)
        self._scheme = CoordinatedScheme(
            [LinearThreshold(t) for t in rate_values]
        )
        self._instances = tuple(instances) if instances is not None else tuple(
            range(len(rate_values))
        )
        if any(i < 0 or i >= len(rate_values) for i in self._instances):
            raise ValueError("instance indices out of range")
        self._estimation_scheme = CoordinatedScheme(
            [self._scheme.thresholds[i] for i in self._instances]
        )
        self._estimator = estimator
        self._kernel = resolve_kernel(estimator, self._estimation_scheme)
        self._chunk_size = int(chunk_size)

    @property
    def scheme(self) -> CoordinatedScheme:
        """The full coordinated sampling scheme (all instances)."""
        return self._scheme

    @property
    def kernel(self) -> Optional[BatchKernel]:
        """The resolved vectorized kernel, or ``None`` on the fallback path."""
        return self._kernel

    @property
    def chunk_size(self) -> int:
        """Items sampled and estimated per streamed chunk."""
        return self._chunk_size

    # ------------------------------------------------------------------
    # Estimation entry points
    # ------------------------------------------------------------------
    def estimate_dataset(
        self,
        dataset,
        *,
        seeds: Optional[Mapping[object, float]] = None,
        rng: Optional[np.random.Generator] = None,
        salt: str = "",
        selection: Optional[Iterable[object]] = None,
    ) -> BatchSumResult:
        """Stream ``dataset`` through sampling and estimation in chunks.

        ``dataset`` is a :class:`~repro.aggregates.dataset
        .MultiInstanceDataset` (imported lazily to keep the layering
        acyclic).  Seed precedence matches the scalar sampler: explicit
        ``seeds`` mapping, then ``rng``, then a salted hash of the key.
        """
        if dataset.num_instances != len(self._rates):
            raise ValueError(
                "dataset and engine disagree on the number of instances"
            )
        total = 0.0
        items_seen = 0
        items_sampled = 0
        contributing = 0
        chunks = 0
        for keys, weights in self._iter_chunks(dataset, selection):
            chunk_seeds = self._seeds_for(keys, seeds, rng, salt)
            estimates, sampled = self._estimate_chunk(weights, chunk_seeds)
            items_seen += len(keys)
            items_sampled += int(sampled.sum())
            contributing += int(np.count_nonzero(estimates))
            total += float(estimates.sum())
            chunks += 1
        return BatchSumResult(
            value=total,
            estimator=self._estimator.name,
            items_seen=items_seen,
            items_sampled=items_sampled,
            items_contributing=contributing,
            chunks=chunks,
        )

    def estimate_arrays(
        self, weights: np.ndarray, seeds: np.ndarray
    ) -> BatchSumResult:
        """Estimate from dense per-item weight tuples and seeds.

        ``weights`` has shape ``(n, num_instances)``; the per-item seeds
        are given explicitly.  Chunking still applies, so arbitrarily
        large arrays stream through bounded working memory.
        """
        weights = np.asarray(weights, dtype=float)
        seeds = np.asarray(seeds, dtype=float)
        if weights.ndim != 2 or weights.shape[1] != len(self._rates):
            raise ValueError(
                f"weights must have shape (n, {len(self._rates)}), got "
                f"{weights.shape}"
            )
        if seeds.shape != (weights.shape[0],):
            raise ValueError("seeds must be one value per item")
        total = 0.0
        items_sampled = 0
        contributing = 0
        chunks = 0
        for start in range(0, weights.shape[0], self._chunk_size):
            stop = start + self._chunk_size
            estimates, sampled = self._estimate_chunk(
                weights[start:stop], seeds[start:stop]
            )
            items_sampled += int(sampled.sum())
            contributing += int(np.count_nonzero(estimates))
            total += float(estimates.sum())
            chunks += 1
        return BatchSumResult(
            value=total,
            estimator=self._estimator.name,
            items_seen=int(weights.shape[0]),
            items_sampled=items_sampled,
            items_contributing=contributing,
            chunks=chunks,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _iter_chunks(
        self, dataset, selection: Optional[Iterable[object]]
    ) -> Iterator[Tuple[List[object], np.ndarray]]:
        keys: List[object] = []
        rows: List[Tuple[float, ...]] = []
        for key, tup in dataset.iter_items(selection):
            keys.append(key)
            rows.append(tup)
            if len(keys) >= self._chunk_size:
                yield keys, np.asarray(rows, dtype=float)
                keys, rows = [], []
        if keys:
            yield keys, np.asarray(rows, dtype=float)

    def _seeds_for(
        self,
        keys: Sequence[object],
        seeds: Optional[Mapping[object, float]],
        rng: Optional[np.random.Generator],
        salt: str,
    ) -> np.ndarray:
        if seeds is None and rng is not None:
            # Same stream as SeedAssigner(rng=rng) consulted per item.
            return 1.0 - rng.random(len(keys))
        out = np.empty(len(keys))
        for k, key in enumerate(keys):
            if seeds is not None and key in seeds:
                out[k] = float(seeds[key])
            elif rng is not None:
                # One draw per non-explicit key, exactly like the scalar
                # sampler's SeedAssigner — explicit keys consume nothing.
                out[k] = 1.0 - float(rng.random())
            else:
                out[k] = hash_to_unit(key, salt)
        return out

    def _estimate_chunk(
        self, weights: np.ndarray, seeds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample one chunk and estimate the sampled items.

        Returns the per-sampled-item estimates and the retained-item mask.
        Items sampled in no instance contribute 0 for the zero-revealing
        targets the pipeline supports and are skipped, which is what keeps
        the work proportional to the sample rather than the data.
        """
        thresholds = seeds[:, None] * self._rates[None, :]
        included = (weights >= thresholds) & (weights > 0)
        retained = included.any(axis=1)
        if not retained.any():
            return np.zeros(0), retained
        sub_values = np.where(
            included[retained][:, self._instances],
            weights[retained][:, self._instances],
            np.nan,
        )
        batch = BatchOutcome(
            seeds=seeds[retained],
            values=sub_values,
            scheme=self._estimation_scheme,
        )
        if self._kernel is not None:
            return self._kernel.estimate_batch(batch), retained
        estimates = np.fromiter(
            (self._estimator.estimate(o) for o in batch.to_outcomes()),
            dtype=float,
            count=len(batch),
        )
        return estimates, retained
