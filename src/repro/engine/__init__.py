"""repro.engine — vectorized batch estimation over coordinated samples.

The scalar layers of this library (``repro.estimators`` applied per
:class:`~repro.core.outcome.Outcome`) are the reference implementation of
the paper's estimators: readable, general, and exercised by the analytic
test-suite.  This package is the production path that makes the same
estimates fast enough for millions of items.  It has three pieces:

``BatchOutcome`` (:mod:`repro.engine.batch_outcome`)
    An array-of-structs → struct-of-arrays transposition of a list of
    outcomes: a ``(n,)`` seed array, a ``(n, r)`` value array with ``NaN``
    for unsampled entries, and the shared sampling scheme.  Sampling a
    matrix of weights is one broadcast comparison against
    ``seed * tau*``; conversion to and from scalar outcomes is lossless.

Vectorized kernels (:mod:`repro.engine.kernels`)
    NumPy translations of the HT, L*, U* and order-optimal estimators,
    resolved from their scalar counterparts by :func:`resolve_kernel`.
    Parity with ``Estimator.estimate`` to 1e-9 on every outcome — zero
    outcomes and boundary seeds included — is enforced by
    ``tests/engine/test_parity.py``.

Chunked batch driver (:mod:`repro.engine.driver`)
    :class:`BatchSumEngine` streams a
    :class:`~repro.aggregates.dataset.MultiInstanceDataset` (or raw weight
    arrays) through sampling → estimation in configurable chunks, keeping
    memory bounded by ``chunk_size`` while the arithmetic stays
    NumPy-bound.  With the same ``rng`` it reproduces the scalar
    pipeline's sample — and hence its estimate — exactly.

Serving-query kernels (:mod:`repro.engine.serving`)
    Batched per-group reductions behind the sketch-serving layer's
    ``sum`` and ``distinct`` queries (Horvitz–Thompson subset sums, HIP
    cardinality estimates), scalar and vectorized under the same policy.

Backend selection
-----------------

User-facing entry points do not call this package directly; dispatch is
governed by the shared :class:`~repro.api.backend.BackendPolicy` (the
session facade's ``backend=`` argument, or the per-function ``backend=``
keywords, all of which default to the process-wide policy):

* ``SumAggregateEstimator(..., backend="vectorized")`` and the
  ``estimate_lpp*`` helpers batch the per-item estimation of a
  coordinated sample (``backend="auto"`` picks the kernel when one
  applies and silently falls back to scalar otherwise);
* the exact query helpers in :mod:`repro.aggregates.queries` accept
  ``backend="vectorized"`` to evaluate ground truth over a dense weight
  matrix;
* :func:`repro.analysis.simulation.simulate_sum_estimate` and
  :func:`repro.analysis.variance.monte_carlo_moments` accept
  ``backend="vectorized"`` to batch their per-seed integration loops
  across replications;
* :func:`repro.engine.moments.batch_moments` evaluates the *exact*
  per-vector moment integrals (the quantities behind the E8/E11
  experiment sweeps) with a breakpoint-aware fixed quadrature whose node
  evaluations run through one kernel call per batch.

The scalar implementations remain the semantic source of truth; the
engine only changes how fast the numbers are produced.
"""

from .batch_outcome import BatchOutcome, is_unit_pps, linear_rates
from .driver import BatchSumEngine, BatchSumResult
from .kernels import (
    BatchKernel,
    DyadicOneSidedPPSKernel,
    HTOneSidedPPSKernel,
    HTRangePPSKernel,
    LStarOneSidedPPSKernel,
    LStarRangePPSKernel,
    OrderOptimalTableKernel,
    UStarOneSidedPPSKernel,
    resolve_kernel,
)
from .moments import batch_moments, batch_variances
from .serving import batch_hip_counts, batch_ht_sums

__all__ = [
    "BatchOutcome",
    "BatchSumEngine",
    "BatchSumResult",
    "BatchKernel",
    "DyadicOneSidedPPSKernel",
    "HTOneSidedPPSKernel",
    "HTRangePPSKernel",
    "LStarOneSidedPPSKernel",
    "LStarRangePPSKernel",
    "OrderOptimalTableKernel",
    "UStarOneSidedPPSKernel",
    "batch_hip_counts",
    "batch_ht_sums",
    "batch_moments",
    "batch_variances",
    "is_unit_pps",
    "linear_rates",
    "resolve_kernel",
]
