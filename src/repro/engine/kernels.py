"""Vectorized estimator kernels over :class:`BatchOutcome` arrays.

Each kernel is the NumPy translation of one scalar estimator of
:mod:`repro.estimators`, specialised to the canonical setting in which the
paper's closed forms hold (coordinated PPS with ``tau* = 1`` over
two-entry tuples, targets ``RG_p+``), plus a table-lookup kernel for the
order-optimal estimators over finite grid domains (those are exact for
*any* scheme the discrete problem was built with) and closed-form kernels
for the flat-lower-bound targets ``min(v)^p`` / ``max(v)^p`` that the
serving layer's similarity query aggregates.

The contract, enforced by ``tests/engine/test_parity.py``, is that a
kernel applied to a batch equals the scalar ``Estimator.estimate`` applied
to each outcome of the batch, to within 1e-9.  For the L* closed forms
with ``p`` in {1, 2} and for U*, HT and the order-optimal table the
expressions are literally the same arithmetic, so agreement is at machine
precision; for general exponents the L* tail integral is evaluated
analytically through the Gauss hypergeometric function instead of
adaptive quadrature, which agrees with the scalar quadrature to well below
the parity tolerance.

Kernels are resolved from scalar estimators with :func:`resolve_kernel`,
which is what the ``backend="vectorized"`` switches in
:mod:`repro.aggregates` and :mod:`repro.analysis` use: a scalar estimator
stays the single source of truth for *what* is computed, the kernel only
changes *how fast*.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.functions import ExponentiatedRange, MaxPower, MinPower, OneSidedRange
from ..core.schemes import CoordinatedScheme, LinearThreshold
from ..estimators.base import Estimator
from ..estimators.dyadic import DyadicEstimator
from ..estimators.horvitz_thompson import HorvitzThompsonEstimator
from ..estimators.lstar import LStarEstimator, LStarOneSidedRangePPS
from ..estimators.order_optimal import OrderOptimalEstimator
from ..estimators.symmetrized import SymmetrizedRangeEstimator
from ..estimators.ustar import UStarOneSidedRangePPS
from .batch_outcome import BatchOutcome, uniform_pps_rate

__all__ = [
    "BatchKernel",
    "LStarOneSidedPPSKernel",
    "LStarRangePPSKernel",
    "UStarOneSidedPPSKernel",
    "HTOneSidedPPSKernel",
    "HTRangePPSKernel",
    "MinPowerPPSKernel",
    "MaxPowerPPSKernel",
    "DyadicOneSidedPPSKernel",
    "OrderOptimalTableKernel",
    "RescaledPPSKernel",
    "SymmetrizedKernel",
    "resolve_kernel",
]


class BatchKernel:
    """A vectorized estimator: batch of outcomes in, estimates out."""

    #: Name reported in sum estimates; mirrors the scalar estimator's name.
    name: str = "kernel"

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates, shape ``(len(batch),)``."""
        raise NotImplementedError

    def integration_breakpoints(self, lower: float) -> tuple:
        """Seeds in ``(lower, 1)`` where the *estimate*, as a function of
        the seed, may jump for a fixed data vector.

        Data-dependent breakpoints (the entries' inclusion probabilities)
        come from the scheme; this hook reports the estimator-intrinsic
        ones — e.g. the dyadic grid of the J-style estimator.  The batched
        quadrature of :mod:`repro.engine.moments` splits its panels here
        so every panel is smooth.
        """
        return ()

    def __call__(self, batch: BatchOutcome) -> np.ndarray:
        return self.estimate_batch(batch)


def _split_two_entry(batch: BatchOutcome):
    """Seeds and the two value columns of a two-entry batch."""
    if batch.dimension != 2:
        raise ValueError("this kernel handles two-entry outcomes only")
    u = batch.seeds
    v1 = batch.values[:, 0]
    v2 = batch.values[:, 1]
    return u, v1, v2


#: Anchor ratio ``a / v1`` below which the hypergeometric tail loses
#: precision (SciPy's 2F1 near z = 1 for non-integer exponents in (1, 2)
#: drifts by percents); such rows are deferred to the scalar estimator.
_TAIL_STABLE_RATIO = 1e-2


def _lstar_tail_general(v1: np.ndarray, a: np.ndarray, p: float) -> np.ndarray:
    """``∫_a^{v1} (v1 - x)^p / x^2 dx`` for ``0 < a < v1``, elementwise.

    Substituting ``x = v1 t`` and integrating by parts reduces the tail to
    an incomplete-beta-type integral with the closed form

        v1^(p-1) * (1-c)^p * ( 1/c - 2F1(p, 1; p+1; 1-c) ),   c = a / v1,

    which NumPy/SciPy evaluate elementwise — the vectorized stand-in for
    the scalar implementation's adaptive quadrature.  Only valid to the
    engine parity tolerance for ``c >= _TAIL_STABLE_RATIO``: SciPy's 2F1
    is inaccurate near ``z = 1`` for non-integer ``p`` in (1, 2), so the
    kernels route smaller anchors through their scalar fallback instead
    of calling this.
    """
    from scipy.special import hyp2f1

    c = a / v1
    z = 1.0 - c
    return v1 ** (p - 1.0) * z ** p * (1.0 / c - hyp2f1(p, 1.0, p + 1.0, z))


def _lstar_estimate_general(v1: np.ndarray, a: np.ndarray, p: float) -> np.ndarray:
    """The one-sided L* estimate ``(v1-a)^p / a - ∫_a^{v1} (v1-x)^p/x^2 dx``.

    The head and tail both grow like ``1/a``; their difference collapses
    analytically (the same integration by parts as the scalar estimator's
    quadrature form) to the cancellation-free expression

        v1^(p-1) * (1-c)^p * 2F1(p, 1; p+1; 1-c),   c = a / v1,

    which is what is evaluated here.  The 2F1 accuracy caveat of
    :func:`_lstar_tail_general` near ``z = 1`` applies the same way.
    """
    from scipy.special import hyp2f1

    c = a / v1
    z = 1.0 - c
    return v1 ** (p - 1.0) * z ** p * hyp2f1(p, 1.0, p + 1.0, z)


class LStarOneSidedPPSKernel(BatchKernel):
    """Vectorized L* for ``RG_p+`` under coordinated PPS with ``tau* = 1``.

    Mirrors :class:`~repro.estimators.lstar.LStarOneSidedRangePPS`
    (eq. 31 / Example 4): with ``a`` the sampled ``v2`` or else the seed,

        est = (v1 - a)^p / a - ∫_a^{v1} (v1 - x)^p / x^2 dx   for a < v1,

    0 when entry 1 is unsampled or ``a >= v1``.
    """

    def __init__(self, p: float = 1.0, name: Optional[str] = None) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self.name = name if name is not None else LStarOneSidedRangePPS(p).name

    @property
    def p(self) -> float:
        """The range exponent the kernel was built for."""
        return self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        u, v1, v2 = _split_two_entry(batch)
        estimates = np.zeros(len(batch))
        anchor = np.where(np.isnan(v2), u, v2)
        with np.errstate(invalid="ignore"):
            active = ~np.isnan(v1) & (anchor < v1)
        if not active.any():
            return estimates
        idx = np.flatnonzero(active)
        x1 = v1[idx]
        a = anchor[idx]
        p = self._p
        if p == 1.0:
            estimates[idx] = np.log(x1 / a)
        elif p == 2.0:
            estimates[idx] = 2.0 * x1 * np.log(x1 / a) - 2.0 * (x1 - a)
        else:
            stable = a >= _TAIL_STABLE_RATIO * x1
            if stable.any():
                estimates[idx[stable]] = np.maximum(
                    0.0, _lstar_estimate_general(x1[stable], a[stable], p)
                )
            if not stable.all():
                scalar = self._scalar_fallback()
                for k in idx[~stable]:
                    estimates[k] = scalar.estimate(batch.outcome_at(int(k)))
        return estimates

    def _scalar_fallback(self) -> LStarOneSidedRangePPS:
        """Quadrature-backed scalar estimator for tiny-anchor rows."""
        if not hasattr(self, "_fallback"):
            self._fallback = LStarOneSidedRangePPS(self._p)
        return self._fallback


class LStarRangePPSKernel(BatchKernel):
    """Vectorized L* for the two-sided range ``RG_p`` under unit PPS.

    The scalar counterpart is the generic
    :class:`~repro.estimators.lstar.LStarEstimator` applied to
    :class:`~repro.core.functions.ExponentiatedRange`, whose lower-bound
    curve under coordinated PPS with ``tau* = 1`` over two-entry tuples is
    piecewise closed-form.  Writing ``b`` for the larger and ``a`` for the
    smaller entry, the curve at hypothetical seed ``u >= rho`` is

        (b - a)^p   for u <= a (both entries still sampled),
        (b - u)^p   for a < u <= b (only ``b`` sampled; the hidden entry
                    is bounded by the threshold ``u``),
        0           beyond b,

    so eq. (31) collapses, with anchor ``α = a`` when both entries are
    sampled and ``α = rho`` when only ``b`` is, to

        est = (b - α)^p / min(α, 1) - ∫_{min(α,1)}^{min(b,1)} (b - x)^p / x^2 dx .

    For ``p`` in {1, 2} the integral is elementary; other exponents reuse
    the hypergeometric tail of the one-sided kernel.  This is the
    ROADMAP's "vectorize the RG_p closed forms" item: sum-aggregating
    ``RG_p`` is the paper's flagship ``L_p^p``-difference application.
    """

    def __init__(self, p: float = 1.0, name: Optional[str] = None) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self.name = name if name is not None else LStarEstimator.name

    @property
    def p(self) -> float:
        """The range exponent the kernel was built for."""
        return self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        u, v1, v2 = _split_two_entry(batch)
        estimates = np.zeros(len(batch))
        with np.errstate(invalid="ignore"):
            b = np.fmax(v1, v2)  # NaN only when neither entry is sampled
            both = ~np.isnan(v1) & ~np.isnan(v2)
            anchor = np.where(both, np.fmin(v1, v2), u)
            active = ~np.isnan(b) & (anchor < b)
        if not active.any():
            return estimates
        idx = np.flatnonzero(active)
        x = b[idx]
        alpha = anchor[idx]
        lo = np.minimum(alpha, 1.0)  # an entry above 1 is always sampled
        hi = np.minimum(x, 1.0)
        p = self._p
        if p == 1.0:
            head = (x - alpha) / lo
            tail = x * (1.0 / lo - 1.0 / hi) - np.log(hi / lo)
            estimates[idx] = np.maximum(0.0, head - tail)
        elif p == 2.0:
            head = (x - alpha) ** 2 / lo
            tail = (
                x ** 2 * (1.0 / lo - 1.0 / hi)
                - 2.0 * x * np.log(hi / lo)
                + (hi - lo)
            )
            estimates[idx] = np.maximum(0.0, head - tail)
        else:
            stable = lo >= _TAIL_STABLE_RATIO * x
            if stable.any():
                xs, los = x[stable], lo[stable]
                head = (xs - alpha[stable]) ** p / los
                tail = _lstar_tail_general(xs, los, p)
                above = xs > 1.0
                if above.any():
                    tail[above] -= _lstar_tail_general(
                        xs[above], np.ones(int(above.sum())), p
                    )
                estimates[idx[stable]] = np.maximum(0.0, head - tail)
            if not stable.all():
                scalar = self._scalar_fallback()
                for k in idx[~stable]:
                    estimates[k] = scalar.estimate(batch.outcome_at(int(k)))
        return estimates

    def _scalar_fallback(self) -> LStarEstimator:
        """Quadrature-backed generic L* for tiny-anchor rows."""
        if not hasattr(self, "_fallback"):
            self._fallback = LStarEstimator(ExponentiatedRange(p=self._p))
        return self._fallback


class UStarOneSidedPPSKernel(BatchKernel):
    """Vectorized U* for ``RG_p+`` under coordinated PPS with ``tau* = 1``.

    Mirrors :class:`~repro.estimators.ustar.UStarOneSidedRangePPS` case by
    case; all branches are closed-form, so agreement with the scalar
    implementation is exact.
    """

    def __init__(self, p: float = 1.0, name: Optional[str] = None) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self.name = name if name is not None else UStarOneSidedRangePPS(p).name

    @property
    def p(self) -> float:
        """The range exponent the kernel was built for."""
        return self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        u, v1, v2 = _split_two_entry(batch)
        estimates = np.zeros(len(batch))
        p = self._p
        sampled1 = ~np.isnan(v1)
        sampled2 = ~np.isnan(v2)

        # Entry 2 hidden below the threshold u (and u <= v1 by sampling).
        hidden = sampled1 & ~sampled2
        idx = np.flatnonzero(hidden)
        if idx.size:
            x1 = v1[idx]
            uu = u[idx]
            if p >= 1.0:
                values = p * (x1 - uu) ** (p - 1.0)
            else:
                values = x1 ** (p - 1.0)
            values = np.where(uu > x1, 0.0, values)
            estimates[idx] = values

        # Both entries sampled: nonzero only for p < 1 and v2 < v1.
        if p < 1.0:
            with np.errstate(invalid="ignore"):
                both = sampled1 & sampled2 & (v2 < v1)
            idx = np.flatnonzero(both)
            if idx.size:
                x1 = v1[idx]
                x2 = v2[idx]
                estimates[idx] = (
                    (x1 - x2) ** p - x1 ** (p - 1.0) * (x1 - x2)
                ) / x2
        return estimates


class HTOneSidedPPSKernel(BatchKernel):
    """Vectorized Horvitz–Thompson for ``RG_p+`` under unit-rate PPS.

    Under this scheme ``RG_p+`` is fully revealed exactly when both
    entries are sampled, and the revelation probability is the inclusion
    probability of the smaller entry ``min(1, v2)``; hence

        est = (v1 - v2)^p / min(1, v2)   when v1, v2 sampled and v1 > v2,

    and 0 otherwise.  The scalar estimator decides revelation with a
    numeric tolerance and a bisection; for the measure-zero parameter
    slivers where that tolerance could change the answer (targets so small
    that ``v1^p`` is within the tolerance of ``(v1-v2)^p``) the kernel
    defers to the scalar implementation item by item, so parity holds
    everywhere.
    """

    def __init__(
        self, p: float = 1.0, tolerance: float = 1e-9, name: Optional[str] = None
    ) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self._tolerance = float(tolerance)
        self._scalar = HorvitzThompsonEstimator(
            OneSidedRange(p=self._p), tolerance=self._tolerance
        )
        self.name = name if name is not None else self._scalar.name

    @property
    def p(self) -> float:
        """The range exponent the kernel was built for."""
        return self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        u, v1, v2 = _split_two_entry(batch)
        estimates = np.zeros(len(batch))
        p = self._p
        tol = self._tolerance
        sampled1 = ~np.isnan(v1)
        sampled2 = ~np.isnan(v2)

        with np.errstate(invalid="ignore"):
            revealed = sampled1 & sampled2 & (v1 > v2)
            # Tolerance slivers where the scalar bisection could deviate
            # from the closed form: the revealed-value gap at the first
            # breakpoint is itself within the revelation tolerance.
            scale = np.maximum(1.0, np.where(sampled1, v1, 1.0) ** p)
            sliver_both = revealed & (
                v1 ** p - (v1 - v2) ** p <= 2.0 * tol * scale
            )
            sliver_hidden = (
                sampled1
                & ~sampled2
                & (v1 > u)
                & (v1 ** p - (v1 - u) ** p <= 2.0 * tol * scale)
            )
        fallback = sliver_both | sliver_hidden

        exact = revealed & ~fallback
        idx = np.flatnonzero(exact)
        if idx.size:
            value = (v1[idx] - v2[idx]) ** p
            probability = np.minimum(1.0, v2[idx])
            estimates[idx] = value / probability

        for k in np.flatnonzero(fallback):
            estimates[k] = self._scalar.estimate(batch.outcome_at(int(k)))
        return estimates


class HTRangePPSKernel(BatchKernel):
    """Vectorized Horvitz–Thompson for ``RG_p`` under unit-rate PPS.

    The two-sided range of a two-entry tuple is fully revealed exactly
    when both entries are sampled (the consistency box degenerates to a
    point), which happens while the seed is at most the smaller entry
    ``a``; hence

        est = (b - a)^p / min(1, a)   when both sampled and b > a,

    and 0 otherwise.  As with the one-sided HT kernel, the scalar
    estimator decides revelation with a numeric tolerance and a
    bisection, so outcomes inside the tolerance slivers (ranges so small
    that ``b^p`` is within the tolerance of ``(b - u)^p``) are deferred
    to the scalar implementation item by item to keep parity exact.
    """

    def __init__(
        self, p: float = 1.0, tolerance: float = 1e-9, name: Optional[str] = None
    ) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self._tolerance = float(tolerance)
        self._scalar = HorvitzThompsonEstimator(
            ExponentiatedRange(p=self._p), tolerance=self._tolerance
        )
        self.name = name if name is not None else self._scalar.name

    @property
    def p(self) -> float:
        """The range exponent the kernel was built for."""
        return self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        u, v1, v2 = _split_two_entry(batch)
        estimates = np.zeros(len(batch))
        p = self._p
        tol = self._tolerance
        with np.errstate(invalid="ignore"):
            b = np.fmax(v1, v2)
            a = np.fmin(v1, v2)
            both = ~np.isnan(v1) & ~np.isnan(v2)
            revealed = both & (b > a)
            # Tolerance slivers where the scalar bisection could deviate:
            # the hidden-entry bound erases so little of the range that
            # revelation stays within the tolerance past the closed-form
            # revelation probability.
            scale = np.maximum(1.0, np.where(np.isnan(b), 1.0, b) ** p)
            sliver_both = revealed & (b ** p - (b - a) ** p <= 2.0 * tol * scale)
            only_b = ~np.isnan(b) & ~both
            sliver_hidden = (
                only_b & (b > u) & (b ** p - (b - u) ** p <= 2.0 * tol * scale)
            )
        fallback = sliver_both | sliver_hidden

        exact = revealed & ~fallback
        idx = np.flatnonzero(exact)
        if idx.size:
            estimates[idx] = (b[idx] - a[idx]) ** p / np.minimum(1.0, a[idx])

        for k in np.flatnonzero(fallback):
            estimates[k] = self._scalar.estimate(batch.outcome_at(int(k)))
        return estimates


class MinPowerPPSKernel(BatchKernel):
    """Vectorized L* for ``min(v)^p`` under coordinated PPS with ``tau* = 1``.

    The outcome lower-bound curve of ``min(v)^p`` is flat: it equals
    ``min(v)^p`` while every entry stays sampled (hypothetical seed at or
    below the smallest value) and drops to 0 as soon as any entry hides,
    because a hidden entry may be arbitrarily close to zero.  With a flat
    curve the L* head and tail telescope to the Horvitz-Thompson form —
    the revealed value over the probability ``min(1, min(v))`` that the
    curve is positive:

        est = min(v)^p / min(1, min(v))   when every entry is sampled,

    and 0 otherwise.  The arithmetic is literally the scalar estimator's
    closed-out quadrature, so parity is at machine precision.  Any batch
    dimension is handled; :func:`resolve_kernel` currently produces this
    kernel for the canonical two-entry schemes.
    """

    def __init__(self, p: float = 1.0, name: Optional[str] = None) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self.name = name if name is not None else LStarEstimator.name

    @property
    def p(self) -> float:
        """The power the minimum is raised to."""
        return self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        values = batch.values
        estimates = np.zeros(len(batch))
        revealed = ~np.isnan(values).any(axis=1)
        idx = np.flatnonzero(revealed)
        if idx.size:
            smallest = values[idx].min(axis=1)
            estimates[idx] = smallest ** self._p / np.minimum(1.0, smallest)
        return estimates


class MaxPowerPPSKernel(BatchKernel):
    """Vectorized L* for ``max(v)^p`` under coordinated PPS with ``tau* = 1``.

    The lower-bound curve of ``max(v)^p`` is flat like the minimum's (see
    :class:`MinPowerPPSKernel`) but anchored at the *largest sampled*
    value ``M``: hidden entries cannot raise a lower bound, and the curve
    stays ``M^p`` until the hypothetical seed passes ``M`` itself.  Hence

        est = M^p / min(1, M)   when at least one entry is sampled,

    and 0 when the tuple is empty.
    """

    def __init__(self, p: float = 1.0, name: Optional[str] = None) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = float(p)
        self.name = name if name is not None else LStarEstimator.name

    @property
    def p(self) -> float:
        """The power the maximum is raised to."""
        return self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        values = batch.values
        estimates = np.zeros(len(batch))
        revealed = ~np.isnan(values).all(axis=1)
        idx = np.flatnonzero(revealed)
        if idx.size:
            largest = np.nanmax(values[idx], axis=1)
            estimates[idx] = largest ** self._p / np.minimum(1.0, largest)
        return estimates


class DyadicOneSidedPPSKernel(BatchKernel):
    """Vectorized dyadic (J-style) estimator for ``RG_p+`` under unit PPS.

    The scalar :class:`~repro.estimators.dyadic.DyadicEstimator` evaluates
    the outcome lower-bound curve at three seeds — the right ends of the
    outcome's dyadic interval ``I_l = (2^{-(l+1)}, 2^{-l}]``, of its
    parent, and at 1 — and telescopes.  Under coordinated PPS with
    ``tau* = 1`` over two-entry tuples the lower-bound curve is closed
    form: at hypothetical seed ``x >= rho``,

        lb(x) = max(0, v1 - a(x))^p   if entry 1 is sampled and v1 >= x,
                0                      otherwise,

    with ``a(x) = v2`` while the sampled ``v2`` stays at or above ``x``
    and ``a(x) = x`` once the second entry is hidden (its strict upper
    bound is the threshold, which equals the seed at unit rate).  The
    kernel reproduces the scalar arithmetic branch for branch, including
    the exact power-of-two level fix-ups, so parity is at machine
    precision.

    A shared non-unit rate is handled *natively* (thresholds ``x * tau``)
    rather than through :class:`RescaledPPSKernel`: the dyadic gain is
    divided by interval widths as small as the seed, so the rescaling
    detour's last-ulp differences in ``v1 - a(x)`` would be amplified far
    beyond the engine parity tolerance.  Evaluating the same expressions
    the scalar estimator evaluates keeps the division exact.
    """

    def __init__(
        self, p: float = 1.0, rate: float = 1.0, name: Optional[str] = None
    ) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._p = float(p)
        self._rate = float(rate)
        self.name = name if name is not None else DyadicEstimator.name

    @property
    def p(self) -> float:
        """The range exponent the kernel was built for."""
        return self._p

    @property
    def rate(self) -> float:
        """The shared PPS rate ``tau*`` of the scheme the kernel serves."""
        return self._rate

    def integration_breakpoints(self, lower: float) -> tuple:
        """The dyadic grid ``2^{-k}`` down to ``lower`` — the seeds where
        the estimate jumps between levels."""
        points = []
        k = 1
        while True:
            point = float(np.ldexp(1.0, -k))
            if point <= lower:
                break
            points.append(point)
            k += 1
        return tuple(points)

    @staticmethod
    def _levels(seeds: np.ndarray) -> np.ndarray:
        """Vectorized dyadic level with the scalar estimator's fix-ups."""
        levels = np.floor(-np.log2(seeds)).astype(np.int64)
        while True:
            mask = np.ldexp(1.0, -(levels + 1)) >= seeds
            if not mask.any():
                break
            levels[mask] += 1
        while True:
            mask = seeds > np.ldexp(1.0, -levels)
            if not mask.any():
                break
            levels[mask] -= 1
        return levels

    def _lower_bound(
        self, x: np.ndarray, v1: np.ndarray, v2: np.ndarray
    ) -> np.ndarray:
        """``lb(x)`` elementwise (``v1``/``v2`` NaN = entry unsampled)."""
        threshold = x * self._rate if self._rate != 1.0 else x
        with np.errstate(invalid="ignore"):
            known1 = ~np.isnan(v1) & (v1 >= threshold)
            anchor = np.where(~np.isnan(v2) & (v2 >= threshold), v2, threshold)
            gap = np.where(known1, np.maximum(0.0, v1 - anchor), 0.0)
        return gap ** self._p

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Per-item estimates for ``batch``, shape ``(len(batch),)``."""
        u, v1, v2 = _split_two_entry(batch)
        levels = self._levels(u)
        upper_of_level = np.ldexp(1.0, -levels)
        coarser = np.minimum(1.0, np.ldexp(1.0, -(levels - 1)))
        width = np.ldexp(1.0, -(levels + 1))
        gain = self._lower_bound(upper_of_level, v1, v2) - self._lower_bound(
            coarser, v1, v2
        )
        baseline = self._lower_bound(np.ones_like(u), v1, v2)
        return np.maximum(0.0, gain / width + baseline)


class OrderOptimalTableKernel(BatchKernel):
    """Vectorized lookup of an order-optimal estimator's finite table.

    The scalar :class:`~repro.estimators.order_optimal.OrderOptimalEstimator`
    maps an outcome to ``(seed-interval index, sampled pattern)`` and looks
    the pair up in a dict.  This kernel precomputes the same table as a
    dense array indexed by interval and per-entry level codes (0 =
    unsampled, ``j+1`` = the ``j``-th grid level), so a whole batch reduces
    to ``searchsorted`` plus one fancy-indexing gather.  Outcomes outside
    the constructed table raise ``KeyError`` exactly like the scalar
    estimator.
    """

    def __init__(self, estimator: OrderOptimalEstimator) -> None:
        problem = estimator.problem
        self._dimension = problem.scheme.dimension
        self._highs = np.asarray([iv.high for iv in problem.intervals])
        self._levels = [np.asarray(entry) for entry in problem.domain.levels]
        shape = [len(problem.intervals)] + [len(l) + 1 for l in self._levels]
        table = np.full(shape, np.nan)
        for (interval_index, pattern), value in estimator.table.items():
            codes = self._encode_pattern(pattern)
            if codes is not None:
                table[(interval_index, *codes)] = value
        self._table = table
        self.name = estimator.name

    def _encode_pattern(self, pattern) -> Optional[tuple]:
        codes = []
        for i, v in enumerate(pattern):
            if v is None:
                codes.append(0)
                continue
            levels = self._levels[i]
            j = int(np.searchsorted(levels, v))
            if j >= len(levels) or levels[j] != v:
                return None  # off-grid pattern: unreachable from the domain
            codes.append(j + 1)
        return tuple(codes)

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Table-gathered estimates for ``batch``, shape ``(len(batch),)``.

        Raises
        ------
        ValueError
            If the batch dimension differs from the table's.
        KeyError
            If an outcome falls off the declared finite domain grid.
        """
        if batch.dimension != self._dimension:
            raise ValueError(
                f"batch has dimension {batch.dimension}, table expects "
                f"{self._dimension}"
            )
        n = len(batch)
        interval_idx = np.minimum(
            np.searchsorted(self._highs, batch.seeds, side="left"),
            len(self._highs) - 1,
        )
        indices = [interval_idx]
        for i, levels in enumerate(self._levels):
            column = batch.values[:, i]
            sampled = ~np.isnan(column)
            codes = np.zeros(n, dtype=np.intp)
            if sampled.any():
                vals = column[sampled]
                j = np.searchsorted(levels, vals)
                j = np.minimum(j, len(levels) - 1)
                if not np.all(levels[j] == vals):
                    raise KeyError(
                        "outcome value off the declared finite domain grid"
                    )
                codes[sampled] = j + 1
            indices.append(codes)
        estimates = self._table[tuple(indices)]
        if np.isnan(estimates).any():
            raise KeyError(
                "outcome was not covered by the construction; is the data "
                "vector inside the declared finite domain?"
            )
        return estimates


class RescaledPPSKernel(BatchKernel):
    """A unit-rate kernel lifted to a shared non-unit PPS rate ``tau``.

    The inclusion event ``w >= u * tau`` equals ``w / tau >= u`` and the
    targets the closed-form kernels cover are homogeneous of degree ``p``,
    so a batch under the scaled scheme is estimated by rescaling its
    values into the unit problem, applying the unit kernel, and scaling
    the estimates back by ``tau^p`` — an exact reparametrisation (the
    same one the scalar closed forms apply per outcome), not an
    approximation.
    """

    def __init__(
        self, inner: BatchKernel, rate: float, degree: float,
        name: Optional[str] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._inner = inner
        self._rate = float(rate)
        self._scale = float(rate) ** float(degree)
        self.name = name if name is not None else inner.name

    @property
    def inner(self) -> BatchKernel:
        """The wrapped unit-rate kernel."""
        return self._inner

    @property
    def rate(self) -> float:
        """The shared PPS rate ``tau`` the kernel rescales by."""
        return self._rate

    def integration_breakpoints(self, lower: float) -> tuple:
        """Delegates to the unit kernel (the seed axis is not rescaled)."""
        return self._inner.integration_breakpoints(lower)

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Rescaled estimates for ``batch``, shape ``(len(batch),)``."""
        unit_scheme = CoordinatedScheme(
            [LinearThreshold(1.0)] * batch.dimension
        )
        scaled = BatchOutcome(
            seeds=batch.seeds,
            values=batch.values / self._rate,
            scheme=unit_scheme,
        )
        return self._scale * self._inner.estimate_batch(scaled)


class SymmetrizedKernel(BatchKernel):
    """Vectorized counterpart of
    :class:`~repro.estimators.symmetrized.SymmetrizedRangeEstimator`:
    the inner one-sided kernel applied to the batch and to the batch with
    its two value columns swapped, summed — ``RG_p`` as forward plus
    backward ``RG_p+`` under one shared seed."""

    def __init__(self, inner: BatchKernel, name: Optional[str] = None) -> None:
        self._inner = inner
        self.name = name if name is not None else f"sym({inner.name})"

    @property
    def inner(self) -> BatchKernel:
        """The wrapped one-sided kernel."""
        return self._inner

    def integration_breakpoints(self, lower: float) -> tuple:
        """Delegates to the one-sided kernel (both passes share the seed)."""
        return self._inner.integration_breakpoints(lower)

    def estimate_batch(self, batch: BatchOutcome) -> np.ndarray:
        """Forward-plus-backward estimates, shape ``(len(batch),)``."""
        forward = self._inner.estimate_batch(batch)
        return forward + self._inner.estimate_batch(
            batch.select_instances((1, 0))
        )


def _unit_pps_kernel(estimator: Estimator) -> Optional[BatchKernel]:
    """The unit-rate two-entry PPS kernel matching a scalar estimator."""
    if isinstance(estimator, LStarOneSidedRangePPS):
        return LStarOneSidedPPSKernel(estimator.p, name=estimator.name)
    if isinstance(estimator, UStarOneSidedRangePPS):
        return UStarOneSidedPPSKernel(estimator.p, name=estimator.name)
    if isinstance(estimator, LStarEstimator) and isinstance(
        estimator.target, OneSidedRange
    ):
        return LStarOneSidedPPSKernel(estimator.target.p, name=estimator.name)
    if isinstance(estimator, LStarEstimator) and isinstance(
        estimator.target, ExponentiatedRange
    ):
        return LStarRangePPSKernel(estimator.target.p, name=estimator.name)
    if isinstance(estimator, LStarEstimator) and isinstance(
        estimator.target, MinPower
    ):
        return MinPowerPPSKernel(estimator.target.p, name=estimator.name)
    if isinstance(estimator, LStarEstimator) and isinstance(
        estimator.target, MaxPower
    ):
        return MaxPowerPPSKernel(estimator.target.p, name=estimator.name)
    if isinstance(estimator, HorvitzThompsonEstimator) and isinstance(
        estimator.target, OneSidedRange
    ):
        return HTOneSidedPPSKernel(
            estimator.target.p, tolerance=estimator.tolerance, name=estimator.name
        )
    if isinstance(estimator, HorvitzThompsonEstimator) and isinstance(
        estimator.target, ExponentiatedRange
    ):
        return HTRangePPSKernel(
            estimator.target.p, tolerance=estimator.tolerance, name=estimator.name
        )
    return None


def _kernel_degree(kernel: BatchKernel) -> float:
    """Homogeneity degree of the target behind a closed-form kernel."""
    return float(kernel.p)


def resolve_kernel(
    estimator: Estimator, scheme: CoordinatedScheme
) -> Optional[BatchKernel]:
    """The vectorized kernel equivalent to ``estimator`` under ``scheme``.

    Returns ``None`` when no kernel applies (the callers then fall back to
    the scalar path).  The generic :class:`LStarEstimator` resolves to the
    closed-form L* kernel when its target is ``RG_p+`` and the scheme is
    unit-rate PPS — the same situation in which the scalar closed form is
    valid, and the pairing the scalar test-suite already validates.

    Coordinated PPS schemes whose entries share one *non-unit* rate
    ``tau`` resolve to the matching unit kernel wrapped in
    :class:`RescaledPPSKernel`; symmetrized range estimators resolve to
    their one-sided kernel wrapped in :class:`SymmetrizedKernel`.
    Per-entry rates that differ stay on the scalar path.
    """
    if not isinstance(scheme, CoordinatedScheme):
        return None
    if isinstance(estimator, OrderOptimalEstimator):
        if estimator.problem.scheme is scheme or (
            isinstance(estimator.problem.scheme, CoordinatedScheme)
            and estimator.problem.scheme.thresholds == scheme.thresholds
        ):
            return OrderOptimalTableKernel(estimator)
        return None
    if isinstance(estimator, SymmetrizedRangeEstimator):
        if scheme.dimension != 2:
            return None
        inner = resolve_kernel(estimator.inner, scheme)
        if inner is None:
            return None
        return SymmetrizedKernel(inner, name=estimator.name)
    rate = uniform_pps_rate(scheme, dimension=2)
    if rate is None:
        return None
    if isinstance(estimator, DyadicEstimator) and isinstance(
        estimator.target, OneSidedRange
    ):
        # Rates are handled natively (see the kernel docstring), so the
        # dyadic kernel never goes through the rescaling wrapper.
        return DyadicOneSidedPPSKernel(
            estimator.target.p, rate=rate, name=estimator.name
        )
    kernel = _unit_pps_kernel(estimator)
    if kernel is None:
        return None
    if abs(rate - 1.0) <= 1e-12:
        return kernel
    return RescaledPPSKernel(
        kernel, rate=rate, degree=_kernel_degree(kernel), name=kernel.name
    )
