"""Batch query kernels for the sketch-serving layer.

:class:`~repro.serving.store.SketchStore` answers ``sum`` and
``distinct`` queries over many key-groups at once.  Per group the
arithmetic is elementary — a Horvitz–Thompson subset sum over a PPS
sample (``sum of max(w, tau*)``) or a HIP cardinality estimate over an
all-distances sketch (``sum of 1/p``) — but a store may hold thousands
of groups, so the serving layer batches the per-group reductions into
one kernel call here.

Both kernels implement the scalar reference path and a vectorized NumPy
path behind the shared :class:`~repro.api.backend.BackendPolicy`
(``resolve_exact``: these are closed-form reductions with no
kernel-availability question).  The vectorized path concatenates every
group's entries into one flat array and reduces per group with
``np.bincount`` — one pass, no Python-level loop over entries.  The two
paths agree to floating-point accumulation order (NumPy's pairwise
summation versus the scalar left fold); the accuracy regression tests
pin the serving layer's answers to the scalar path.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..api.backend import BackendPolicy, BackendSpec

__all__ = ["batch_hip_counts", "batch_hip_horizon_counts", "batch_ht_sums"]


def batch_ht_sums(
    weight_groups: Sequence[Sequence[float]],
    tau_star: float,
    backend: BackendSpec = None,
) -> List[float]:
    """Horvitz–Thompson subset sums of many PPS sample groups at once.

    Under PPS with rate ``tau*`` a sampled item of weight ``w`` has
    inclusion probability ``min(1, w / tau*)``, so its HT contribution is
    ``w / min(1, w / tau*) = max(w, tau*)`` — each group's estimate is a
    single reduction over its sampled weights.

    Parameters
    ----------
    weight_groups:
        One sequence of *sampled* item weights per group (possibly
        empty).
    tau_star:
        The shared PPS rate the samples were drawn with (positive).
    backend:
        ``None`` (process-wide policy), a mode string, or a
        :class:`~repro.api.backend.BackendPolicy`.  Dispatch sizes the
        input by the total number of entries across groups.

    Returns
    -------
    list of float
        Per-group HT subset-sum estimates, in input order.
    """
    if tau_star <= 0:
        raise ValueError("tau_star must be positive")
    sizes = [len(group) for group in weight_groups]
    resolved = BackendPolicy.coerce(backend).resolve_exact(sum(sizes))
    if resolved == "scalar":
        return [
            sum(max(float(w), tau_star) for w in group)
            for group in weight_groups
        ]
    if not weight_groups:
        return []
    if any(sizes):
        flat = np.concatenate(
            [np.asarray(group, dtype=float) for group in weight_groups]
        )
    else:
        flat = np.empty(0)
    ids = np.repeat(np.arange(len(weight_groups)), sizes)
    totals = np.bincount(
        ids, weights=np.maximum(flat, tau_star), minlength=len(weight_groups)
    )
    return [float(t) for t in totals]


def batch_hip_counts(
    probability_groups: Sequence[Sequence[float]],
    backend: BackendSpec = None,
) -> List[float]:
    """HIP cardinality estimates of many sketch groups at once.

    Each group holds the HIP inclusion probabilities of one sketch's
    retained entries (restricted upstream to the query radius); the
    estimate of how many items the entries stand for is the sum of
    inverse probabilities, ``sum of 1/p``.

    Parameters
    ----------
    probability_groups:
        One sequence of inclusion probabilities per group; every value
        must lie in ``(0, 1]``.
    backend:
        ``None`` (process-wide policy), a mode string, or a
        :class:`~repro.api.backend.BackendPolicy`.  Dispatch sizes the
        input by the total number of entries across groups.

    Returns
    -------
    list of float
        Per-group cardinality estimates, in input order.
    """
    sizes = [len(group) for group in probability_groups]
    resolved = BackendPolicy.coerce(backend).resolve_exact(sum(sizes))
    if resolved == "scalar":
        out = []
        for group in probability_groups:
            total = 0.0
            for p in group:
                p = float(p)
                if not 0.0 < p <= 1.0:
                    raise ValueError(
                        f"inclusion probabilities must be in (0, 1], got {p}"
                    )
                total += 1.0 / p
            out.append(total)
        return out
    if not probability_groups:
        return []
    if any(sizes):
        flat = np.concatenate(
            [np.asarray(group, dtype=float) for group in probability_groups]
        )
    else:
        flat = np.empty(0)
    if flat.size and (np.any(flat <= 0.0) or np.any(flat > 1.0)):
        bad = flat[(flat <= 0.0) | (flat > 1.0)][0]
        raise ValueError(
            f"inclusion probabilities must be in (0, 1], got {bad}"
        )
    ids = np.repeat(np.arange(len(probability_groups)), sizes)
    totals = np.bincount(
        ids,
        weights=np.divide(1.0, flat, out=np.zeros_like(flat), where=flat > 0),
        minlength=len(probability_groups),
    )
    return [float(t) for t in totals]


def batch_hip_horizon_counts(
    column_groups: Sequence[Sequence],
    horizons: Sequence[float],
    backend: BackendSpec = None,
) -> List[float]:
    """HIP cardinality estimates of many sketch groups, each at its own horizon.

    The serving layer's ``distinct`` query masks a temporal ADS by a
    time horizon before the ``sum of 1/p`` reduction.  Coalescing
    concurrent queries with *different* horizons needs the masking
    inside the kernel call: each group carries its full ``(distance,
    threshold)`` columns plus a horizon, the kernel masks per group and
    hands the surviving probabilities to :func:`batch_hip_counts` — so a
    one-group call is exactly the sequential code path (same masking,
    same dispatch size, same reduction), which is what makes coalesced
    answers bit-identical to single-caller answers.

    Parameters
    ----------
    column_groups:
        One ``(distances, thresholds)`` array pair per group (equal
        lengths within a pair; thresholds in ``(0, 1]``).
    horizons:
        One inclusive time horizon per group (``math.inf`` for all of
        time).
    backend:
        ``None`` (process-wide policy), a mode string, or a
        :class:`~repro.api.backend.BackendPolicy`.  Dispatch sizes the
        input by the total number of entries *surviving* the masks,
        matching what per-group sequential calls would resolve on.

    Returns
    -------
    list of float
        Per-group cardinality estimates, in input order.
    """
    if len(column_groups) != len(horizons):
        raise ValueError(
            f"got {len(column_groups)} column groups but "
            f"{len(horizons)} horizons"
        )
    masked = []
    for (distances, thresholds), horizon in zip(column_groups, horizons):
        distances = np.asarray(distances, dtype=float)
        thresholds = np.asarray(thresholds, dtype=float)
        if distances.shape != thresholds.shape:
            raise ValueError(
                "distance and threshold columns must have equal shapes, "
                f"got {distances.shape} != {thresholds.shape}"
            )
        masked.append(thresholds[distances <= float(horizon)])
    return batch_hip_counts(masked, backend=backend)
