"""Batched exact moments: quadrature over the seed, through the kernels.

The analysis layer's :func:`repro.analysis.variance.moments` evaluates
``E[est | v]`` and ``E[est^2 | v]`` by adaptive quadrature that calls the
scalar ``Estimator.estimate_for`` once per quadrature node — one
``Outcome`` object and one Python dispatch per node, hundreds of nodes
per vector, repeated for every vector of an experiment sweep.  That loop
is the hot path of the exact-moment experiments (E8 dominance, E11
ablation), and its integrand is exactly what the engine kernels already
vectorize.

:func:`batch_moments` computes the same two integrals for a whole batch
of vectors with a *fixed, breakpoint-aware* Gauss–Legendre rule:

* panel edges are the scheme's per-vector information breakpoints (the
  seeds at which a sampled entry drops out) plus the kernel's intrinsic
  :meth:`~repro.engine.kernels.BatchKernel.integration_breakpoints`
  (e.g. the dyadic grid of the J-style estimator), so every panel is a
  smooth piece of the estimate curve;
* the leftmost panel is refined geometrically toward the lower limit,
  which handles the integrable ``log``/power singularities the L*-type
  estimates have as the seed approaches zero;
* all (vector, node) pairs are packed into **one**
  :class:`~repro.engine.batch_outcome.BatchOutcome` and estimated with a
  single kernel call; per-vector sums then reduce the node values to the
  two moments.

On smooth panels Gauss–Legendre converges spectrally, so the default
order reproduces the adaptive reference to well below the scalar/engine
parity tolerance (enforced by ``tests/engine/test_moments.py``).  When
the backend policy resolves to ``"scalar"``, or no kernel covers the
estimator/scheme pair under ``"auto"``, the function falls back to the
scalar :func:`~repro.analysis.variance.moments` loop — same values,
original code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.backend import BackendPolicy, BackendSpec
from ..core.functions import EstimationTarget
from ..core.integration import refine_points
from ..core.schemes import CoordinatedScheme, MonotoneSamplingScheme
from ..estimators.base import Estimator
from .batch_outcome import BatchOutcome
from .kernels import resolve_kernel

__all__ = ["approx_node_count", "batch_moments", "batch_variances"]

#: Lower integration limit (matches the scalar quadrature's default).
LOWER_LIMIT = 1e-12

#: Gauss–Legendre order per smooth panel.
GL_ORDER = 24

#: Geometric refinement ratio for the leftmost (singular) panel.
REFINE_RATIO = 4.0

_GL_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _gauss_legendre(order: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached Gauss–Legendre nodes and weights on ``[-1, 1]``."""
    if order not in _GL_CACHE:
        _GL_CACHE[order] = np.polynomial.legendre.leggauss(order)
    return _GL_CACHE[order]


def _panel_edges(
    breakpoints: Sequence[float], lower: float, ratio: float
) -> np.ndarray:
    """Panel edges over ``[lower, 1]``: breakpoints plus a geometric
    refinement of the leftmost panel toward ``lower``.

    The refinement bounds each leftmost sub-panel's edge ratio by
    ``ratio``, which is what keeps fixed-order Gauss–Legendre accurate on
    integrands with an integrable singularity at the lower limit.
    """
    edges = refine_points(lower, 1.0, breakpoints)
    first = edges[1]
    refined = []
    point = first / ratio
    while point > lower * ratio:
        refined.append(point)
        point /= ratio
    return np.asarray(sorted(set(edges) | set(refined)))


def approx_node_count(
    dimension: int, lower: float = LOWER_LIMIT, order: int = GL_ORDER
) -> int:
    """Rough quadrature nodes per vector, for sizing dispatch decisions.

    Breakpoints are per-entry and the geometric refinement adds a
    logarithmic number of panels; callers multiply by their vector count
    and feed the product to :meth:`BackendPolicy.resolve` so the
    configured ``auto_threshold`` measures the real node workload.
    """
    panels = dimension + 1 + int(np.log(1.0 / lower) / np.log(REFINE_RATIO))
    return order * panels


def _nodes_for(edges: np.ndarray, order: int) -> Tuple[np.ndarray, np.ndarray]:
    """All Gauss–Legendre nodes and weights for the given panel edges."""
    g, gw = _gauss_legendre(order)
    lo = edges[:-1]
    hi = edges[1:]
    half = 0.5 * (hi - lo)
    mid = 0.5 * (hi + lo)
    nodes = (mid[:, None] + half[:, None] * g[None, :]).reshape(-1)
    weights = (half[:, None] * gw[None, :]).reshape(-1)
    return nodes, weights


def batch_moments(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vectors: Sequence[Sequence[float]],
    *,
    backend: BackendSpec = None,
    lower: float = LOWER_LIMIT,
    order: int = GL_ORDER,
    rtol: float = 1e-8,
) -> List["MomentReport"]:
    """Exact mean and second moment of ``estimator`` on every vector.

    Equivalent to ``[moments(estimator, scheme, target, v, rtol=rtol) for
    v in vectors]`` but batched through the engine kernel matching
    ``estimator`` when the backend policy allows it; ``rtol`` only
    applies on the scalar fallback.  The dispatch decision sizes the
    input as vectors × quadrature nodes, so even short vector sweeps
    engage the kernels (each vector costs hundreds of node evaluations).

    Returns
    -------
    list of MomentReport
        One report per vector, in input order.
    """
    from ..analysis.variance import MomentReport, moments

    vectors = [tuple(float(x) for x in v) for v in vectors]
    if not vectors:
        return []
    policy = BackendPolicy.coerce(backend)
    kernel = (
        resolve_kernel(estimator, scheme)
        if isinstance(scheme, CoordinatedScheme)
        else None
    )
    resolved = policy.resolve(
        len(vectors) * approx_node_count(len(vectors[0]), lower, order)
    )
    if resolved == "scalar" or kernel is None:
        if resolved == "vectorized" and kernel is None:
            raise ValueError(
                "no vectorized kernel covers this estimator/scheme pair; "
                "use backend='scalar' or backend='auto'"
            )
        return [
            moments(estimator, scheme, target, v, rtol=rtol) for v in vectors
        ]

    extra = kernel.integration_breakpoints(lower)
    node_list: List[np.ndarray] = []
    weight_list: List[np.ndarray] = []
    counts = np.empty(len(vectors), dtype=np.intp)
    for k, vector in enumerate(vectors):
        breakpoints = list(scheme.breakpoints_for_vector(vector)) + list(extra)
        edges = _panel_edges(breakpoints, lower, REFINE_RATIO)
        nodes, weights = _nodes_for(edges, order)
        node_list.append(nodes)
        weight_list.append(weights)
        counts[k] = nodes.shape[0]
    seeds = np.concatenate(node_list)
    weights = np.concatenate(weight_list)
    matrix = np.asarray(vectors, dtype=float)
    rows = np.repeat(matrix, counts, axis=0)
    batch = BatchOutcome.sample_vectors(scheme, rows, seeds)
    estimates = kernel.estimate_batch(batch)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    means = np.add.reduceat(weights * estimates, offsets)
    seconds = np.add.reduceat(weights * estimates * estimates, offsets)
    return [
        MomentReport(
            estimator=estimator.name,
            vector=vector,
            true_value=target(vector),
            mean=float(means[k]),
            second_moment=float(seconds[k]),
        )
        for k, vector in enumerate(vectors)
    ]


def batch_variances(
    estimator: Estimator,
    scheme: MonotoneSamplingScheme,
    target: EstimationTarget,
    vectors: Sequence[Sequence[float]],
    *,
    backend: BackendSpec = None,
    rtol: float = 1e-8,
) -> List[float]:
    """Exact variances assuming unbiasedness, one per vector.

    The batched counterpart of :func:`repro.analysis.variance.variance`:
    ``E[est^2] - f(v)^2``.  On the engine path the second moments come
    from the same node evaluations :func:`batch_moments` makes anyway;
    on the scalar fallback only the ``E[est^2]`` quadrature runs —
    exactly the single integral :func:`~repro.analysis.variance.variance`
    evaluates, not the two :func:`~repro.analysis.variance.moments` would.
    """
    from ..analysis.variance import variance

    vectors = [tuple(float(x) for x in v) for v in vectors]
    if not vectors:
        return []
    policy = BackendPolicy.coerce(backend)
    kernel = (
        resolve_kernel(estimator, scheme)
        if isinstance(scheme, CoordinatedScheme)
        else None
    )
    resolved = policy.resolve(
        len(vectors) * approx_node_count(len(vectors[0]))
    )
    if resolved == "scalar" or kernel is None:
        if resolved == "vectorized" and kernel is None:
            raise ValueError(
                "no vectorized kernel covers this estimator/scheme pair; "
                "use backend='scalar' or backend='auto'"
            )
        return [
            variance(estimator, scheme, target, v, rtol=rtol)
            for v in vectors
        ]
    reports = batch_moments(
        estimator, scheme, target, vectors, backend="vectorized", rtol=rtol
    )
    return [r.variance_if_unbiased for r in reports]
