"""A small weighted-graph container used by the sketch substrate.

The all-distances-sketch application of Section 7 needs single-source
shortest paths over (possibly weighted) graphs.  Rather than depend on an
external graph library at runtime, the library carries its own compact
adjacency-list graph; ``networkx`` is used only in the test-suite as an
independent oracle for the shortest-path implementation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Graph"]

Node = Hashable


class Graph:
    """An undirected (optionally directed) weighted graph."""

    def __init__(self, directed: bool = False) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        self._directed = directed

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        return self._directed

    def add_node(self, node: Node) -> None:
        self._adj.setdefault(node, {})

    def add_edge(self, a: Node, b: Node, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError("edge weights must be nonnegative")
        if a == b:
            # Self loops carry no information for shortest paths; ignore.
            self.add_node(a)
            return
        self.add_node(a)
        self.add_node(b)
        self._adj[a][b] = float(weight)
        if not self._directed:
            self._adj[b][a] = float(weight)

    def add_edges(self, edges: Iterable[Tuple[Node, Node, float]]) -> None:
        for a, b, w in edges:
            self.add_edge(a, b, w)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        total = sum(len(neigh) for neigh in self._adj.values())
        return total if self._directed else total // 2

    def nodes(self) -> List[Node]:
        return list(self._adj.keys())

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """Mapping neighbour → edge weight (a copy)."""
        return dict(self._adj.get(node, {}))

    def degree(self, node: Node) -> int:
        return len(self._adj.get(node, {}))

    def edge_weight(self, a: Node, b: Node) -> Optional[float]:
        return self._adj.get(a, {}).get(b)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate edges; undirected edges are reported once."""
        seen = set()
        for a, neighbours in self._adj.items():
            for b, w in neighbours.items():
                if self._directed:
                    yield a, b, w
                else:
                    key = (a, b) if repr(a) <= repr(b) else (b, a)
                    if key not in seen:
                        seen.add(key)
                        yield key[0], key[1], w

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = Graph(directed=self._directed)
        for node in keep:
            if node in self._adj:
                sub.add_node(node)
        for a, b, w in self.edges():
            if a in keep and b in keep:
                sub.add_edge(a, b, w)
        return sub
