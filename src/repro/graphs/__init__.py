"""Graph substrate: weighted graphs, Dijkstra, generators, closeness similarity."""

from .dijkstra import dijkstra_order, shortest_path_lengths
from .generators import (
    erdos_renyi_graph,
    grid_graph,
    preferential_attachment_graph,
    random_edge_lengths,
    small_world_graph,
)
from .graph import Graph
from .similarity import (
    FixedProbabilityThreshold,
    SimilarityEstimate,
    estimate_closeness_similarity,
    exact_closeness_similarity,
    exponential_decay,
    inverse_decay,
    threshold_decay,
)

__all__ = [
    "dijkstra_order",
    "shortest_path_lengths",
    "erdos_renyi_graph",
    "grid_graph",
    "preferential_attachment_graph",
    "random_edge_lengths",
    "small_world_graph",
    "Graph",
    "FixedProbabilityThreshold",
    "SimilarityEstimate",
    "estimate_closeness_similarity",
    "exact_closeness_similarity",
    "exponential_decay",
    "inverse_decay",
    "threshold_decay",
]
