"""Closeness similarity between graph nodes: exact and sketch-estimated.

Section 7 of the paper points to the closeness-similarity application
(Cohen et al., COSN 2013): for two nodes ``u`` and ``v`` and a
non-increasing decay function ``alpha``,

    sim(u, v) = sum_i alpha(max(d_vi, d_ui)) / sum_i alpha(min(d_vi, d_ui)).

Both sums range over all nodes ``i``; the numerator rewards nodes that are
close to *both* endpoints while the denominator normalises by nodes close
to *either*, so the ratio lies in ``[0, 1]`` and equals 1 only when the
two distance profiles coincide.

The sketch-based estimator follows the paper's recipe: the all-distances
sketches of ``u`` and ``v`` are coordinated samples (shared node ranks);
restricted to one node ``i`` and conditioned via HIP, membership in each
sketch is a shared-seed threshold event, i.e. a two-entry monotone
sampling scheme.  Applying the L* estimator per node to the tuple
``(alpha(d_vi), alpha(d_ui))`` — target ``min`` for the numerator, ``max``
for the denominator — and summing yields (conditionally) unbiased
estimates of both sums, and their ratio estimates the similarity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..api.backend import BackendPolicy, BackendSpec
from ..core.functions import MaxPower, MinPower
from ..core.outcome import Outcome
from ..core.schemes import CoordinatedScheme, ThresholdFunction
from ..estimators.base import Estimator
from ..estimators.lstar import LStarEstimator
from .dijkstra import shortest_path_lengths
from .graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..sketches.ads import AllDistancesSketch

__all__ = [
    "exponential_decay",
    "inverse_decay",
    "threshold_decay",
    "exact_closeness_similarity",
    "SimilarityEstimate",
    "estimate_closeness_similarity",
    "FixedProbabilityThreshold",
]

Node = Hashable


# ----------------------------------------------------------------------
# Decay functions alpha
# ----------------------------------------------------------------------
def exponential_decay(scale: float = 1.0) -> Callable[[float], float]:
    """``alpha(d) = exp(-d / scale)``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return lambda d: math.exp(-d / scale)


def inverse_decay(offset: float = 1.0) -> Callable[[float], float]:
    """``alpha(d) = 1 / (offset + d)``."""
    if offset <= 0:
        raise ValueError("offset must be positive")
    return lambda d: 1.0 / (offset + d)


def threshold_decay(radius: float) -> Callable[[float], float]:
    """``alpha(d) = 1`` for ``d <= radius`` and 0 beyond (ball indicator)."""
    if radius < 0:
        raise ValueError("radius must be nonnegative")
    return lambda d: 1.0 if d <= radius else 0.0


# ----------------------------------------------------------------------
# Exact similarity
# ----------------------------------------------------------------------
def exact_closeness_similarity(
    graph: Graph,
    u: Node,
    v: Node,
    alpha: Callable[[float], float],
    unreachable: float = math.inf,
) -> float:
    """Exact closeness similarity by two full shortest-path computations.

    Nodes unreachable from an endpoint are treated as infinitely far
    (``alpha(inf)`` must be 0 or finite; the standard decays above give 0).
    """
    du = shortest_path_lengths(graph, u)
    dv = shortest_path_lengths(graph, v)
    numerator = 0.0
    denominator = 0.0
    for node in graph.nodes():
        a = du.get(node, unreachable)
        b = dv.get(node, unreachable)
        hi = alpha(max(a, b)) if max(a, b) != math.inf else 0.0
        lo = alpha(min(a, b)) if min(a, b) != math.inf else 0.0
        numerator += hi
        denominator += lo
    return numerator / denominator if denominator > 0 else 1.0


# ----------------------------------------------------------------------
# Sketch-based estimation
# ----------------------------------------------------------------------
class FixedProbabilityThreshold(ThresholdFunction):
    """Threshold of a pure inclusion event: sampled iff ``seed <= p``.

    HIP conditioning turns ADS membership into exactly this event, with
    ``p`` the recorded HIP probability.  The threshold is 0 for seeds up
    to ``p`` (any positive value is reported) and effectively infinite
    beyond.
    """

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = float(probability)

    def __call__(self, u: float) -> float:
        return 0.0 if u <= self.probability else math.inf

    def inclusion_probability(self, weight: float) -> float:
        if weight <= 0:
            return 0.0
        return self.probability


@dataclass(frozen=True)
class SimilarityEstimate:
    """Sketch-based similarity estimate with its two sum components."""

    numerator: float
    denominator: float

    @property
    def value(self) -> float:
        if self.denominator <= 0:
            return 1.0
        return min(1.0, max(0.0, self.numerator / self.denominator))


def estimate_closeness_similarity(
    sketch_u: AllDistancesSketch,
    sketch_v: AllDistancesSketch,
    ranks: Mapping[Node, float],
    alpha: Callable[[float], float],
    estimator_factory: Optional[Callable[[object], Estimator]] = None,
    backend: BackendSpec = None,
) -> SimilarityEstimate:
    """Estimate ``sim(u, v)`` from the two all-distances sketches.

    Parameters
    ----------
    sketch_u, sketch_v:
        Coordinated all-distances sketches (built with shared ranks).
    ranks:
        The shared rank assignment; the rank of a node is the shared seed
        of its per-node monotone sampling scheme.
    alpha:
        Non-increasing distance decay.
    estimator_factory:
        Builds the per-item estimator from a target; defaults to the
        generic L* estimator, per the paper's application.
    backend:
        Backend policy for the default (L*) estimator: the per-node L*
        estimates under the HIP step schemes have closed forms (see
        :func:`_batched_similarity`), and the vectorized path evaluates
        the whole union of sketch entries in a handful of array
        expressions.  A custom ``estimator_factory`` always takes the
        scalar per-outcome path.  The dispatch decision sizes the input
        as two per-item estimates per union node.
    """
    union = set(sketch_u.entries) | set(sketch_v.entries)
    if estimator_factory is None:
        resolved = BackendPolicy.coerce(backend).resolve(2 * len(union))
        if resolved != "scalar":
            return _batched_similarity(sketch_u, sketch_v, ranks, alpha, union)
        estimator_factory = LStarEstimator
    numerator_target = MinPower(p=1.0)   # alpha(max distance) = min of the alphas
    denominator_target = MaxPower(p=1.0)  # alpha(min distance) = max of the alphas
    numerator_estimator = estimator_factory(numerator_target)
    denominator_estimator = estimator_factory(denominator_target)

    numerator = 0.0
    denominator = 0.0
    for node in union:
        outcome = _make_node_outcome(node, sketch_u, sketch_v, ranks, alpha)
        numerator += numerator_estimator.estimate(outcome)
        denominator += denominator_estimator.estimate(outcome)
    return SimilarityEstimate(numerator=numerator, denominator=denominator)


def _batched_similarity(
    sketch_u: AllDistancesSketch,
    sketch_v: AllDistancesSketch,
    ranks: Mapping[Node, float],
    alpha: Callable[[float], float],
    union,
) -> SimilarityEstimate:
    """Closed-form vectorized L* similarity over the union of entries.

    Per node the HIP scheme is a pair of pure inclusion events with
    probabilities ``(p_u, p_v)``, so each lower-bound curve is a step
    function and the L* integral (eq. 31) telescopes.  Writing ``w_u``,
    ``w_v`` for the decayed distances and ``m1 <= m2`` for the sorted
    probabilities:

    * **min target** (numerator): the curve is ``min(w_u, w_v)`` up to
      ``m1`` and 0 beyond (an entry hidden at ``u`` may be 0), so the
      estimate is ``min(w_u, w_v) / m1`` when both entries are present
      and 0 otherwise;
    * **max target** (denominator): the curve steps from
      ``max(w_u, w_v)`` (both present) to the far entry's value ``w_far``
      (only the entry with the larger probability present) to 0, giving
      ``(max - w_far) / m1 + w_far / m2`` for both-present nodes and
      ``w_i / p_i`` for single-sketch nodes.

    The scalar path evaluates the same integrals by quadrature, so the
    two agree to quadrature accuracy (asserted by the graph tests); the
    seed itself cancels, exactly as in the scalar telescoping.
    """
    nodes = list(union)
    n = len(nodes)
    w_u = np.zeros(n)
    w_v = np.zeros(n)
    p_u = np.ones(n)
    p_v = np.ones(n)
    s_u = np.zeros(n, dtype=bool)
    s_v = np.zeros(n, dtype=bool)
    for k, node in enumerate(nodes):
        entry_u = sketch_u.entry(node)
        entry_v = sketch_v.entry(node)
        if entry_u is not None:
            s_u[k] = True
            w_u[k] = alpha(entry_u.distance)
            p_u[k] = entry_u.threshold
        if entry_v is not None:
            s_v[k] = True
            w_v[k] = alpha(entry_v.distance)
            p_v[k] = entry_v.threshold
    both = s_u & s_v
    m1 = np.minimum(p_u, p_v)
    m2 = np.maximum(p_u, p_v)
    numerator = float(
        np.sum(np.where(both, np.minimum(w_u, w_v) / m1, 0.0))
    )
    peak = np.maximum(w_u, w_v)
    far = np.where(p_u >= p_v, w_u, w_v)
    den_both = (peak - far) / m1 + far / m2
    den_single = np.where(s_u, w_u / p_u, 0.0) + np.where(s_v, w_v / p_v, 0.0)
    denominator = float(np.sum(np.where(both, den_both, den_single)))
    return SimilarityEstimate(numerator=numerator, denominator=denominator)


def _make_node_outcome(
    node: Node,
    sketch_u: AllDistancesSketch,
    sketch_v: AllDistancesSketch,
    ranks: Mapping[Node, float],
    alpha: Callable[[float], float],
) -> Outcome:
    entry_u = sketch_u.entry(node)
    entry_v = sketch_v.entry(node)
    prob_u = entry_u.threshold if entry_u is not None else _fallback_threshold(sketch_u)
    prob_v = entry_v.threshold if entry_v is not None else _fallback_threshold(sketch_v)
    scheme = CoordinatedScheme(
        [FixedProbabilityThreshold(prob_u), FixedProbabilityThreshold(prob_v)]
    )
    seed = float(ranks[node])
    values = (
        alpha(entry_u.distance) if entry_u is not None else None,
        alpha(entry_v.distance) if entry_v is not None else None,
    )
    return Outcome(seed=seed, values=values, scheme=scheme)


def _fallback_threshold(sketch: AllDistancesSketch) -> float:
    """Threshold placeholder for the sketch that does *not* contain a node.

    The L* estimates of the min/max targets never consult the threshold of
    an unsampled entry (its upper bound does not constrain the lower-bound
    function of either target), so any value works; the smallest recorded
    HIP probability is used to keep the scheme object meaningful.
    """
    probabilities = [e.threshold for e in sketch.entries.values()]
    return min(probabilities) if probabilities else 1.0
