"""Synthetic graph generators for the similarity experiments.

The social-network similarity study of Section 7 runs on real social
graphs we do not have; these generators provide synthetic stand-ins with
the structural features that matter for the experiment — local clustering
(so nearby nodes have overlapping distance profiles and hence high
closeness similarity) and heavy-tailed degrees (so the sketches see both
hubs and periphery).  Provided: 2-D grid graphs, Watts–Strogatz
small-world graphs, Barabási–Albert preferential attachment and
Erdős–Rényi baselines, all with optional random edge lengths.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .graph import Graph

__all__ = [
    "grid_graph",
    "small_world_graph",
    "preferential_attachment_graph",
    "erdos_renyi_graph",
    "random_edge_lengths",
]


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """A ``rows x cols`` 4-neighbour grid."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    graph = Graph()
    for r in range(rows):
        for c in range(cols):
            node = (r, c)
            graph.add_node(node)
            if r + 1 < rows:
                graph.add_edge(node, (r + 1, c), weight)
            if c + 1 < cols:
                graph.add_edge(node, (r, c + 1), weight)
    return graph


def small_world_graph(
    n: int,
    k: int = 4,
    rewire_probability: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Watts–Strogatz small-world graph on ``n`` nodes.

    Each node starts connected to its ``k`` nearest ring neighbours; each
    edge is rewired to a random endpoint with the given probability.
    """
    if n <= 2 or k < 2 or k % 2 != 0:
        raise ValueError("need n > 2 and even k >= 2")
    rng = rng if rng is not None else np.random.default_rng()
    graph = Graph()
    for node in range(n):
        graph.add_node(node)
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            target = (node + offset) % n
            if rng.random() < rewire_probability:
                candidate = int(rng.integers(0, n))
                attempts = 0
                while (
                    candidate == node or graph.edge_weight(node, candidate) is not None
                ) and attempts < 10:
                    candidate = int(rng.integers(0, n))
                    attempts += 1
                if candidate != node:
                    target = candidate
            graph.add_edge(node, target, 1.0)
    return graph


def preferential_attachment_graph(
    n: int, m: int = 2, rng: Optional[np.random.Generator] = None
) -> Graph:
    """Barabási–Albert graph: each new node attaches to ``m`` existing nodes
    with probability proportional to their degree."""
    if n <= m or m < 1:
        raise ValueError("need n > m >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    graph = Graph()
    # Start from a small clique so early attachments have targets.
    targets = list(range(m + 1))
    for a in targets:
        for b in targets:
            if a < b:
                graph.add_edge(a, b, 1.0)
    # Repeated-nodes list implements degree-proportional selection.
    repeated = []
    for a in targets:
        repeated.extend([a] * graph.degree(a))
    for new_node in range(m + 1, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(repeated[int(rng.integers(0, len(repeated)))])
        for target in chosen:
            graph.add_edge(new_node, target, 1.0)
            repeated.append(target)
        repeated.extend([new_node] * m)
    return graph


def erdos_renyi_graph(
    n: int, edge_probability: float, rng: Optional[np.random.Generator] = None
) -> Graph:
    """G(n, p) random graph."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng()
    graph = Graph()
    for node in range(n):
        graph.add_node(node)
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(a, b, 1.0)
    return graph


def random_edge_lengths(
    graph: Graph,
    low: float = 0.5,
    high: float = 1.5,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Copy of ``graph`` with edge weights redrawn uniformly from ``[low, high]``.

    The similarity application of the paper explicitly mentions random
    edge lengths; re-weighting a structural graph is how we reproduce
    that setting.
    """
    if low <= 0 or high < low:
        raise ValueError("need 0 < low <= high")
    rng = rng if rng is not None else np.random.default_rng()
    reweighted = Graph(directed=graph.directed)
    for node in graph.nodes():
        reweighted.add_node(node)
    for a, b, _w in graph.edges():
        reweighted.add_edge(a, b, float(rng.uniform(low, high)))
    return reweighted
