"""Single-source shortest paths (Dijkstra) over :class:`~repro.graphs.graph.Graph`.

All-distances sketches are built by scanning nodes in order of increasing
distance from the source, so the sketch builder needs both the distance
map and the *order* in which nodes are settled; :func:`dijkstra_order`
provides exactly that.  The implementation is the standard binary-heap
Dijkstra with lazy deletion; correctness is cross-checked against
``networkx`` in the tests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, List, Optional, Tuple

from .graph import Graph

__all__ = ["shortest_path_lengths", "dijkstra_order"]

Node = Hashable


def shortest_path_lengths(
    graph: Graph, source: Node, cutoff: Optional[float] = None
) -> Dict[Node, float]:
    """Distances from ``source`` to every reachable node.

    Parameters
    ----------
    cutoff:
        Stop exploring beyond this distance (useful for neighbourhood
        queries); nodes farther than the cutoff are omitted.
    """
    return dict(dijkstra_order(graph, source, cutoff=cutoff))


def dijkstra_order(
    graph: Graph, source: Node, cutoff: Optional[float] = None
) -> List[Tuple[Node, float]]:
    """Nodes in the order they are settled, with their distances.

    The settle order is exactly the non-decreasing-distance order the
    all-distances-sketch builder requires (ties broken arbitrarily but
    deterministically by insertion order).
    """
    if not graph.has_node(source):
        raise KeyError(f"source node {source!r} is not in the graph")
    distances: Dict[Node, float] = {}
    settled: List[Tuple[Node, float]] = []
    counter = itertools.count()
    heap: List[Tuple[float, int, Node]] = [(0.0, next(counter), source)]
    best: Dict[Node, float] = {source: 0.0}
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in distances:
            continue  # lazy deletion of stale heap entries
        if cutoff is not None and dist > cutoff:
            break
        distances[node] = dist
        settled.append((node, dist))
        for neighbour, weight in graph.neighbors(node).items():
            if neighbour in distances:
                continue
            candidate = dist + weight
            if cutoff is not None and candidate > cutoff:
                continue
            if neighbour not in best or candidate < best[neighbour]:
                best[neighbour] = candidate
                heapq.heappush(heap, (candidate, next(counter), neighbour))
    return settled
