"""Experiment E4 — Example 4: L*, U*, and v-optimal estimates for RG_p+.

Example 4 plots, for the same configurations as Example 3 (``RG_p+`` under
PPS with ``tau* = 1``, vectors ``(0.6, 0.2)`` and ``(0.6, 0)``,
``p in {0.5, 1, 2}``), the L* and U* estimates as a function of the seed
along with the v-optimal estimates.  This experiment regenerates all three
curves — the L* and U* ones both from the closed forms quoted in the
example and from the library's generic estimators — and verifies the
example's qualitative claims:

* all estimates vanish for ``u > v1 = 0.6`` (a zero-range vector is
  consistent with those outcomes);
* when ``v2 = 0`` the U* estimates coincide with the v-optimal ones;
* the L* estimate grows without bound as ``u -> 0`` when ``v2 = 0`` (it is
  unbounded yet has finite variance and is competitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..api.backend import BackendPolicy, BackendSpec
from ..core.functions import OneSidedRange
from ..core.schemes import pps_scheme
from ..engine.batch_outcome import BatchOutcome
from ..engine.kernels import resolve_kernel
from ..estimators.lstar import LStarEstimator, LStarOneSidedRangePPS
from ..estimators.ustar import UStarOneSidedRangePPS
from ..estimators.vopt import VOptimalOracle
from .report import format_series

__all__ = ["EstimateCurves", "run", "compute", "format_report"]

PAPER_VECTORS: Tuple[Tuple[float, float], ...] = ((0.6, 0.2), (0.6, 0.0))
PAPER_EXPONENTS: Tuple[float, ...] = (0.5, 1.0, 2.0)


@dataclass(frozen=True)
class EstimateCurves:
    """Estimate-vs-seed curves of one (p, vector) configuration."""

    p: float
    vector: Tuple[float, float]
    seeds: np.ndarray
    lstar: np.ndarray
    lstar_closed_form: np.ndarray
    ustar: np.ndarray
    voptimal: np.ndarray

    def max_closed_form_gap(self) -> float:
        """Largest |generic L* − closed-form L*| over the traced seeds."""
        return float(np.max(np.abs(self.lstar - self.lstar_closed_form)))


def _trace(estimator, scheme, vector, seeds: np.ndarray, resolved: str) -> np.ndarray:
    """Estimates at every seed of the grid, kernel-batched when allowed.

    One :class:`~repro.engine.batch_outcome.BatchOutcome` over the whole
    seed grid replaces the per-seed ``estimate_for`` loop whenever the
    resolved backend permits it and a kernel covers the estimator; the
    scalar loop remains the fallback (and the reference the parity tests
    compare against).
    """
    if resolved != "scalar":
        kernel = resolve_kernel(estimator, scheme)
        if kernel is not None:
            tiled = np.tile(np.asarray(vector, dtype=float), (len(seeds), 1))
            batch = BatchOutcome.sample_vectors(scheme, tiled, seeds)
            return kernel.estimate_batch(batch)
    return np.array(
        [estimator.estimate_for(scheme, vector, float(u)) for u in seeds]
    )


def run(
    exponents: Sequence[float] = PAPER_EXPONENTS,
    vectors: Sequence[Tuple[float, float]] = PAPER_VECTORS,
    grid: int = 120,
    backend: BackendSpec = None,
) -> List[EstimateCurves]:
    """Trace L*, U* and v-optimal estimates for every configuration.

    The closed-form L* and U* curves batch through the engine kernels
    and the v-optimal curve through the vectorized hull-slope lookup
    (dispatch by ``backend``, sized on the whole experiment's seed
    grid).  The *generic* L* curve always stays on the scalar quadrature
    path: it is the reference the closed form is compared against, so
    batching it through the same kernel would make the comparison
    vacuous.
    """
    scheme = pps_scheme([1.0, 1.0])
    seeds = np.linspace(0.01, 0.8, grid)
    resolved = BackendPolicy.coerce(backend).resolve(
        grid * len(exponents) * len(vectors)
    )
    results: List[EstimateCurves] = []
    for p in exponents:
        target = OneSidedRange(p=p)
        lstar = LStarEstimator(target)
        lstar_cf = LStarOneSidedRangePPS(p=p)
        ustar = UStarOneSidedRangePPS(p=p)
        for vector in vectors:
            oracle = VOptimalOracle(scheme, target, vector, grid=4096)
            l_vals = np.array(
                [lstar.estimate_for(scheme, vector, float(u)) for u in seeds]
            )
            l_cf_vals = _trace(lstar_cf, scheme, vector, seeds, resolved)
            u_vals = _trace(ustar, scheme, vector, seeds, resolved)
            if resolved != "scalar":
                v_vals = oracle.estimates_at_seeds(seeds)
            else:
                v_vals = np.array(
                    [oracle.estimate_at_seed(float(u)) for u in seeds]
                )
            results.append(
                EstimateCurves(
                    p=p,
                    vector=tuple(vector),
                    seeds=seeds,
                    lstar=l_vals,
                    lstar_closed_form=l_cf_vals,
                    ustar=u_vals,
                    voptimal=v_vals,
                )
            )
    return results


def structural_checks(curves: List[EstimateCurves] = None) -> Dict[str, bool]:
    """The caption claims of Example 4, evaluated on the traced curves."""
    curves = curves if curves is not None else run()
    checks: Dict[str, bool] = {}
    for c in curves:
        label = f"p={c.p} v={c.vector}"
        above = c.seeds > 0.6 + 1e-9
        checks[f"{label}: estimates vanish for u > v1"] = bool(
            np.allclose(c.lstar[above], 0.0, atol=1e-9)
            and np.allclose(c.ustar[above], 0.0, atol=1e-9)
        )
        checks[f"{label}: generic L* matches closed form"] = (
            c.max_closed_form_gap() <= 1e-6
        )
        if c.vector[1] == 0.0:
            inside = (c.seeds > 0.0) & (c.seeds < 0.6 - 1e-9)
            checks[f"{label}: U* equals v-optimal when v2=0"] = bool(
                np.allclose(c.ustar[inside], c.voptimal[inside], atol=5e-3)
            )
            checks[f"{label}: L* grows as u -> 0 (unbounded)"] = bool(
                c.lstar[0] > c.lstar[len(c.lstar) // 2] and c.lstar[0] > 1.0
            )
    return checks


def _series_lines(curves: List[EstimateCurves], points: int) -> List[str]:
    """The subsampled estimate series plus the caption-check lines —
    shared by the legacy text report and the spec task's notes."""
    lines = []
    for c in curves:
        idx = np.linspace(0, len(c.seeds) - 1, points).astype(int)
        label = f"p={c.p} v={c.vector}"
        lines.append(format_series(f"{label} L*", c.seeds[idx], c.lstar[idx]))
        lines.append(format_series(f"{label} U*", c.seeds[idx], c.ustar[idx]))
        lines.append(format_series(f"{label} v-opt", c.seeds[idx], c.voptimal[idx]))
    lines.append("")
    for name, passed in structural_checks(curves).items():
        lines.append(f"[{'ok' if passed else 'FAIL'}] {name}")
    return lines


def compute(params=None):
    """Spec task: per-configuration closed-form gaps, caption checks, and
    the estimate-curve series (subsampled) as notes."""
    params = params or {}
    curves = run(grid=int(params.get("grid", 120)))
    records = [
        {
            "p": c.p,
            "vector": str(c.vector),
            "max_closed_form_gap": c.max_closed_form_gap(),
        }
        for c in curves
    ]
    notes = _series_lines(curves, int(params.get("points", 9)))
    return records, {"checks": dict(structural_checks(curves)), "notes": notes}


def format_report(curves: List[EstimateCurves] = None, points: int = 9) -> str:
    curves = curves if curves is not None else run()
    lines = ["E4 — Example 4 estimate curves (L*, U*, v-optimal; RG_p+, PPS tau*=1)"]
    lines.extend(_series_lines(curves, points))
    return "\n".join(lines)
