"""Experiment E8 — L* dominates Horvitz–Thompson (and is monotone).

Theorem 4.2 of the paper shows that L* is the unique admissible monotone
estimator and therefore dominates every monotone estimator — in
particular the classical HT estimator, which is monotone, unbiased and
nonnegative but discards the partial information carried by
non-revealing outcomes.  This experiment quantifies the domination: for a
sweep of data vectors it compares the exact variances of L* and HT (and of
the bounded dyadic baseline, which is *not* monotone and is dominated on
some vectors but not uniformly), reporting the variance ratio and checking
that L* never loses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..api.backend import BackendSpec
from ..core.functions import OneSidedRange
from ..core.schemes import pps_scheme
from ..engine.moments import batch_variances
from ..estimators.dyadic import DyadicEstimator
from ..estimators.horvitz_thompson import HorvitzThompsonEstimator
from ..estimators.lstar import LStarOneSidedRangePPS
from .report import format_table

__all__ = ["DominanceRow", "run", "compute", "format_report"]


@dataclass(frozen=True)
class DominanceRow:
    """Exact variances of L*, HT and the dyadic baseline on one vector."""

    vector: Tuple[float, float]
    true_value: float
    lstar_variance: float
    ht_variance: float
    ht_applicable: bool
    dyadic_variance: float

    @property
    def lstar_dominates_ht(self) -> bool:
        if not self.ht_applicable:
            # HT is biased (towards zero) here; domination in the paper's
            # sense is about comparable unbiased estimators, so we flag
            # the row rather than compare variances of different means.
            return True
        return self.lstar_variance <= self.ht_variance + 1e-9

    @property
    def ht_over_lstar(self) -> float:
        if self.lstar_variance <= 0:
            return float("inf") if self.ht_variance > 0 else 1.0
        return self.ht_variance / self.lstar_variance


def default_vectors() -> List[Tuple[float, float]]:
    grid = []
    for v1 in (0.3, 0.5, 0.7, 0.9):
        for fraction in (0.0, 0.2, 0.5, 0.8):
            grid.append((v1, round(v1 * fraction, 6)))
    return grid


def run(
    p: float = 1.0,
    vectors: Sequence[Tuple[float, float]] = None,
    backend: BackendSpec = None,
) -> List[DominanceRow]:
    """Compare exact variances of L*, HT and dyadic on each vector.

    The exact variances are seed integrals, evaluated in one
    kernel-backed quadrature batch per estimator
    (:func:`repro.engine.moments.batch_variances`) under ``backend``;
    HT's variance on the vectors where it is *inapplicable* stays on the
    scalar reference path (its tolerance machinery is pathological in a
    measure-~tolerance sliver near seed 0 there, which the batched rule
    would resolve while the scalar quadrature does not).
    """
    scheme = pps_scheme([1.0, 1.0])
    target = OneSidedRange(p=p)
    lstar = LStarOneSidedRangePPS(p=p)
    ht = HorvitzThompsonEstimator(target)
    dyadic = DyadicEstimator(target)
    chosen = [tuple(v) for v in (
        vectors if vectors is not None else default_vectors()
    )]
    applicable = [ht.is_applicable(scheme, v) for v in chosen]
    lstar_vars = batch_variances(lstar, scheme, target, chosen, backend=backend)
    dyadic_vars = batch_variances(dyadic, scheme, target, chosen, backend=backend)
    ht_usable = [v for v, ok in zip(chosen, applicable) if ok]
    ht_skipped = [v for v, ok in zip(chosen, applicable) if not ok]
    ht_vars = iter(
        batch_variances(ht, scheme, target, ht_usable, backend=backend)
    )
    ht_fallback = iter(
        batch_variances(ht, scheme, target, ht_skipped, backend="scalar")
    )
    rows: List[DominanceRow] = []
    for vector, ok, lstar_var, dyadic_var in zip(
        chosen, applicable, lstar_vars, dyadic_vars
    ):
        rows.append(
            DominanceRow(
                vector=vector,
                true_value=target(vector),
                lstar_variance=lstar_var,
                ht_variance=next(ht_vars) if ok else next(ht_fallback),
                ht_applicable=ok,
                dyadic_variance=dyadic_var,
            )
        )
    return rows


def all_dominated(rows: List[DominanceRow] = None) -> bool:
    """Whether L* variance is at most HT variance on every applicable vector."""
    rows = rows if rows is not None else run()
    return all(row.lstar_dominates_ht for row in rows)


def compute(params=None):
    """Spec task: the exact-variance domination table."""
    params = params or {}
    vectors = params.get("vectors")
    if vectors is not None:
        vectors = [tuple(v) for v in vectors]
    rows = run(p=float(params.get("p", 1.0)), vectors=vectors)
    records = [
        {
            "vector": str(row.vector),
            "f": row.true_value,
            "var_lstar": row.lstar_variance,
            "var_ht": row.ht_variance if row.ht_applicable else None,
            "ht_over_lstar": row.ht_over_lstar if row.ht_applicable else None,
            "var_dyadic": row.dyadic_variance,
            "ht_applicable": row.ht_applicable,
        }
        for row in rows
    ]
    metadata = {"lstar_dominates_everywhere": all_dominated(rows)}
    return records, metadata


def format_report(rows: List[DominanceRow] = None) -> str:
    rows = rows if rows is not None else run()
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                str(row.vector),
                row.true_value,
                row.lstar_variance,
                row.ht_variance if row.ht_applicable else float("nan"),
                row.ht_over_lstar if row.ht_applicable else float("nan"),
                row.dyadic_variance,
                "yes" if row.ht_applicable else "no (HT inapplicable)",
            )
        )
    return format_table(
        headers=[
            "vector",
            "f(v)",
            "Var[L*]",
            "Var[HT]",
            "Var[HT]/Var[L*]",
            "Var[dyadic]",
            "HT applicable",
        ],
        rows=table_rows,
        title="E8 — L* dominates Horvitz–Thompson (RG_1+, PPS tau*=1)",
    )
