"""Experiment modules, one per table/figure/claim of the paper.

| Module        | Paper artefact                                              |
|---------------|-------------------------------------------------------------|
| ``example1``  | Example 1: dataset and query values (E1)                    |
| ``example2``  | Example 2: coordinated PPS outcomes (E2)                    |
| ``example3``  | Example 3 figures: lower bounds and hulls (E3)              |
| ``example4``  | Example 4 figures: L*, U*, v-optimal estimates (E4)         |
| ``example5``  | Example 5 tables: order-optimal estimators (E5)             |
| ``theorem41`` | Theorem 4.1: tightness of the ratio 4 (E6)                  |
| ``ratios``    | Stated per-function competitive ratios (E7)                 |
| ``dominance`` | L* dominates Horvitz–Thompson (E8)                          |
| ``lp_difference`` | Section 7: Lp differences, similar vs dissimilar data (E9) |
| ``similarity``| Section 7: ADS-based closeness similarity (E10)             |
| ``ablation``  | Customisation/competitiveness ablation (E11)                |

Every experiment is registered as a declarative
:class:`~repro.api.experiments.ExperimentSpec` (see :mod:`.specs`) and
executed by :class:`~repro.api.experiments.ExperimentRunner`, which
returns structured :class:`~repro.api.experiments.ExperimentResult`
records, shards Monte-Carlo replications across processes
(shard-count-invariant seeding via ``SeedSequence.spawn``), and caches
completed runs on disk by a content hash of the spec.  Rendering lives in
:mod:`.report` (:func:`~repro.experiments.report.render_result`).

The command line is ``python -m repro.experiments.run_all`` with flags

* ``--full`` / ``--smoke`` — parameter scale (default: quick);
* ``--only E1 E9`` — subset selection (descriptive aliases such as
  ``lp_difference`` also resolve);
* ``--jobs N`` — worker processes for sharded replications (records are
  bit-identical for any value);
* ``--cache-dir DIR`` — enable the on-disk result cache (also via the
  ``REPRO_EXPERIMENT_CACHE`` environment variable);
* ``--backend scalar|vectorized|auto`` — process-wide backend policy;
* ``--format text|json`` — rendered report or structured records.

Each module still exposes ``run(...)`` returning structured results and
``format_report(...)`` rendering them as text; the benchmarks under
``benchmarks/`` call the same entry points.
"""

from . import (
    ablation,
    dominance,
    example1,
    example2,
    example3,
    example4,
    example5,
    lp_difference,
    ratios,
    similarity,
    specs,
    theorem41,
)

__all__ = [
    "ablation",
    "dominance",
    "example1",
    "example2",
    "example3",
    "example4",
    "example5",
    "lp_difference",
    "ratios",
    "similarity",
    "specs",
    "theorem41",
]
