"""Experiment modules, one per table/figure/claim of the paper.

| Module        | Paper artefact                                              |
|---------------|-------------------------------------------------------------|
| ``example1``  | Example 1: dataset and query values (E1)                    |
| ``example2``  | Example 2: coordinated PPS outcomes (E2)                    |
| ``example3``  | Example 3 figures: lower bounds and hulls (E3)              |
| ``example4``  | Example 4 figures: L*, U*, v-optimal estimates (E4)         |
| ``example5``  | Example 5 tables: order-optimal estimators (E5)             |
| ``theorem41`` | Theorem 4.1: tightness of the ratio 4 (E6)                  |
| ``ratios``    | Stated per-function competitive ratios (E7)                 |
| ``dominance`` | L* dominates Horvitz–Thompson (E8)                          |
| ``lp_difference`` | Section 7: Lp differences, similar vs dissimilar data (E9) |
| ``similarity``| Section 7: ADS-based closeness similarity (E10)             |
| ``ablation``  | Customisation/competitiveness ablation (E11)                |

Every module exposes ``run(...)`` returning structured results and
``format_report(...)`` rendering them as text; the benchmarks under
``benchmarks/`` call the same entry points.
"""

from . import (
    ablation,
    dominance,
    example1,
    example2,
    example3,
    example4,
    example5,
    lp_difference,
    ratios,
    similarity,
    theorem41,
)

__all__ = [
    "ablation",
    "dominance",
    "example1",
    "example2",
    "example3",
    "example4",
    "example5",
    "lp_difference",
    "ratios",
    "similarity",
    "theorem41",
]
