"""Experiment E11 — ablation: which estimator wins where, and at what risk.

The paper's case for *customisation* is that the admissible Pareto front
is wide: different admissible estimators are better on different data
patterns, and the right choice depends on what you expect to see.  Its
case for *competitiveness* is that when you do not know what to expect,
the L* estimator is the safe default.  This ablation maps both claims on a
controlled family of workloads: pairs of instances whose similarity is
swept from identical to independent, estimated with L*, U*, HT and the
bounded dyadic baseline.  The expected picture:

* L* wins (lowest error) at high similarity, U* at low similarity;
* among unbiased estimators HT never beats L* (L* dominates it
  vector-by-vector); in MSE terms HT can look artificially good on the
  vectors where it is *inapplicable* — its forced zero estimate is biased
  but small — which is exactly the failure mode the paper criticises;
* the worst-case penalty of L* across the sweep is small (its
  4-competitiveness at work), while U*'s worst case is much larger.

The per-item error moments are exact seed integrals.  They are computed
through :func:`repro.engine.moments.batch_moments` — one kernel-backed
quadrature batch per (similarity, estimator) instead of one adaptive
scalar quadrature per item — under the shared
:class:`~repro.api.backend.BackendPolicy`; ``backend="scalar"`` restores
the original per-item loop (the reference the parity tests compare
against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..api.backend import BackendSpec
from ..core.functions import OneSidedRange
from ..core.schemes import pps_scheme
from ..datasets.synthetic import similarity_controlled_pairs
from ..engine.moments import batch_moments
from ..estimators.dyadic import DyadicEstimator
from ..estimators.horvitz_thompson import HorvitzThompsonEstimator
from ..estimators.lstar import LStarOneSidedRangePPS
from ..estimators.ustar import UStarOneSidedRangePPS
from .report import format_table

__all__ = ["AblationRow", "run", "compute", "format_report"]


@dataclass(frozen=True)
class AblationRow:
    """Total sum-estimator error of one estimator at one similarity level.

    The error measure is the exact mean squared error of the sum estimate
    (sum of per-item ``E[(est - f(v))^2]``): for the unbiased estimators it
    equals the variance, and for Horvitz–Thompson on vectors where it is
    inapplicable (zero revelation probability) it correctly charges the
    bias instead of rewarding it.
    """

    similarity: float
    estimator: str
    total_mse: float
    total_value: float

    @property
    def normalised_mse(self) -> float:
        """MSE divided by the squared query value (scale-free)."""
        if self.total_value <= 0:
            return float("nan")
        return self.total_mse / self.total_value ** 2


def run(
    similarities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99),
    num_items: int = 60,
    p: float = 1.0,
    seed: int = 5,
    backend: BackendSpec = None,
) -> List[AblationRow]:
    """Exact per-item errors summed over a similarity-controlled workload.

    Item seeds are independent, so the mean squared error of the sum
    estimate is the sum of per-item mean squared errors — no Monte Carlo
    needed; each per-item moment is an exact quadrature, batched through
    the engine under ``backend`` (default: the process policy).
    """
    scheme = pps_scheme([1.0, 1.0])
    target = OneSidedRange(p=p)
    estimators = {
        "L*": LStarOneSidedRangePPS(p=p),
        "U*": UStarOneSidedRangePPS(p=p),
        "HT": HorvitzThompsonEstimator(target),
        "dyadic": DyadicEstimator(target),
    }
    rows: List[AblationRow] = []
    rng = np.random.default_rng(seed)
    for similarity in similarities:
        dataset = similarity_controlled_pairs(num_items, similarity, rng=rng)
        tuples = [dataset.tuple_for(key) for key in dataset.items]
        total_value = sum(target(t) for t in tuples)
        for name, estimator in estimators.items():
            if isinstance(estimator, HorvitzThompsonEstimator):
                # HT's scalar tolerance machinery is pathological in a
                # measure-~tolerance sliver near seed 0 on vectors where
                # it is *inapplicable*; keep those on the scalar
                # reference path so the batched quadrature reproduces
                # the scalar numbers instead of resolving the sliver.
                usable = [
                    t for t in tuples if estimator.is_applicable(scheme, t)
                ]
                skipped = [
                    t for t in tuples if not estimator.is_applicable(scheme, t)
                ]
                reports = batch_moments(
                    estimator, scheme, target, usable, backend=backend
                ) + batch_moments(
                    estimator, scheme, target, skipped, backend="scalar"
                )
            else:
                reports = batch_moments(
                    estimator, scheme, target, tuples, backend=backend
                )
            # E[(est - f)^2] = E[est^2] - 2 f E[est] + f^2, summed.
            total_mse = sum(
                r.second_moment
                - 2.0 * r.true_value * r.mean
                + r.true_value ** 2
                for r in reports
            )
            rows.append(
                AblationRow(
                    similarity=similarity,
                    estimator=name,
                    total_mse=total_mse,
                    total_value=total_value,
                )
            )
    return rows


def winners_by_similarity(rows: List[AblationRow]) -> Dict[float, str]:
    """Lowest-error estimator at each similarity level."""
    grouped: Dict[float, Dict[str, float]] = {}
    for row in rows:
        grouped.setdefault(row.similarity, {})[row.estimator] = row.total_mse
    return {s: min(scores, key=scores.get) for s, scores in grouped.items()}


def worst_case_penalty(rows: List[AblationRow]) -> Dict[str, float]:
    """Per estimator: max over similarity levels of MSE / best MSE.

    This is the empirical analogue of the competitiveness story: a small
    number means the estimator is never far from the best choice.
    """
    grouped: Dict[float, Dict[str, float]] = {}
    for row in rows:
        grouped.setdefault(row.similarity, {})[row.estimator] = row.total_mse
    penalties: Dict[str, float] = {}
    for scores in grouped.values():
        best = min(scores.values())
        for name, value in scores.items():
            ratio = value / best if best > 0 else 1.0
            penalties[name] = max(penalties.get(name, 1.0), ratio)
    return penalties


def compute(params=None):
    """Spec task: the estimator ablation across similarity regimes."""
    params = params or {}
    rows = run(
        similarities=tuple(float(s) for s in params.get(
            "similarities", (0.0, 0.25, 0.5, 0.75, 0.9, 0.99)
        )),
        num_items=int(params.get("num_items", 60)),
        p=float(params.get("p", 1.0)),
        seed=int(params.get("seed", 5)),
    )
    records = [
        {
            "similarity": r.similarity,
            "estimator": r.estimator,
            "total_mse": r.total_mse,
            "normalised_mse": r.normalised_mse,
        }
        for r in rows
    ]
    won = winners_by_similarity(rows)
    penalties = worst_case_penalty(rows)
    notes = ["Winner by similarity:"]
    notes.extend(f"  similarity={s}: {name}" for s, name in sorted(won.items()))
    notes.append("Worst-case penalty vs the best estimator at each level:")
    notes.extend(
        f"  {name}: {penalty:.3g}x" for name, penalty in sorted(penalties.items())
    )
    metadata = {
        "winners": {str(s): name for s, name in sorted(won.items())},
        "worst_case_penalty": {
            name: penalties[name] for name in sorted(penalties)
        },
        "notes": notes,
    }
    return records, metadata


def format_report(rows: List[AblationRow] = None) -> str:
    rows = rows if rows is not None else run()
    table = format_table(
        headers=["similarity", "estimator", "total MSE", "normalised"],
        rows=[
            (r.similarity, r.estimator, r.total_mse, r.normalised_mse)
            for r in rows
        ],
        title="E11 — estimator ablation across similarity regimes (RG_1+ sums)",
    )
    lines = [table, "", "Winner by similarity:"]
    for similarity, name in sorted(winners_by_similarity(rows).items()):
        lines.append(f"  similarity={similarity}: {name}")
    lines.append("")
    lines.append("Worst-case penalty vs the best estimator at each level:")
    for name, penalty in sorted(worst_case_penalty(rows).items()):
        lines.append(f"  {name}: {penalty:.3g}x")
    return "\n".join(lines)
