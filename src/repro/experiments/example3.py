"""Experiment E3 — Example 3: lower-bound functions and their lower hulls.

Example 3 plots, for the one-sided range ``RG_p+`` under coordinated PPS
with ``tau* = 1``, the lower-bound function ``RG_p+^{(v)}(u)`` ("LB") and
its lower convex hull ("CH") for the data vectors ``(0.6, 0.2)`` and
``(0.6, 0)`` at exponents ``p in {0.5, 1, 2}``.  This experiment produces
the same curves as numeric series and verifies the structural claims made
in the example's caption:

* for ``u > 0.2`` the two vectors have identical lower bounds (their
  outcomes coincide);
* for ``p <= 1`` the lower bound is concave on ``(0, v1]`` so its hull is
  linear there; for ``p > 1`` hull and function coincide near ``v1``;
* for ``v2 = 0`` the lower bound equals its own hull.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.functions import OneSidedRange
from ..core.lower_bound import VectorLowerBound
from ..core.lower_hull import hull_of_curve
from ..core.schemes import pps_scheme
from .report import format_series

__all__ = [
    "CurvePair", "run", "compute", "closed_form_lower_bound", "format_report",
]

#: The configurations plotted in the paper's Example 3.
PAPER_VECTORS: Tuple[Tuple[float, float], ...] = ((0.6, 0.2), (0.6, 0.0))
PAPER_EXPONENTS: Tuple[float, ...] = (0.5, 1.0, 2.0)


@dataclass(frozen=True)
class CurvePair:
    """The LB and CH series of one (p, vector) configuration."""

    p: float
    vector: Tuple[float, float]
    seeds: np.ndarray
    lower_bound: np.ndarray
    lower_hull: np.ndarray

    def max_hull_gap(self) -> float:
        """``max_u (LB(u) - CH(u))`` — zero when the function is convex."""
        return float(np.max(self.lower_bound - self.lower_hull))


def closed_form_lower_bound(p: float, vector: Sequence[float], u: float) -> float:
    """The paper's closed form ``max(0, v1 - max(v2, u))**p`` (tau* = 1)."""
    v1, v2 = float(vector[0]), float(vector[1])
    if u > v1:
        return 0.0
    return max(0.0, v1 - max(v2, u)) ** p


def run(
    exponents: Sequence[float] = PAPER_EXPONENTS,
    vectors: Sequence[Tuple[float, float]] = PAPER_VECTORS,
    grid: int = 200,
) -> List[CurvePair]:
    """Trace the lower-bound function and its hull for every configuration."""
    scheme = pps_scheme([1.0, 1.0])
    seeds = np.linspace(1e-3, 0.8, grid)
    results: List[CurvePair] = []
    for p in exponents:
        target = OneSidedRange(p=p)
        for vector in vectors:
            curve = VectorLowerBound(scheme, target, vector)
            lb = np.array([curve(float(u)) for u in seeds])
            hull = hull_of_curve(curve, limit_at_zero=target(vector), grid=2048)
            ch = np.array([hull.value(float(u)) for u in seeds])
            results.append(
                CurvePair(
                    p=p,
                    vector=tuple(vector),
                    seeds=seeds,
                    lower_bound=lb,
                    lower_hull=ch,
                )
            )
    return results


def structural_checks(pairs: List[CurvePair] = None) -> Dict[str, bool]:
    """The caption claims of Example 3, evaluated on the traced curves."""
    pairs = pairs if pairs is not None else run()
    by_key = {(pair.p, pair.vector): pair for pair in pairs}
    checks: Dict[str, bool] = {}
    # Same lower bound above u = 0.2 for the two vectors.
    for p in PAPER_EXPONENTS:
        a = by_key[(p, (0.6, 0.2))]
        b = by_key[(p, (0.6, 0.0))]
        mask = a.seeds > 0.2 + 1e-9
        checks[f"p={p}: LB agrees above u=0.2"] = bool(
            np.allclose(a.lower_bound[mask], b.lower_bound[mask], atol=1e-12)
        )
    # v2 = 0 and p >= 1 make the lower bound convex (equal to its hull);
    # for p < 1 the curve (v1 - u)^p is concave, so the hull is strictly
    # below even at v2 = 0 (the p = 0.5 panel of the paper's figure shows
    # LB and CH as distinct curves for that vector).
    for p in (1.0, 2.0):
        pair = by_key[(p, (0.6, 0.0))]
        checks[f"p={p}: LB equals hull when v2=0"] = pair.max_hull_gap() <= 1e-6
    pair = by_key[(0.5, (0.6, 0.0))]
    checks["p=0.5: hull strictly below LB even when v2=0"] = (
        pair.max_hull_gap() > 1e-4
    )
    # p <= 1 with v2 > 0 has a strictly positive hull gap (concave region).
    for p in (0.5, 1.0):
        pair = by_key[(p, (0.6, 0.2))]
        checks[f"p={p}: hull strictly below LB when v2>0"] = pair.max_hull_gap() > 1e-4
    return checks


def _series_lines(pairs: List[CurvePair], points: int) -> List[str]:
    """The subsampled LB/CH series plus the caption-check lines —
    shared by the legacy text report and the spec task's notes."""
    lines = []
    for pair in pairs:
        idx = np.linspace(0, len(pair.seeds) - 1, points).astype(int)
        label = f"p={pair.p} v={pair.vector}"
        lines.append(format_series(f"{label} LB", pair.seeds[idx], pair.lower_bound[idx]))
        lines.append(format_series(f"{label} CH", pair.seeds[idx], pair.lower_hull[idx]))
    lines.append("")
    for name, passed in structural_checks(pairs).items():
        lines.append(f"[{'ok' if passed else 'FAIL'}] {name}")
    return lines


def compute(params=None):
    """Spec task: per-configuration hull gaps, caption checks, and the
    figure series (subsampled) as notes."""
    params = params or {}
    pairs = run(grid=int(params.get("grid", 200)))
    records = [
        {
            "p": pair.p,
            "vector": str(pair.vector),
            "max_hull_gap": pair.max_hull_gap(),
        }
        for pair in pairs
    ]
    notes = _series_lines(pairs, int(params.get("points", 9)))
    return records, {"checks": dict(structural_checks(pairs)), "notes": notes}


def format_report(pairs: List[CurvePair] = None, points: int = 9) -> str:
    """Compact text rendering of the figure series plus the caption checks."""
    pairs = pairs if pairs is not None else run()
    lines = ["E3 — Example 3 lower-bound functions and hulls (RG_p+, PPS tau*=1)"]
    lines.extend(_series_lines(pairs, points))
    return "\n".join(lines)
