"""Run every experiment (E1–E11) through the declarative runner.

This is the command-line face of the reproduction: each experiment is a
registered :class:`~repro.api.experiments.ExperimentSpec` executed by an
:class:`~repro.api.experiments.ExperimentRunner`, which shards
Monte-Carlo replications across processes and memoizes completed runs in
an on-disk cache (see the :mod:`repro.api.experiments` docstring for the
determinism and cache-invalidation rules).

Usage::

    python -m repro.experiments.run_all                    # quick pass
    python -m repro.experiments.run_all --full             # benchmark scale
    python -m repro.experiments.run_all --smoke --jobs 2   # CI smoke pass
    python -m repro.experiments.run_all --only E6 E7
    python -m repro.experiments.run_all --backend vectorized
    python -m repro.experiments.run_all --cache-dir .repro-cache
    python -m repro.experiments.run_all --format json > results.json

``--jobs`` shards replicated experiments (E9) across worker processes —
records are bit-identical for any value.  ``--backend`` installs a
process-wide :class:`~repro.api.backend.BackendPolicy` so every
estimation loop follows one dispatch rule; ``--cache-dir`` enables the
result cache (also settable via ``REPRO_EXPERIMENT_CACHE``).  A failing
experiment is reported on stderr and turns the exit code nonzero instead
of escaping as a traceback; the remaining experiments still run.

``run_experiment`` / ``run_many`` remain as deprecation shims over the
runner for callers of the pre-spec API.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Dict, List, Optional

from ..api.backend import BACKEND_MODES
from ..api.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    canonical_keys,
    resolve_spec,
)
from .report import render_result

__all__ = ["EXPERIMENTS", "run_experiment", "run_many", "main"]


def _specs() -> Dict[str, ExperimentSpec]:
    return {key: resolve_spec(key) for key in canonical_keys()}


#: Experiment id -> registered spec (kept as a mapping for discovery and
#: backwards compatibility with ``set(run_all.EXPERIMENTS)``).
EXPERIMENTS: Dict[str, ExperimentSpec] = _specs()


def run_experiment(identifier: str, full: bool = False) -> str:
    """Deprecated: run one experiment and return its report text.

    Use ``ExperimentRunner().run(identifier, scale=...)`` with
    :func:`repro.experiments.report.render_result` instead.
    """
    warnings.warn(
        "repro.experiments.run_all.run_experiment is deprecated; use "
        "repro.api.ExperimentRunner().run(key, scale=...) and "
        "repro.experiments.report.render_result instead",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = resolve_spec(identifier)  # KeyError on unknown ids, as before
    result = ExperimentRunner().run(spec, scale="full" if full else "quick")
    return render_result(result)


def run_many(identifiers: Optional[List[str]] = None, full: bool = False) -> str:
    """Deprecated: run several experiments and concatenate their reports.

    Use ``ExperimentRunner().run_many(...)`` instead.
    """
    warnings.warn(
        "repro.experiments.run_all.run_many is deprecated; use "
        "repro.api.ExperimentRunner().run_many(keys, scale=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    runner = ExperimentRunner()
    scale = "full" if full else "quick"
    sections = []
    for identifier in identifiers if identifiers else canonical_keys():
        result = runner.run(identifier, scale=scale)
        sections.append(f"### {result.key}\n{render_result(result)}")
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    scale_group = parser.add_mutually_exclusive_group()
    scale_group.add_argument(
        "--full", action="store_true",
        help="run at benchmark scale instead of the quick scale")
    scale_group.add_argument(
        "--smoke", action="store_true",
        help="run the minimal smoke-scale parameters (CI)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to run (default: all)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sharded replications "
                             "(records are identical for any value)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache "
                             "(default: $REPRO_EXPERIMENT_CACHE, else off)")
    parser.add_argument("--backend", choices=BACKEND_MODES, default=None,
                        help="process-wide backend policy for every "
                             "estimation loop (default: auto)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json emits the structured "
                             "records and metadata)")
    args = parser.parse_args(argv)

    scale = "full" if args.full else ("smoke" if args.smoke else "quick")
    runner = ExperimentRunner(
        jobs=args.jobs, cache_dir=args.cache_dir, backend=args.backend
    )
    keys = args.only if args.only else canonical_keys()

    results = []
    failures = []
    for key in keys:
        try:
            results.append(runner.run(key, scale=scale))
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            failures.append((key, exc))
            print(f"error: experiment {key} failed: {exc}", file=sys.stderr)

    if args.format == "json":
        print(json.dumps([r.to_dict() for r in results], indent=2,
                         sort_keys=True))
    else:
        print("\n\n".join(
            f"### {r.key}\n{render_result(r)}" for r in results
        ))
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
