"""Run every experiment (E1–E11) through the cross-experiment scheduler.

This is the command-line face of the reproduction: each experiment is a
registered :class:`~repro.api.experiments.ExperimentSpec` executed by an
:class:`~repro.api.experiments.ExperimentRunner`, which flattens every
selected experiment's shards into one global largest-work-first queue,
drains it with a shared process pool, streams completed shard records to
an on-disk :class:`~repro.api.records.RecordStore`, and memoizes
completed runs in a content-hash cache (see the
:mod:`repro.api.experiments` docstring for the determinism, resume, and
cache-invalidation rules — or the docs site under ``docs/``).

Usage::

    python -m repro.experiments.run_all                    # quick pass
    python -m repro.experiments.run_all --full             # benchmark scale
    python -m repro.experiments.run_all --smoke --jobs 2   # CI smoke pass
    python -m repro.experiments.run_all --only E6 E7
    python -m repro.experiments.run_all --backend vectorized
    python -m repro.experiments.run_all --cache-dir .repro-cache
    python -m repro.experiments.run_all --records-dir .repro-records
    python -m repro.experiments.run_all --records-dir .repro-records --resume
    python -m repro.experiments.run_all --cost-model .repro-cost.json
    python -m repro.experiments.run_all --format json > results.json

``--jobs`` sets the worker count for the global shard queue — shards of
*different* experiments run concurrently, and records are bit-identical
for any value.  ``--cost-model`` points at the measured per-experiment
cost weights (see :mod:`repro.api.costmodel`): the first run measures
each experiment's seconds-per-unit and stores them keyed by the spec
digest; later runs size and order shards by predicted seconds instead of
unit counts.  The model is a pure scheduling hint — records stay
bit-identical with it on, off, or stale.  ``--records-dir`` streams per-replication /
per-sweep-point records to append-only JSONL files (one per experiment
run, finalized atomically); ``--resume`` re-opens an interrupted store,
skips every completed shard, and reproduces the exact records of an
uninterrupted run.  ``--backend`` installs a process-wide
:class:`~repro.api.backend.BackendPolicy` so every estimation loop
follows one dispatch rule; ``--cache-dir`` enables the result cache
(also settable via ``REPRO_EXPERIMENT_CACHE``), whose entries point into
the record store when one is active.  A failing experiment is reported
on stderr and turns the exit code nonzero instead of escaping as a
traceback; the remaining experiments still run.

``run_experiment`` / ``run_many`` remain as deprecation shims over the
runner for callers of the pre-spec API.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Dict, List, Optional

from ..api.backend import BACKEND_MODES
from ..api.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    canonical_keys,
    resolve_spec,
)
from ..api.records import ENV_RECORDS_DIR
from .report import render_result

__all__ = ["EXPERIMENTS", "run_experiment", "run_many", "main"]


def _specs() -> Dict[str, ExperimentSpec]:
    return {key: resolve_spec(key) for key in canonical_keys()}


#: Experiment id -> registered spec (kept as a mapping for discovery and
#: backwards compatibility with ``set(run_all.EXPERIMENTS)``).
EXPERIMENTS: Dict[str, ExperimentSpec] = _specs()


def run_experiment(identifier: str, full: bool = False) -> str:
    """Deprecated: run one experiment and return its report text.

    Use ``ExperimentRunner().run(identifier, scale=...)`` with
    :func:`repro.experiments.report.render_result` instead.
    """
    # stacklevel=2 blames the caller of this shim, not the shim module
    # (asserted by tests/experiments/test_shim_stacklevel.py).
    warnings.warn(
        "repro.experiments.run_all.run_experiment is deprecated; use "
        "repro.api.ExperimentRunner().run(key, scale=...) and "
        "repro.experiments.report.render_result instead",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = resolve_spec(identifier)  # KeyError on unknown ids, as before
    result = ExperimentRunner().run(spec, scale="full" if full else "quick")
    return render_result(result)


def run_many(identifiers: Optional[List[str]] = None, full: bool = False) -> str:
    """Deprecated: run several experiments and concatenate their reports.

    Use ``ExperimentRunner().run_many(...)`` instead.
    """
    warnings.warn(
        "repro.experiments.run_all.run_many is deprecated; use "
        "repro.api.ExperimentRunner().run_many(keys, scale=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    runner = ExperimentRunner()
    scale = "full" if full else "quick"
    sections = []
    for identifier in identifiers if identifiers else canonical_keys():
        result = runner.run(identifier, scale=scale)
        sections.append(f"### {result.key}\n{render_result(result)}")
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    scale_group = parser.add_mutually_exclusive_group()
    scale_group.add_argument(
        "--full", action="store_true",
        help="run at benchmark scale instead of the quick scale")
    scale_group.add_argument(
        "--smoke", action="store_true",
        help="run the minimal smoke-scale parameters (CI)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to run (default: all)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes draining the global shard "
                             "queue (records are identical for any value)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache "
                             "(default: $REPRO_EXPERIMENT_CACHE, else off)")
    parser.add_argument("--records-dir", default=None,
                        help="directory for the streamed record store "
                             f"(default: ${ENV_RECORDS_DIR}, else off)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the record store: skip completed "
                             "shards of interrupted runs (needs a records "
                             "directory)")
    parser.add_argument("--cost-model", default=None,
                        help="path of the measured cost-model file used to "
                             "size and order shards by predicted seconds "
                             "(default: $REPRO_COST_MODEL, else unit counts)")
    parser.add_argument("--backend", choices=BACKEND_MODES, default=None,
                        help="process-wide backend policy for every "
                             "estimation loop (default: auto)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json emits the structured "
                             "records and metadata)")
    args = parser.parse_args(argv)

    scale = "full" if args.full else ("smoke" if args.smoke else "quick")
    try:
        runner = ExperimentRunner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            backend=args.backend,
            records_dir=args.records_dir,
            resume=args.resume,
            cost_model=args.cost_model,
        )
    except ValueError as exc:  # e.g. --resume without a records directory
        print(f"error: {exc}", file=sys.stderr)
        return 2
    keys = args.only if args.only else canonical_keys()

    batch = runner.run_batch(keys, scale=scale)
    for label, exc in batch.failures:
        print(f"error: experiment {label} failed: {exc}", file=sys.stderr)
    results = [r for r in batch.results if r is not None]

    if args.format == "json":
        print(json.dumps([r.to_dict() for r in results], indent=2,
                         sort_keys=True))
    else:
        print("\n\n".join(
            f"### {r.key}\n{render_result(r)}" for r in results
        ))
    return 1 if batch.failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
