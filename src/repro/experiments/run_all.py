"""Run every experiment (E1–E11) and emit a single consolidated report.

This is the command-line face of the reproduction: it executes each
experiment module at a configurable scale ("quick" for a smoke pass,
"full" for the parameters the benchmarks use) and concatenates their text
reports — the same content EXPERIMENTS.md summarises.

Usage::

    python -m repro.experiments.run_all            # quick pass
    python -m repro.experiments.run_all --full     # benchmark-scale pass
    python -m repro.experiments.run_all --only E6 E7
    python -m repro.experiments.run_all --backend vectorized

``--backend`` installs a process-wide
:class:`~repro.api.backend.BackendPolicy` through the facade, so every
estimation loop in every experiment follows one dispatch rule instead of
per-module defaults.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List

from ..api.backend import BACKEND_MODES, set_default_backend
from . import (
    ablation,
    dominance,
    example1,
    example2,
    example3,
    example4,
    example5,
    lp_difference,
    ratios,
    similarity,
    theorem41,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_many", "main"]


def _e1(full: bool) -> str:
    return example1.format_report()


def _e2(full: bool) -> str:
    rows, _ = example2.run()
    return example2.format_report(rows)


def _e3(full: bool) -> str:
    return example3.format_report(example3.run(grid=200 if full else 80))


def _e4(full: bool) -> str:
    return example4.format_report(example4.run(grid=80 if full else 30))


def _e5(full: bool) -> str:
    return example5.format_report()


def _e6(full: bool) -> str:
    exponents = theorem41.DEFAULT_EXPONENTS if full else (0.1, 0.3, 0.45)
    return theorem41.format_report(theorem41.run(exponents))


def _e7(full: bool) -> str:
    grid = ratios.default_vector_grid(4 if full else 2)
    results = ratios.run(exponents=(1.0, 2.0), vectors=grid,
                         include_baselines=full)
    return ratios.format_report(results)


def _e8(full: bool) -> str:
    vectors = None if full else [(0.6, 0.2), (0.6, 0.0), (0.9, 0.45)]
    return dominance.format_report(dominance.run(vectors=vectors))


def _e9(full: bool) -> str:
    results = lp_difference.run(
        num_items=250 if full else 80,
        sampling_rates=(0.1, 0.2) if full else (0.1,),
        exponents=(1.0, 2.0) if full else (1.0,),
        replications=25 if full else 8,
    )
    return lp_difference.format_report(results)


def _e10(full: bool) -> str:
    rows = similarity.run(
        ks=(4, 8, 16) if full else (4, 12),
        num_pairs=8 if full else 4,
    )
    return similarity.format_report(rows)


def _e11(full: bool) -> str:
    rows = ablation.run(
        similarities=(0.0, 0.25, 0.5, 0.75, 0.95) if full else (0.0, 0.95),
        num_items=40 if full else 15,
    )
    return ablation.format_report(rows)


#: Experiment id -> callable(full) -> report text.
EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "E1": _e1, "E2": _e2, "E3": _e3, "E4": _e4, "E5": _e5, "E6": _e6,
    "E7": _e7, "E8": _e8, "E9": _e9, "E10": _e10, "E11": _e11,
}


def run_experiment(identifier: str, full: bool = False) -> str:
    """Run one experiment by id ('E1' ... 'E11') and return its report."""
    key = identifier.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {identifier!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key](full)


def run_many(identifiers: List[str] = None, full: bool = False) -> str:
    """Run several experiments (all by default) and concatenate reports."""
    chosen = identifiers if identifiers else list(EXPERIMENTS)
    sections = []
    for identifier in chosen:
        report = run_experiment(identifier, full=full)
        sections.append(f"### {identifier.upper()}\n{report}")
    return "\n\n".join(sections)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run at benchmark scale instead of the quick scale")
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to run (default: all)")
    parser.add_argument("--backend", choices=BACKEND_MODES, default=None,
                        help="process-wide backend policy for every "
                             "estimation loop (default: auto)")
    args = parser.parse_args(argv)
    if args.backend is None:
        print(run_many(args.only, full=args.full))
        return 0
    previous = set_default_backend(args.backend)
    try:
        print(run_many(args.only, full=args.full))
    finally:
        set_default_backend(previous)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
