"""Experiment E6 — Theorem 4.1: the L* competitive ratio is 4, and tightly so.

Theorem 4.1 states that the L* estimator is 4-competitive on every
monotone estimation problem with a finite-variance estimator, and that the
constant 4 cannot be improved: on the family

    f(v) = (1 - v^{1-p}) / (1 - p),   V = [0, 1],   PPS  tau(u) = u,

the ratio at the data point ``v = 0`` equals ``2 / (1 - p)`` and thus
approaches 4 as ``p -> 1/2``.  This experiment measures the ratio
numerically for a sweep of exponents (L* numerator by quadrature over the
generic estimator, v-optimal denominator in closed form) and reports it
against the theoretical curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.competitiveness import (
    tight_family_measured_ratio,
    tight_family_theoretical_ratio,
)
from .report import format_table

__all__ = ["RatioPoint", "DEFAULT_EXPONENTS", "run", "compute", "format_report"]

DEFAULT_EXPONENTS: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.49)


@dataclass(frozen=True)
class RatioPoint:
    """Measured vs theoretical L* ratio for one exponent of the family."""

    p: float
    measured: float
    theoretical: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured - self.theoretical) / self.theoretical


def run(exponents: Sequence[float] = DEFAULT_EXPONENTS) -> List[RatioPoint]:
    """Measure the ratio for each exponent."""
    points = []
    for p in exponents:
        points.append(
            RatioPoint(
                p=p,
                measured=tight_family_measured_ratio(p),
                theoretical=tight_family_theoretical_ratio(p),
            )
        )
    return points


def compute(params=None):
    """Spec task: measured vs theoretical ratios of the tight family."""
    params = params or {}
    exponents = tuple(params.get("exponents", DEFAULT_EXPONENTS))
    points = run(exponents)
    records = [
        {
            "p": pt.p,
            "measured": pt.measured,
            "theoretical": pt.theoretical,
            "relative_error": pt.relative_error,
            "upper_bound": 4.0,
        }
        for pt in points
    ]
    return records, {}


def format_report(points: List[RatioPoint] = None) -> str:
    points = points if points is not None else run()
    rows = [
        (pt.p, pt.measured, pt.theoretical, pt.relative_error, 4.0)
        for pt in points
    ]
    return format_table(
        headers=["p", "measured ratio", "2/(1-p)", "rel. error", "upper bound"],
        rows=rows,
        title=(
            "E6 — Theorem 4.1 tight family: L* competitive ratio approaches 4 "
            "as p -> 1/2"
        ),
    )
