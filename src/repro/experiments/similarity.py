"""Experiment E10 — closeness similarity from all-distances sketches.

Section 7 of the paper points to the social-network application: the
closeness similarity of two nodes (how alike their distance profiles are)
is estimated from their all-distances sketches via HIP inclusion
probabilities and the L* estimator, after which the per-node unbiased
estimates are summed.  We reproduce the pipeline end to end on synthetic
graphs: build coordinated ADS for every node, estimate pairwise
similarities, and compare against the exact values computed from full
shortest-path searches — sweeping the sketch parameter ``k`` to show the
error shrinking as the sketches grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.generators import small_world_graph
from ..graphs.graph import Graph
from ..graphs.similarity import (
    estimate_closeness_similarity,
    exact_closeness_similarity,
    exponential_decay,
)
from ..sketches.ads import build_all_ads, node_ranks
from .report import format_table

__all__ = [
    "SimilarityRow",
    "run",
    "compute",
    "sweep_points",
    "sweep",
    "finalize",
    "format_report",
]


@dataclass(frozen=True)
class SimilarityRow:
    """Exact vs estimated similarity for one node pair and sketch size."""

    pair: Tuple[object, object]
    k: int
    exact: float
    estimated: float

    @property
    def absolute_error(self) -> float:
        return abs(self.exact - self.estimated)


def default_graph(seed: int = 11, n: int = 120) -> Graph:
    """The synthetic stand-in for the paper's social graphs."""
    return small_world_graph(n, k=6, rewire_probability=0.1,
                             rng=np.random.default_rng(seed))


def run(
    graph: Optional[Graph] = None,
    ks: Sequence[int] = (4, 8, 16, 32),
    num_pairs: int = 12,
    alpha: Optional[Callable[[float], float]] = None,
    seed: int = 3,
    backend=None,
) -> List[SimilarityRow]:
    """Estimate similarities for random node pairs at several sketch sizes.

    ``backend`` governs the per-pair estimation path (the closed-form
    vectorized L* under the HIP step schemes vs the scalar per-outcome
    loop); the default defers to the process-wide policy.
    """
    graph = graph if graph is not None else default_graph()
    alpha = alpha if alpha is not None else exponential_decay(2.0)
    pairs = _select_pairs(graph, num_pairs, seed)

    exact_cache: Dict[Tuple[object, object], float] = {}
    rows: List[SimilarityRow] = []
    ranks = node_ranks(graph, salt="similarity-experiment")
    for k in ks:
        sketches = build_all_ads(graph, k=k, salt="similarity-experiment")
        for pair in pairs:
            if pair not in exact_cache:
                exact_cache[pair] = exact_closeness_similarity(
                    graph, pair[0], pair[1], alpha
                )
            estimate = estimate_closeness_similarity(
                sketches[pair[0]], sketches[pair[1]], ranks, alpha,
                backend=backend,
            )
            rows.append(
                SimilarityRow(
                    pair=pair, k=k, exact=exact_cache[pair], estimated=estimate.value
                )
            )
    return rows


def mean_error_by_k(rows: List[SimilarityRow]) -> Dict[int, float]:
    """Mean absolute similarity error per sketch size."""
    grouped: Dict[int, List[float]] = {}
    for row in rows:
        grouped.setdefault(row.k, []).append(row.absolute_error)
    return {k: float(np.mean(errors)) for k, errors in grouped.items()}


def _select_pairs(
    graph: Graph, num_pairs: int, seed: int
) -> List[Tuple[object, object]]:
    """The node-pair workload: random pairs plus a few adjacent ones.

    Deterministic in ``(graph, num_pairs, seed)`` — the enumeration every
    shard and every resumed run must agree on.
    """
    rng = np.random.default_rng(seed)
    nodes = graph.nodes()
    pairs: List[Tuple[object, object]] = []
    for _ in range(num_pairs):
        a, b = rng.choice(len(nodes), size=2, replace=False)
        pairs.append((nodes[int(a)], nodes[int(b)]))
    # Add a few adjacent pairs, which have high similarity.
    for node in nodes[:3]:
        neighbours = list(graph.neighbors(node))
        if neighbours:
            pairs.append((node, neighbours[0]))
    return pairs


def sweep_points(params=None) -> List[List[object]]:
    """SweepPlan hook: the node-pair grid, one unit per pair.

    Each unit covers every sketch size ``k`` for its pair, so a shard
    builds each ADS family once and amortises it over its pairs.
    """
    params = params or {}
    graph = default_graph()
    pairs = _select_pairs(
        graph,
        num_pairs=int(params.get("num_pairs", 12)),
        seed=int(params.get("seed", 3)),
    )
    return [[a, b] for a, b in pairs]


def sweep(params, points, start) -> List[dict]:
    """Sweep-shard task: exact vs estimated similarity for ``points``.

    The graph, rank assignment and per-``k`` sketch families are rebuilt
    identically in every shard (they are pure functions of the
    parameters), so records depend only on the pair, never on the shard
    boundaries.  The per-shard rebuild is a deliberate trade: it costs
    each *worker* one graph + ADS construction (milliseconds at these
    scales, overlapped across workers) in exchange for shards that need
    no shared state at all.
    """
    ks = tuple(int(k) for k in params.get("ks", (4, 8, 16, 32)))
    graph = default_graph()
    alpha = exponential_decay(2.0)
    ranks = node_ranks(graph, salt="similarity-experiment")
    sketches_by_k = {
        k: build_all_ads(graph, k=k, salt="similarity-experiment") for k in ks
    }
    records: List[dict] = []
    for a, b in points:
        exact = exact_closeness_similarity(graph, a, b, alpha)
        for k in ks:
            sketches = sketches_by_k[k]
            estimate = estimate_closeness_similarity(
                sketches[a], sketches[b], ranks, alpha
            )
            records.append(
                {
                    "pair": str((a, b)),
                    "k": k,
                    "exact": float(exact),
                    "estimated": float(estimate.value),
                    "abs_error": abs(float(exact) - float(estimate.value)),
                }
            )
    return records


def finalize(params, records):
    """Attach the mean-error-by-``k`` summary to the per-pair records."""
    grouped: Dict[int, List[float]] = {}
    for record in records:
        grouped.setdefault(int(record["k"]), []).append(
            float(record["abs_error"])
        )
    errors = {k: float(np.mean(vals)) for k, vals in grouped.items()}
    metadata = {
        "mean_error_by_k": {str(k): errors[k] for k in sorted(errors)},
        "notes": [
            f"mean |error| at k={k}: {errors[k]:.6g}" for k in sorted(errors)
        ],
    }
    return list(records), metadata


def compute(params=None):
    """Spec task: ADS similarity-estimation errors by sketch size."""
    params = params or {}
    rows = run(
        ks=tuple(int(k) for k in params.get("ks", (4, 8, 16, 32))),
        num_pairs=int(params.get("num_pairs", 12)),
        seed=int(params.get("seed", 3)),
    )
    records = [
        {
            "pair": str(row.pair),
            "k": row.k,
            "exact": row.exact,
            "estimated": row.estimated,
            "abs_error": row.absolute_error,
        }
        for row in rows
    ]
    errors = mean_error_by_k(rows)
    metadata = {
        "mean_error_by_k": {str(k): errors[k] for k in sorted(errors)},
        "notes": [
            f"mean |error| at k={k}: {errors[k]:.6g}" for k in sorted(errors)
        ],
    }
    return records, metadata


def format_report(rows: List[SimilarityRow] = None) -> str:
    rows = rows if rows is not None else run()
    errors = mean_error_by_k(rows)
    summary = format_table(
        headers=["k", "mean |error|", "#pairs"],
        rows=[
            (k, errors[k], sum(1 for r in rows if r.k == k))
            for k in sorted(errors)
        ],
        title="E10 — ADS closeness-similarity estimation error by sketch size",
    )
    detail = format_table(
        headers=["pair", "k", "exact", "estimated", "|error|"],
        rows=[
            (str(r.pair), r.k, r.exact, r.estimated, r.absolute_error)
            for r in rows
            if r.k == max(errors)
        ],
        title="Largest-k per-pair detail",
    )
    return summary + "\n\n" + detail
