"""Experiment E9 — L_p-difference estimation: customisation pays, L* is safe.

Section 7 of the paper summarises the companion experimental study:
estimating ``L_1`` and ``L_2`` differences over coordinated samples of

* IP flow records, where per-key bandwidth changes a lot between periods
  (large differences) — the U* estimator, customised for dissimilar data,
  had lower error there;
* the surnames dataset, where year-over-year frequencies are stable
  (small differences) — the L* estimator, customised for similar data,
  dominated.

The study's headline qualitative finding is asymmetric risk: L* never
loses by much (it is 4-competitive), while U* can lose badly on the
"wrong" data.  This experiment reproduces the comparison on synthetic
stand-ins with the same similarity structure (see
:mod:`repro.datasets.synthetic`), across a sweep of sampling rates.

Each replication runs through
:meth:`repro.api.session.EstimationSession.simulate` under a shared
non-unit PPS rate ``tau`` (chosen per sampling rate), with the
symmetrized one-sided estimators resolved from the registry
(``lstar_symmetric`` / ``ustar_symmetric``) — the forward-plus-backward
rescaling loop this module used to hand-roll in scalar Python now lives
in the estimator/kernel layer, so a vectorized backend batch-dispatches
it.  Replication seeds come from per-replication
:class:`numpy.random.SeedSequence` children, which is what lets the
experiment runner shard replications across processes without changing
the records (both estimators of a configuration replay the same child
seed, so the comparison stays paired).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..aggregates.dataset import MultiInstanceDataset
from ..api.session import EstimationSession
from ..datasets.synthetic import ip_flow_pairs, surname_pairs
from .report import format_table

__all__ = [
    "WorkloadResult",
    "DEFAULT_ESTIMATION",
    "run",
    "replicate",
    "finalize",
    "winners",
    "format_report",
]

#: Registry-resolved estimation pipeline (the spec's EstimationPlan
#: mirrors this): the two-sided range target with the symmetrized
#: one-sided closed forms, labelled as in the paper's study.
DEFAULT_ESTIMATION: Dict[str, Any] = {
    "scheme": "pps",
    "target": "range",
    "estimators": {"L*": "lstar_symmetric", "U*": "ustar_symmetric"},
}


@dataclass(frozen=True)
class WorkloadResult:
    """Estimation errors of one estimator on one workload configuration."""

    workload: str
    estimator: str
    p: float
    sampling_rate: float
    true_value: float
    mean_estimate: float
    mean_relative_error: float
    rmse: float


def shared_rate(dataset: MultiInstanceDataset, sampling_rate: float) -> float:
    """The shared PPS rate ``tau*`` targeting ``sampling_rate * items``.

    A single rate is shared by both instances (the closed-form per-item
    estimators assume the two entries see the same threshold), and it is
    floored at the maximum weight so every rescaled weight lies in
    ``[0, 1]`` — the canonical domain of the paper's examples.
    """
    expected = max(1.0, sampling_rate * len(dataset))
    totals = [
        dataset.total_weight(i) for i in range(dataset.num_instances)
    ]
    max_weight = max(
        (max(tup) for _, tup in dataset.iter_items()), default=1.0
    )
    return max(max(totals) / expected, max_weight, 1e-12)


def _build_workloads(
    num_items: int, dataset_seed: int
) -> Dict[str, MultiInstanceDataset]:
    """The two synthetic workloads, rebuilt identically in every shard."""
    rng = np.random.default_rng(dataset_seed)
    return {
        "ip-flows (dissimilar)": ip_flow_pairs(num_items, rng=rng),
        "surnames (similar)": surname_pairs(num_items, rng=rng),
    }


def _configurations(
    params: Mapping[str, Any]
) -> List[Tuple[str, MultiInstanceDataset, float, float]]:
    """The (workload, dataset, p, rate) sweep in a fixed, shard-stable order."""
    workloads = _build_workloads(
        int(params["num_items"]), int(params["dataset_seed"])
    )
    return [
        (name, dataset, float(p), float(rate))
        for name, dataset in workloads.items()
        for p in params["exponents"]
        for rate in params["sampling_rates"]
    ]


def _session_for(
    estimation: Mapping[str, Any], tau: float, p: float, estimator_key: str,
    backend: Any = None,
) -> EstimationSession:
    return (
        EstimationSession([tau, tau], scheme=estimation["scheme"],
                          backend=backend)
        .target(estimation["target"], p=p)
        .estimator(estimator_key)
    )


def _shard_invariant_policy(total_replications: int, num_items: int):
    """A backend policy whose dispatch ignores the shard size.

    The process-default policy decides by input size; a shard sees only
    its own slice of the replications, so under ``auto`` a small shard
    could resolve to the scalar path while the whole run resolves to the
    kernels — and the two differ in floating-point summation order,
    breaking the bit-identical-for-any-``jobs`` guarantee.  Deciding once
    on the *total* replication × item grid and pinning the result keeps
    every shard on the same path.
    """
    from ..api.backend import BackendPolicy, default_backend

    decision = default_backend().resolve(total_replications * num_items)
    if decision == "auto":
        # Above the threshold: use a kernel whenever one exists,
        # regardless of how small an individual shard is.
        return BackendPolicy(mode="auto", auto_threshold=0)
    return BackendPolicy(mode=decision)


def replicate(
    params: Mapping[str, Any],
    children: Sequence[np.random.SeedSequence],
    start: int,
) -> List[Dict[str, Any]]:
    """One record per (replication, configuration, estimator).

    ``children`` are the replication seed sequences of this shard.  Per
    configuration, every replication's per-item seeds are derived from
    that replication's spawned child alone (shard-invariant) and stacked
    into one matrix, so the whole shard runs as a *single*
    ``session.simulate`` call per estimator — which is what lets the
    backend policy batch the replication × item grid through the
    non-unit-rate engine kernels.  Both estimators of a configuration
    share the seed matrix, so the comparison is paired exactly as in the
    original study.
    """
    estimation = dict(params.get("estimation") or DEFAULT_ESTIMATION)
    configurations = _configurations(params)
    # Everything replication-independent — the shared rate, the tuple
    # list, the sessions — is prepared once per configuration; the
    # replication loop only derives seeds.
    total_replications = int(params.get("replications", len(children)))
    tuples_by_workload: Dict[str, List[Tuple[float, ...]]] = {}
    prepared = []
    for workload, dataset, p, rate in configurations:
        if workload not in tuples_by_workload:
            tuples_by_workload[workload] = [
                dataset.tuple_for(key) for key in dataset.items
            ]
        tau = shared_rate(dataset, rate)
        policy = _shard_invariant_policy(total_replications, len(dataset))
        sessions = {
            label: _session_for(estimation, tau, p, estimator_key, policy)
            for label, estimator_key in estimation["estimators"].items()
        }
        prepared.append(
            (workload, p, rate, tuples_by_workload[workload], sessions)
        )
    config_seeds = [child.spawn(len(prepared)) for child in children]
    records: List[Dict[str, Any]] = []
    for index, (workload, p, rate, tuples, sessions) in enumerate(prepared):
        seed_matrix = np.stack(
            [
                1.0 - np.random.default_rng(per_config[index]).random(len(tuples))
                for per_config in config_seeds
            ]
        )
        for label, session in sessions.items():
            summary = session.simulate(
                tuples, replications=len(children), seeds=seed_matrix
            ).metadata["summary"]
            for offset, estimate in enumerate(summary.estimates):
                records.append(
                    {
                        "replication": start + offset,
                        "workload": workload,
                        "p": p,
                        "rate": rate,
                        "estimator": label,
                        "estimate": float(estimate),
                    }
                )
    return records


def finalize(
    params: Mapping[str, Any], records: List[Mapping[str, Any]]
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Reduce per-replication estimates to the E9 error table."""
    configurations = _configurations(params)
    truth: Dict[Tuple[str, float], float] = {}
    session = EstimationSession()
    for workload, dataset, p, _rate in configurations:
        if (workload, p) not in truth:
            truth[(workload, p)] = session.query(
                "lpp", dataset, p=p, instances=(0, 1)
            ).value
    grouped: Dict[Tuple[str, float, float, str], List[Mapping[str, Any]]] = {}
    for record in records:
        key = (
            record["workload"], record["p"], record["rate"],
            record["estimator"],
        )
        grouped.setdefault(key, []).append(record)
    estimation = dict(params.get("estimation") or DEFAULT_ESTIMATION)
    labels = list(estimation["estimators"])
    final: List[Dict[str, Any]] = []
    for workload, _dataset, p, rate in configurations:
        for label in labels:
            group = sorted(
                grouped.get((workload, p, rate, label), ()),
                key=lambda r: r["replication"],
            )
            estimates = np.array([r["estimate"] for r in group])
            true_value = truth[(workload, p)]
            final.append(
                {
                    "workload": workload,
                    "p": p,
                    "rate": rate,
                    "estimator": label,
                    "true_value": true_value,
                    "mean_estimate": float(estimates.mean()),
                    "mean_relative_error": float(
                        np.mean(np.abs(estimates - true_value))
                        / max(true_value, 1e-12)
                    ),
                    "rmse": float(
                        np.sqrt(np.mean((estimates - true_value) ** 2))
                    ),
                }
            )
    results = _as_results(final)
    who_won = winners(results)
    notes = ["Lower-RMSE estimator per configuration:"]
    for (workload, p, rate), name in sorted(who_won.items()):
        notes.append(f"  {workload} p={p} rate={rate}: {name}")
    metadata = {
        "winners": {
            f"{workload} p={p} rate={rate}": name
            for (workload, p, rate), name in sorted(who_won.items())
        },
        "notes": notes,
    }
    return final, metadata


def _as_results(records: Sequence[Mapping[str, Any]]) -> List[WorkloadResult]:
    return [
        WorkloadResult(
            workload=r["workload"],
            estimator=r["estimator"],
            p=r["p"],
            sampling_rate=r["rate"],
            true_value=r["true_value"],
            mean_estimate=r["mean_estimate"],
            mean_relative_error=r["mean_relative_error"],
            rmse=r["rmse"],
        )
        for r in records
    ]


def run(
    num_items: int = 400,
    sampling_rates: Sequence[float] = (0.05, 0.1, 0.2),
    exponents: Sequence[float] = (1.0, 2.0),
    replications: int = 40,
    seed: int = 7,
) -> List[WorkloadResult]:
    """Run the full comparison on the two synthetic workloads.

    ``seed`` roots both the dataset generation and the per-replication
    :class:`~numpy.random.SeedSequence` spawn, so the output is a pure
    function of the arguments (and matches the registered E9 spec run at
    the same parameters, shard count notwithstanding).
    """
    params = {
        "num_items": int(num_items),
        "sampling_rates": [float(r) for r in sampling_rates],
        "exponents": [float(p) for p in exponents],
        "replications": int(replications),
        "dataset_seed": int(seed),
        "estimation": DEFAULT_ESTIMATION,
    }
    children = np.random.SeedSequence(seed).spawn(int(replications))
    records = replicate(params, children, 0)
    final, _metadata = finalize(params, records)
    return _as_results(final)


def winners(results: List[WorkloadResult]) -> Dict[Tuple[str, float, float], str]:
    """Which estimator had the lower RMSE per (workload, p, rate)."""
    table: Dict[Tuple[str, float, float], Dict[str, float]] = {}
    for r in results:
        table.setdefault((r.workload, r.p, r.sampling_rate), {})[r.estimator] = r.rmse
    return {
        key: min(scores, key=scores.get) for key, scores in table.items()
    }


def format_report(results: List[WorkloadResult] = None) -> str:
    results = results if results is not None else run()
    rows = [
        (
            r.workload,
            r.p,
            r.sampling_rate,
            r.estimator,
            r.true_value,
            r.mean_estimate,
            r.mean_relative_error,
            r.rmse,
        )
        for r in results
    ]
    table = format_table(
        headers=[
            "workload",
            "p",
            "rate",
            "estimator",
            "true Lp^p",
            "mean est.",
            "mean rel. err",
            "rmse",
        ],
        rows=rows,
        title="E9 — Lp-difference estimation on similar vs dissimilar workloads",
    )
    who_won = winners(results)
    lines = [table, "", "Lower-RMSE estimator per configuration:"]
    for (workload, p, rate), name in sorted(who_won.items()):
        lines.append(f"  {workload} p={p} rate={rate}: {name}")
    return "\n".join(lines)
