"""Experiment E9 — L_p-difference estimation: customisation pays, L* is safe.

Section 7 of the paper summarises the companion experimental study:
estimating ``L_1`` and ``L_2`` differences over coordinated samples of

* IP flow records, where per-key bandwidth changes a lot between periods
  (large differences) — the U* estimator, customised for dissimilar data,
  had lower error there;
* the surnames dataset, where year-over-year frequencies are stable
  (small differences) — the L* estimator, customised for similar data,
  dominated.

The study's headline qualitative finding is asymmetric risk: L* never
loses by much (it is 4-competitive), while U* can lose badly on the
"wrong" data.  This experiment reproduces the comparison on synthetic
stand-ins with the same similarity structure (see
:mod:`repro.datasets.synthetic`), across a sweep of sampling rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aggregates.coordinated import CoordinatedPPSSampler
from ..aggregates.dataset import MultiInstanceDataset
from ..api.session import EstimationSession
from ..datasets.synthetic import ip_flow_pairs, surname_pairs
from ..estimators.lstar import LStarOneSidedRangePPS
from ..estimators.ustar import UStarOneSidedRangePPS
from .report import format_table

__all__ = ["WorkloadResult", "run", "format_report"]


@dataclass(frozen=True)
class WorkloadResult:
    """Estimation errors of one estimator on one workload configuration."""

    workload: str
    estimator: str
    p: float
    sampling_rate: float
    true_value: float
    mean_estimate: float
    mean_relative_error: float
    rmse: float


def _scaled_sampler(
    dataset: MultiInstanceDataset, sampling_rate: float
) -> CoordinatedPPSSampler:
    """PPS sampler targeting ``sampling_rate * items`` per instance.

    A single rate ``tau*`` is shared by both instances (the closed-form
    per-item estimators assume the two entries see the same threshold),
    and it is floored at the maximum weight so every rescaled weight lies
    in ``[0, 1]`` — the canonical domain of the paper's examples.
    """
    expected = max(1.0, sampling_rate * len(dataset))
    totals = [
        dataset.total_weight(i) for i in range(dataset.num_instances)
    ]
    max_weight = max(
        (max(tup) for _, tup in dataset.iter_items()), default=1.0
    )
    tau = max(max(totals) / expected, max_weight, 1e-12)
    return CoordinatedPPSSampler([tau] * dataset.num_instances)


def _evaluate(
    dataset: MultiInstanceDataset,
    workload: str,
    p: float,
    sampling_rate: float,
    replications: int,
    rng: np.random.Generator,
) -> List[WorkloadResult]:
    sampler = _scaled_sampler(dataset, sampling_rate)
    true_value = EstimationSession().query(
        "lpp", dataset, p=p, instances=(0, 1)
    ).value
    estimators = {
        "L*": LStarOneSidedRangePPS(p=p),
        "U*": UStarOneSidedRangePPS(p=p),
    }
    estimates: Dict[str, List[float]] = {name: [] for name in estimators}
    for _ in range(replications):
        sample = sampler.sample(dataset, rng=rng)
        for name, per_item in estimators.items():
            # The closed-form estimators require tau*=1; rescale weights and
            # the result instead when the sampler uses another rate.
            estimates[name].append(
                _estimate_with_rescaling(sample, sampler, dataset, p, per_item)
            )
    results = []
    for name, values in estimates.items():
        arr = np.array(values)
        results.append(
            WorkloadResult(
                workload=workload,
                estimator=name,
                p=p,
                sampling_rate=sampling_rate,
                true_value=true_value,
                mean_estimate=float(arr.mean()),
                mean_relative_error=float(
                    np.mean(np.abs(arr - true_value)) / max(true_value, 1e-12)
                ),
                rmse=float(np.sqrt(np.mean((arr - true_value) ** 2))),
            )
        )
    return results


def _estimate_with_rescaling(sample, sampler, dataset, p, per_item_estimator):
    """Estimate ``L_p^p`` using the generic pipeline with the closed-form
    per-item estimators.

    The closed forms assume the canonical ``tau* = 1`` scheme, i.e. weights
    in ``[0, 1]`` sampled with probability equal to their value.  Weights
    here are arbitrary, so each item tuple is rescaled by its instance's
    ``tau*`` before estimation and the estimate is scaled back by
    ``tau*^p`` — an exact reparametrisation, not an approximation, because
    the PPS inclusion event ``w >= u * tau*`` equals ``w / tau* >= u``.
    """
    from ..core.schemes import pps_scheme
    from ..core.outcome import Outcome

    rates = sampler.tau_star
    if abs(rates[0] - rates[1]) > 1e-9 * max(rates):
        raise ValueError(
            "the closed-form rescaling path assumes equal tau* for the two "
            "instances being compared"
        )
    scale = rates[0]
    unit_scheme = pps_scheme([1.0, 1.0])
    total = 0.0
    for key in sample.sampled_items():
        outcome = sample.outcome_for(key, instances=(0, 1))
        scaled = Outcome(
            seed=outcome.seed,
            values=tuple(
                None if v is None else v / scale for v in outcome.values
            ),
            scheme=unit_scheme,
        )
        forward = per_item_estimator.estimate(scaled)
        backward = per_item_estimator.estimate(
            Outcome(seed=scaled.seed, values=scaled.values[::-1], scheme=unit_scheme)
        )
        total += (forward + backward) * scale ** p
    return total


def run(
    num_items: int = 400,
    sampling_rates: Sequence[float] = (0.05, 0.1, 0.2),
    exponents: Sequence[float] = (1.0, 2.0),
    replications: int = 40,
    seed: int = 7,
) -> List[WorkloadResult]:
    """Run the full comparison on the two synthetic workloads."""
    rng = np.random.default_rng(seed)
    workloads = {
        "ip-flows (dissimilar)": ip_flow_pairs(num_items, rng=rng),
        "surnames (similar)": surname_pairs(num_items, rng=rng),
    }
    results: List[WorkloadResult] = []
    for workload_name, dataset in workloads.items():
        for p in exponents:
            for rate in sampling_rates:
                results.extend(
                    _evaluate(dataset, workload_name, p, rate, replications, rng)
                )
    return results


def winners(results: List[WorkloadResult]) -> Dict[Tuple[str, float, float], str]:
    """Which estimator had the lower RMSE per (workload, p, rate)."""
    table: Dict[Tuple[str, float, float], Dict[str, float]] = {}
    for r in results:
        table.setdefault((r.workload, r.p, r.sampling_rate), {})[r.estimator] = r.rmse
    return {
        key: min(scores, key=scores.get) for key, scores in table.items()
    }


def format_report(results: List[WorkloadResult] = None) -> str:
    results = results if results is not None else run()
    rows = [
        (
            r.workload,
            r.p,
            r.sampling_rate,
            r.estimator,
            r.true_value,
            r.mean_estimate,
            r.mean_relative_error,
            r.rmse,
        )
        for r in results
    ]
    table = format_table(
        headers=[
            "workload",
            "p",
            "rate",
            "estimator",
            "true Lp^p",
            "mean est.",
            "mean rel. err",
            "rmse",
        ],
        rows=rows,
        title="E9 — Lp-difference estimation on similar vs dissimilar workloads",
    )
    who_won = winners(results)
    lines = [table, "", "Lower-RMSE estimator per configuration:"]
    for (workload, p, rate), name in sorted(who_won.items()):
        lines.append(f"  {workload} p={p} rate={rate}: {name}")
    return "\n".join(lines)
