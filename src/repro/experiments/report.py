"""Plain-text reporting helpers shared by the experiment modules.

Every experiment returns structured data (dataclasses / dicts / lists of
rows) *and* can render itself as an aligned text table, so the same code
path serves the benchmarks, the EXPERIMENTS.md records, and interactive
use.  No plotting dependency is required: "figures" are emitted as the
numeric series behind them.

:func:`render_result` is the rendering seam of the declarative pipeline:
an :class:`~repro.api.experiments.ExperimentResult` — records plus
metadata, whatever experiment produced it — becomes the text section the
``run_all`` CLI prints, so the experiment tasks themselves never format
anything.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_mapping", "render_result"]


def _fmt(value, precision: int = 6) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 6,
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], precision: int = 6
) -> str:
    """Render one (x, y) series — the text form of a figure curve."""
    pairs = ", ".join(
        f"({_fmt(x, precision)}, {_fmt(y, precision)})" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def format_mapping(mapping: Mapping[str, object], precision: int = 6) -> str:
    """Render a flat mapping as ``key = value`` lines."""
    return "\n".join(f"{key} = {_fmt(value, precision)}" for key, value in mapping.items())


def render_result(result, precision: int = 6) -> str:
    """Text section for one :class:`~repro.api.experiments.ExperimentResult`.

    Also accepts a finalized :class:`~repro.api.records.StoredRun` (the
    record-store reader's view), so a run can be rendered straight from
    its on-disk stream.

    Layout: a title line (``E9 — <title>``), the record table, any
    ``notes`` lines the experiment attached to its metadata, and one
    provenance line (scale, backend, jobs, wall-clock, cache state).
    """
    if hasattr(result, "to_experiment_result"):
        result = result.to_experiment_result()
    lines: List[str] = [f"{result.key} — {result.title}"]
    records = list(result.records)
    if records:
        headers = list(records[0].keys())
        rows = [[record.get(h) for h in headers] for record in records]
        lines.append(format_table(headers, rows, precision=precision))
    notes = result.metadata.get("notes") or ()
    if notes:
        lines.append("")
        lines.extend(str(note) for note in notes)
    lines.append("")
    lines.append(_provenance_line(result))
    return "\n".join(lines)


def _provenance_line(result) -> str:
    metadata = result.metadata
    bits = [f"scale={result.scale}"]
    if metadata.get("backend"):
        bits.append(f"backend={metadata['backend']}")
    if metadata.get("replications"):
        bits.append(f"replications={metadata['replications']}")
    if metadata.get("jobs"):
        bits.append(f"jobs={metadata['jobs']}")
    if metadata.get("elapsed_s") is not None:
        bits.append(f"elapsed={metadata['elapsed_s']:.3g}s")
    cache = metadata.get("cache")
    if cache:
        bits.append("cache=hit" if cache.get("hit") else "cache=stored")
    records = metadata.get("records")
    if records:
        if records.get("hit"):
            bits.append("records=replayed")
        elif records.get("resumed_shards"):
            bits.append(
                f"records=streamed(resumed {len(records['resumed_shards'])})"
            )
        else:
            bits.append("records=streamed")
    return "[" + " ".join(bits) + "]"
