"""Plain-text reporting helpers shared by the experiment modules.

Every experiment returns structured data (dataclasses / dicts / lists of
rows) *and* can render itself as an aligned text table, so the same code
path serves the benchmarks, the EXPERIMENTS.md records, and interactive
use.  No plotting dependency is required: "figures" are emitted as the
numeric series behind them.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_mapping"]


def _fmt(value, precision: int = 6) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 6,
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], precision: int = 6
) -> str:
    """Render one (x, y) series — the text form of a figure curve."""
    pairs = ", ".join(
        f"({_fmt(x, precision)}, {_fmt(y, precision)})" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def format_mapping(mapping: Mapping[str, object], precision: int = 6) -> str:
    """Render a flat mapping as ``key = value`` lines."""
    return "\n".join(f"{key} = {_fmt(value, precision)}" for key, value in mapping.items())
