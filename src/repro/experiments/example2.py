"""Experiment E2 — Example 2: coordinated PPS sampling of the Example 1 data.

Example 2 fixes the per-item seeds and lists, for each item, which entries
end up in the coordinated PPS samples (threshold ``tau* = 1`` for every
instance, so an entry is sampled exactly when its weight is at least the
item's seed).  This experiment replays the sampling with the paper's seeds
and checks the resulting outcome patterns against the ones printed in the
paper, including the consistency sets quoted for items ``a`` and ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..aggregates.coordinated import CoordinatedSample
from ..aggregates.dataset import example1_dataset
from ..api.session import EstimationSession
from .report import format_table

__all__ = [
    "PAPER_SEEDS", "PAPER_PATTERNS", "OutcomeRow", "run", "compute",
    "format_report",
]

#: The per-item seeds fixed in Example 2 of the paper.
PAPER_SEEDS: Dict[str, float] = {
    "a": 0.32,
    "b": 0.21,
    "c": 0.04,
    "d": 0.23,
    "e": 0.84,
    "f": 0.70,
    "g": 0.15,
    "h": 0.64,
}

#: The sampled-entry patterns the paper reports (value or None per instance).
PAPER_PATTERNS: Dict[str, Tuple[Optional[float], ...]] = {
    "a": (0.95, None, None),
    "b": (None, 0.44, None),
    "c": (0.23, None, None),
    "d": (0.70, 0.80, None),
    "e": (None, None, None),
    "f": (None, None, None),
    "g": (None, 0.20, None),
    "h": (None, None, None),
}


@dataclass(frozen=True)
class OutcomeRow:
    """The sampled pattern of one item, ours vs. the paper's."""

    item: str
    seed: float
    computed: Tuple[Optional[float], ...]
    paper: Tuple[Optional[float], ...]

    @property
    def matches_paper(self) -> bool:
        return self.computed == self.paper


def run() -> Tuple[List[OutcomeRow], CoordinatedSample]:
    """Replay Example 2's coordinated PPS sampling with the fixed seeds."""
    dataset = example1_dataset()
    session = EstimationSession([1.0, 1.0, 1.0], scheme="pps")
    sample = session.sample(dataset, seeds=PAPER_SEEDS)
    rows: List[OutcomeRow] = []
    for item in sorted(PAPER_SEEDS):
        tup = dataset.tuple_for(item)
        seed = PAPER_SEEDS[item]
        computed = tuple(
            value if value >= seed and value > 0 else None for value in tup
        )
        rows.append(
            OutcomeRow(
                item=item,
                seed=seed,
                computed=computed,
                paper=PAPER_PATTERNS[item],
            )
        )
    return rows, sample


def consistency_bounds(item: str) -> Dict[str, object]:
    """The consistency set ``S*`` of an item, in the paper's notation.

    For item ``a`` the paper states ``S* = {0.95} x [0, 0.32)^2`` and for
    ``h`` the all-unsampled box ``[0, 0.64)^3``; this helper reproduces the
    same description for any item.
    """
    dataset = example1_dataset()
    seed = PAPER_SEEDS[item]
    tup = dataset.tuple_for(item)
    description = []
    for value in tup:
        if value >= seed and value > 0:
            description.append(("known", value))
        else:
            description.append(("below", seed))
    return {"item": item, "seed": seed, "entries": description}


def compute(params=None):
    """Spec task: Example 2 outcome patterns as structured records."""
    rows, sample = run()
    records = [
        {
            "item": row.item,
            "seed": row.seed,
            "computed": _show(row.computed),
            "paper": _show(row.paper),
            "agrees": row.matches_paper,
        }
        for row in rows
    ]
    metadata = {
        "sampled_items": sorted(sample.sampled_items()),
        "storage_size": sample.storage_size(),
    }
    return records, metadata


def _show(pattern: Tuple[Optional[float], ...]) -> str:
    return "(" + ", ".join("*" if v is None else f"{v:g}" for v in pattern) + ")"


def format_report(rows: List[OutcomeRow] = None) -> str:
    if rows is None:
        rows, _ = run()

    def show(pattern: Tuple[Optional[float], ...]) -> str:
        return "(" + ", ".join("*" if v is None else f"{v:g}" for v in pattern) + ")"

    return format_table(
        headers=["item", "seed", "computed outcome", "paper outcome", "agrees"],
        rows=[
            (row.item, row.seed, show(row.computed), show(row.paper),
             "yes" if row.matches_paper else "NO")
            for row in rows
        ],
        title="E2 — Example 2 coordinated PPS outcomes (tau*=1, fixed seeds)",
    )
