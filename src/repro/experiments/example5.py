"""Experiment E5 — Example 5: ≺+-optimal estimators over a finite domain.

Example 5 walks through the constructive derivation of order-optimal
``RG_1+`` estimators over ``V = {0, 1, 2, 3}^2`` with per-value inclusion
probabilities ``pi_1 < pi_2 < pi_3`` (value ``w`` is sampled iff the seed
is at most ``pi_w``).  The example derives three estimators:

* the order that prioritises *small* differences, which yields the L*
  estimator;
* the order that prioritises *large* differences, which yields U*;
* a custom order that prioritises vectors with difference exactly 2,
  together with explicit closed-form expressions for the estimates the
  unbiasedness constraints then force on the remaining outcomes.

This experiment rebuilds all three with the library's generic
order-optimal construction and compares every table entry against the
paper's expressions, for a configurable choice of the probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.domain import GridDomain
from ..core.functions import OneSidedRange
from ..core.schemes import CoordinatedScheme, StepThreshold
from ..estimators.order_optimal import (
    DiscreteProblem,
    OrderOptimalEstimator,
    build_order_optimal,
    order_by_target_ascending,
    order_by_target_descending,
)
from .report import format_table

__all__ = [
    "DEFAULT_PROBABILITIES",
    "build_problem",
    "paper_voptimal_tables",
    "run",
    "compute",
    "format_report",
]

#: Default inclusion probabilities (pi_1, pi_2, pi_3); any increasing
#: triple in (0, 1] reproduces the example.
DEFAULT_PROBABILITIES: Tuple[float, float, float] = (0.25, 0.5, 0.75)


def build_problem(
    probabilities: Tuple[float, float, float] = DEFAULT_PROBABILITIES,
) -> DiscreteProblem:
    """The Example 5 estimation problem: RG_1+ over ``{0..3}^2``."""
    pi1, pi2, pi3 = probabilities
    if not 0 < pi1 < pi2 < pi3 <= 1.0:
        raise ValueError("need 0 < pi1 < pi2 < pi3 <= 1")
    threshold = StepThreshold([(0.0, 0.0), (1.0, pi1), (2.0, pi2), (3.0, pi3)])
    scheme = CoordinatedScheme([threshold, threshold])
    domain = GridDomain.uniform([0.0, 1.0, 2.0, 3.0], dimension=2)
    return DiscreteProblem(scheme, OneSidedRange(p=1.0), domain)


def paper_voptimal_tables(
    probabilities: Tuple[float, float, float] = DEFAULT_PROBABILITIES,
) -> Dict[Tuple[float, float], Dict[int, float]]:
    """The v-optimal estimate table printed in Example 5.

    Keys are the data vectors with ``RG_1+ > 0``; values map the seed
    interval index (0 is ``(0, pi1]``, 1 is ``(pi1, pi2]``, 2 is
    ``(pi2, pi3]``) to the paper's closed-form v-optimal estimate.
    """
    pi1, pi2, pi3 = probabilities
    table: Dict[Tuple[float, float], Dict[int, float]] = {}
    table[(1.0, 0.0)] = {0: 1.0 / pi1, 1: 0.0, 2: 0.0}
    table[(2.0, 1.0)] = {0: 1.0 / pi2, 1: 1.0 / pi2, 2: 0.0}
    est_21 = min(2.0 / pi2, 1.0 / (pi2 - pi1))
    table[(2.0, 0.0)] = {
        0: (2.0 - (pi2 - pi1) * est_21) / pi1,
        1: est_21,
        2: 0.0,
    }
    table[(3.0, 2.0)] = {0: 1.0 / pi3, 1: 1.0 / pi3, 2: 1.0 / pi3}
    est_31_mid = min(2.0 / pi3, 1.0 / (pi3 - pi2))
    table[(3.0, 1.0)] = {
        0: (2.0 - (pi3 - pi2) * est_31_mid) / pi2,
        1: (2.0 - (pi3 - pi2) * est_31_mid) / pi2,
        2: est_31_mid,
    }
    est_30_low = min(3.0 / pi3, 1.0 / (pi3 - pi2))
    est_30_mid = min(
        (3.0 - est_30_low * (pi3 - pi2)) / pi2,
        (2.0 - est_30_low * (pi3 - pi2)) / (pi2 - pi1),
    )
    table[(3.0, 0.0)] = {
        0: (3.0 - est_30_mid * (pi2 - pi1) - est_30_low * (pi3 - pi2)) / pi1,
        1: est_30_mid,
        2: est_30_low,
    }
    return table


def difference_two_first(problem: DiscreteProblem) -> List[Tuple[float, float]]:
    """The custom order of Example 5: vectors with difference 2 first.

    Within each priority class the order refines by the target value (any
    refinement gives the same estimator on the outcomes that matter).
    """

    def priority(vector: Tuple[float, float]) -> Tuple[float, float]:
        difference = vector[0] - vector[1]
        main = 0.0 if difference == 2.0 else 1.0
        return (main, problem.value(vector))

    return sorted(problem.vectors, key=lambda v: (priority(v), v))


@dataclass(frozen=True)
class Example5Result:
    """The three order-optimal estimators of Example 5."""

    problem: DiscreteProblem
    lstar_order: OrderOptimalEstimator
    ustar_order: OrderOptimalEstimator
    custom_order: OrderOptimalEstimator


def run(
    probabilities: Tuple[float, float, float] = DEFAULT_PROBABILITIES,
) -> Example5Result:
    """Build the three estimators of Example 5."""
    problem = build_problem(probabilities)
    lstar = build_order_optimal(
        problem, order=order_by_target_ascending(problem), order_name="f ascending (L*)"
    )
    ustar = build_order_optimal(
        problem, order=order_by_target_descending(problem), order_name="f descending (U*)"
    )
    custom = build_order_optimal(
        problem, order=difference_two_first(problem), order_name="difference-2 first"
    )
    return Example5Result(
        problem=problem, lstar_order=lstar, ustar_order=ustar, custom_order=custom
    )


def custom_order_paper_values(
    result: Example5Result,
    probabilities: Tuple[float, float, float] = DEFAULT_PROBABILITIES,
) -> Dict[str, Tuple[float, float]]:
    """The explicit unbiasedness-forced estimates quoted for the custom order.

    Returns, per outcome named as in the paper, the pair
    ``(library value, expected expression value)``.

    The paper's displayed expression for the ``(3, 2)`` outcome reads
    ``(2 - (pi3 - pi2) * est(3, <=2)) / pi1``; that cannot be right — the
    outcome ``(3, 2)`` has ``f = 1`` (not 2) and occupies the seed range
    ``(0, pi2]`` (not ``(0, pi1]``), so unbiasedness for the vector
    ``(3, 2)`` forces ``(1 - (pi3 - pi2) * est(3, <=2)) / pi2`` instead.
    We compare against the corrected expression (the paper's own ``(2, 1)``
    and ``(3, 0)`` lines follow exactly this pattern) and note the typo in
    EXPERIMENTS.md.
    """
    pi1, pi2, pi3 = probabilities
    estimator = result.custom_order

    def estimate(vector: Tuple[float, float], seed: float) -> float:
        return estimator.estimate_for_vector(vector, seed)

    mid = lambda a, b: 0.5 * (a + b)  # noqa: E731 - tiny local helper
    values: Dict[str, Tuple[float, float]] = {}
    # Outcome (2, <=1) is the outcome of (2, 1) and (2, 0) on (pi1, pi2].
    est_2_le1 = estimate((2.0, 0.0), mid(pi1, pi2))
    # Outcome (3, <=2) on (pi2, pi3]; (3, <=1) on (pi1, pi2].
    est_3_le2 = estimate((3.0, 1.0), mid(pi2, pi3))
    est_3_le1 = estimate((3.0, 1.0), mid(pi1, pi2))
    values["(2,1) on (0, pi1]"] = (
        estimate((2.0, 1.0), mid(0.0, pi1)),
        (1.0 - (pi2 - pi1) * est_2_le1) / pi1,
    )
    values["(3,0) on (0, pi1]"] = (
        estimate((3.0, 0.0), mid(0.0, pi1)),
        (3.0 - (pi3 - pi2) * est_3_le2 - (pi2 - pi1) * est_3_le1) / pi1,
    )
    values["(3,2) on (0, pi2] (corrected expression)"] = (
        estimate((3.0, 2.0), mid(0.0, pi1)),
        (1.0 - (pi3 - pi2) * est_3_le2) / pi2,
    )
    return values


def compute(params=None):
    """Spec task: the three order-optimal tables plus the forced-value
    comparisons against the paper's (corrected) expressions."""
    params = params or {}
    probabilities = tuple(params.get("probabilities", DEFAULT_PROBABILITIES))
    result = run(probabilities)
    problem = result.problem
    intervals = problem.intervals
    estimators = {
        "lstar_order": result.lstar_order,
        "ustar_order": result.ustar_order,
        "custom_order": result.custom_order,
    }
    records = []
    positive = [v for v in problem.vectors if problem.value(v) > 0]
    for v in sorted(positive, key=lambda t: (problem.value(t), t)):
        record = {"vector": str(v)}
        for column, estimator in estimators.items():
            record[column] = " / ".join(
                f"{estimator.estimate_for_vector(v, iv.midpoint):.4g}"
                for iv in intervals
            )
        records.append(record)
    forced = custom_order_paper_values(result, probabilities)
    notes = ["Unbiasedness-forced estimates of the custom order vs paper:"]
    all_agree = True
    for name, (ours, paper) in forced.items():
        agree = abs(ours - paper) <= 1e-9
        all_agree = all_agree and agree
        notes.append(
            f"[{'ok' if agree else 'FAIL'}] {name}: library={ours:.6g} "
            f"paper={paper:.6g}"
        )
    metadata = {
        "probabilities": list(probabilities),
        "forced_values_agree": all_agree,
        "notes": notes,
    }
    return records, metadata


def format_report(
    probabilities: Tuple[float, float, float] = DEFAULT_PROBABILITIES,
) -> str:
    result = run(probabilities)
    problem = result.problem
    intervals = problem.intervals
    positive_vectors = [v for v in problem.vectors if problem.value(v) > 0]
    rows = []
    for v in sorted(positive_vectors, key=lambda t: (problem.value(t), t)):
        row = [f"{v}"]
        for estimator in (result.lstar_order, result.ustar_order, result.custom_order):
            cells = [
                f"{estimator.estimate_for_vector(v, iv.midpoint):.4g}"
                for iv in intervals
                if problem.value(v) > 0
            ]
            row.append(" / ".join(cells))
        rows.append(row)
    table = format_table(
        headers=["vector", "L*-order (per interval)", "U*-order", "difference-2 first"],
        rows=rows,
        title=(
            "E5 — Example 5 order-optimal estimators over {0..3}^2, RG_1+, "
            f"pi={probabilities} (per seed interval, most informative first)"
        ),
    )
    forced = custom_order_paper_values(result, probabilities)
    lines = [table, "", "Unbiasedness-forced estimates of the custom order vs paper:"]
    for name, (ours, paper) in forced.items():
        agree = "ok" if abs(ours - paper) <= 1e-9 else "FAIL"
        lines.append(f"[{agree}] {name}: library={ours:.6g} paper={paper:.6g}")
    return "\n".join(lines)
