"""Experiment E1 — Example 1 of the paper: the dataset-and-queries table.

Example 1 introduces a 3-instance, 8-item dataset and evaluates a handful
of queries over selected item subsets (``L_1``, ``L_2^2``, ``L_2``,
``L_1+`` and the custom aggregate ``G``).  This experiment reproduces the
exact query values with the library's query engine and reports them next
to the numbers printed in the paper.

Two of the paper's hand-computed values (``L_1({b,c,e})`` and
``L_1+({b,c,e})``, and the value of ``G({b,d})``) contain small arithmetic
slips; the comparison table keeps both numbers so the discrepancy is
visible rather than hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..aggregates.dataset import MultiInstanceDataset, example1_dataset
from ..api.session import EstimationSession
from ..core.functions import AbsoluteCombination
from .report import format_table

__all__ = ["QueryRow", "run", "compute", "format_report"]


@dataclass(frozen=True)
class QueryRow:
    """One query of Example 1: our exact value vs. the paper's."""

    query: str
    selection: Tuple[str, ...]
    computed: float
    paper_value: float

    @property
    def matches_paper(self) -> bool:
        return abs(self.computed - self.paper_value) <= 5e-3


def run(dataset: MultiInstanceDataset = None) -> List[QueryRow]:
    """Evaluate every query of Example 1 exactly, through the facade."""
    data = dataset if dataset is not None else example1_dataset()
    session = EstimationSession()
    g_target = AbsoluteCombination([1.0, -2.0, 1.0], p=2.0)

    def query(name: str, **kwargs) -> float:
        return session.query(name, data, **kwargs).value

    rows = [
        QueryRow(
            query="L1",
            selection=("b", "c", "e"),
            computed=query("lpp", p=1.0, instances=(0, 1),
                           selection=["b", "c", "e"]),
            paper_value=0.71,
        ),
        QueryRow(
            query="L2^2",
            selection=("c", "f", "h"),
            computed=query("lpp", p=2.0, instances=(0, 1),
                           selection=["c", "f", "h"]),
            paper_value=0.16,
        ),
        QueryRow(
            query="L2",
            selection=("c", "f", "h"),
            computed=query("lp", p=2.0, instances=(0, 1),
                           selection=["c", "f", "h"]),
            paper_value=0.40,
        ),
        QueryRow(
            query="L1+",
            selection=("b", "c", "e"),
            computed=query("lpp_plus", p=1.0, instances=(0, 1),
                           selection=["b", "c", "e"]),
            paper_value=0.235,
        ),
        QueryRow(
            query="G",
            selection=("b", "d"),
            computed=query("custom", target=g_target, instances=(0, 1, 2),
                           selection=["b", "d"]),
            paper_value=1.18,
        ),
    ]
    return rows


def compute(params=None):
    """Spec task: the Example 1 query table as structured records."""
    rows = run()
    records = [
        {
            "query": row.query,
            "items": "{" + ",".join(row.selection) + "}",
            "computed": row.computed,
            "paper": row.paper_value,
            "agrees": row.matches_paper,
        }
        for row in rows
    ]
    notes = [
        f"{row.query}: paper arithmetic slip (computed {row.computed:g} vs "
        f"printed {row.paper_value:g})"
        for row in rows
        if not row.matches_paper
    ]
    return records, {"notes": notes}


def format_report(rows: List[QueryRow] = None) -> str:
    """Text table of the Example 1 reproduction."""
    rows = rows if rows is not None else run()
    return format_table(
        headers=["query", "items", "computed", "paper", "agrees"],
        rows=[
            (
                row.query,
                "{" + ",".join(row.selection) + "}",
                row.computed,
                row.paper_value,
                "yes" if row.matches_paper else "no (paper arithmetic slip)",
            )
            for row in rows
        ],
        title="E1 — Example 1 queries over the 3-instance, 8-item dataset",
    )
