"""Experiment E7 — competitive ratios of L* (and friends) for RG_p+.

The paper states that although the universal bound on the L* ratio is 4,
the ratio for specific functions is lower: it quotes roughly 2 and 2.5 for
the exponentiated range at ``p = 1`` and ``p = 2`` (the introduction and
the conclusion disagree on which value belongs to which exponent, so we
simply report what we measure).  This experiment sweeps data vectors of
the unit square for ``RG_p+`` under PPS (``tau* = 1``), computes the
per-vector ratio of L* — and, for context, of U* and HT where defined —
and reports the supremum per estimator and exponent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.competitiveness import RatioReport, ratio_sweep, supremum_ratio
from ..core.functions import OneSidedRange
from ..core.schemes import pps_scheme
from ..estimators.base import Estimator
from ..estimators.horvitz_thompson import HorvitzThompsonEstimator
from ..estimators.lstar import LStarOneSidedRangePPS
from ..estimators.ustar import UStarOneSidedRangePPS
from .report import format_table

__all__ = [
    "SweepResult",
    "default_vector_grid",
    "run",
    "compute",
    "sweep_points",
    "sweep",
    "finalize",
    "format_report",
]


@dataclass(frozen=True)
class SweepResult:
    """Ratio sweep of one estimator at one exponent."""

    estimator: str
    p: float
    reports: Tuple[RatioReport, ...]

    @property
    def supremum(self) -> float:
        return supremum_ratio(self.reports)

    @property
    def worst_vector(self) -> Tuple[float, ...]:
        worst = max(self.reports, key=lambda r: r.ratio)
        return worst.vector


def default_vector_grid(points: int = 7) -> List[Tuple[float, float]]:
    """A grid of (v1, v2) vectors with v1 > v2 (positive one-sided range).

    Includes the v2 = 0 boundary, where the L* estimate is unbounded and
    the ratio is typically largest.
    """
    v1_values = np.linspace(0.15, 0.95, points)
    vectors: List[Tuple[float, float]] = []
    for v1 in v1_values:
        for fraction in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9):
            vectors.append((float(v1), float(v1 * fraction)))
    return vectors


def run(
    exponents: Sequence[float] = (1.0, 2.0),
    vectors: Sequence[Tuple[float, float]] = None,
    include_baselines: bool = True,
    backend=None,
) -> List[SweepResult]:
    """Run the ratio sweep for every exponent and estimator.

    ``backend`` governs whether the ratio numerators batch through the
    engine quadrature (default: the process-wide policy).
    """
    scheme = pps_scheme([1.0, 1.0])
    vectors = list(vectors) if vectors is not None else default_vector_grid()
    results: List[SweepResult] = []
    for p in exponents:
        target = OneSidedRange(p=p)
        for estimator in _estimators_for(p, include_baselines):
            if isinstance(estimator, HorvitzThompsonEstimator):
                # HT is undefined (zero revelation probability) when v2 = 0;
                # restrict its sweep to the vectors where it applies.
                usable = [v for v in vectors if v[1] > 0.0]
            else:
                usable = vectors
            reports = ratio_sweep(
                estimator, scheme, target, usable, grid=4096, backend=backend
            )
            results.append(
                SweepResult(estimator=estimator.name, p=p, reports=tuple(reports))
            )
    return results


def summary(results: List[SweepResult] = None) -> Dict[str, float]:
    """Supremum ratio per (estimator, exponent)."""
    results = results if results is not None else run()
    return {f"{r.estimator} p={r.p}": r.supremum for r in results}


def compute(params=None):
    """Spec task: supremum competitive ratios over the vector sweep."""
    params = params or {}
    grid = default_vector_grid(int(params.get("grid_points", 7)))
    results = run(
        exponents=tuple(params.get("exponents", (1.0, 2.0))),
        vectors=grid,
        include_baselines=bool(params.get("include_baselines", True)),
    )
    records = [
        {
            "estimator": r.estimator,
            "p": r.p,
            "sup_ratio": r.supremum,
            "worst_vector": str(r.worst_vector),
            "n_vectors": len(r.reports),
        }
        for r in results
    ]
    return records, {}


def _estimators_for(p: float, include_baselines: bool) -> List[Estimator]:
    """The estimator panel at exponent ``p`` (L*, plus U*/HT as baselines)."""
    estimators: List[Estimator] = [LStarOneSidedRangePPS(p=p)]
    if include_baselines:
        estimators.append(UStarOneSidedRangePPS(p=p))
        estimators.append(HorvitzThompsonEstimator(OneSidedRange(p=p)))
    return estimators


def sweep_points(params=None) -> List[List[float]]:
    """SweepPlan hook: the (exponent, v1, v2) grid, one unit per point.

    A pure function of the parameters (grid points and exponents), so the
    scheduler and every resumed run enumerate the identical list.
    """
    params = params or {}
    grid = default_vector_grid(int(params.get("grid_points", 7)))
    return [
        [float(p), float(v1), float(v2)]
        for p in params.get("exponents", (1.0, 2.0))
        for (v1, v2) in grid
    ]


def sweep(params, points, start) -> List[dict]:
    """Sweep-shard task: per-vector competitive ratios for ``points``.

    Each point yields one record per applicable estimator (HT is skipped
    on the ``v2 = 0`` boundary, where its revelation probability is
    zero).  The computation is deterministic per point, so records are
    independent of the shard boundaries.
    """
    include_baselines = bool(params.get("include_baselines", True))
    scheme = pps_scheme([1.0, 1.0])
    records: List[dict] = []
    for p, v1, v2 in points:
        target = OneSidedRange(p=float(p))
        for estimator in _estimators_for(float(p), include_baselines):
            if isinstance(estimator, HorvitzThompsonEstimator) and v2 <= 0.0:
                continue
            report = ratio_sweep(
                estimator, scheme, target, [(float(v1), float(v2))], grid=4096
            )[0]
            records.append(
                {
                    "estimator": estimator.name,
                    "p": float(p),
                    "v1": float(v1),
                    "v2": float(v2),
                    "ratio": float(report.ratio),
                }
            )
    return records


def finalize(params, records):
    """Reduce per-vector ratio records to the E7 supremum table."""
    sup: dict = {}
    for record in records:
        key = (record["estimator"], record["p"])
        entry = sup.setdefault(
            key, {"ratio": float("-inf"), "vector": None, "count": 0}
        )
        entry["count"] += 1
        if record["ratio"] > entry["ratio"]:
            entry["ratio"] = record["ratio"]
            entry["vector"] = (record["v1"], record["v2"])
    rows = [
        {
            "estimator": estimator,
            "p": p,
            "sup_ratio": entry["ratio"],
            "worst_vector": str(entry["vector"]),
            "n_vectors": entry["count"],
        }
        for (estimator, p), entry in sup.items()
    ]
    return rows, {}


def format_report(results: List[SweepResult] = None) -> str:
    results = results if results is not None else run()
    rows = [
        (r.estimator, r.p, r.supremum, str(r.worst_vector), len(r.reports))
        for r in results
    ]
    return format_table(
        headers=["estimator", "p", "sup ratio", "worst vector", "#vectors"],
        rows=rows,
        title=(
            "E7 — competitive ratios over the unit-square sweep "
            "(RG_p+, PPS tau*=1; paper quotes ~2 and ~2.5 for L*)"
        ),
    )
