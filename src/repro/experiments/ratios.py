"""Experiment E7 — competitive ratios of L* (and friends) for RG_p+.

The paper states that although the universal bound on the L* ratio is 4,
the ratio for specific functions is lower: it quotes roughly 2 and 2.5 for
the exponentiated range at ``p = 1`` and ``p = 2`` (the introduction and
the conclusion disagree on which value belongs to which exponent, so we
simply report what we measure).  This experiment sweeps data vectors of
the unit square for ``RG_p+`` under PPS (``tau* = 1``), computes the
per-vector ratio of L* — and, for context, of U* and HT where defined —
and reports the supremum per estimator and exponent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.competitiveness import RatioReport, ratio_sweep, supremum_ratio
from ..core.functions import OneSidedRange
from ..core.schemes import pps_scheme
from ..estimators.base import Estimator
from ..estimators.horvitz_thompson import HorvitzThompsonEstimator
from ..estimators.lstar import LStarOneSidedRangePPS
from ..estimators.ustar import UStarOneSidedRangePPS
from .report import format_table

__all__ = ["SweepResult", "default_vector_grid", "run", "compute", "format_report"]


@dataclass(frozen=True)
class SweepResult:
    """Ratio sweep of one estimator at one exponent."""

    estimator: str
    p: float
    reports: Tuple[RatioReport, ...]

    @property
    def supremum(self) -> float:
        return supremum_ratio(self.reports)

    @property
    def worst_vector(self) -> Tuple[float, ...]:
        worst = max(self.reports, key=lambda r: r.ratio)
        return worst.vector


def default_vector_grid(points: int = 7) -> List[Tuple[float, float]]:
    """A grid of (v1, v2) vectors with v1 > v2 (positive one-sided range).

    Includes the v2 = 0 boundary, where the L* estimate is unbounded and
    the ratio is typically largest.
    """
    v1_values = np.linspace(0.15, 0.95, points)
    vectors: List[Tuple[float, float]] = []
    for v1 in v1_values:
        for fraction in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9):
            vectors.append((float(v1), float(v1 * fraction)))
    return vectors


def run(
    exponents: Sequence[float] = (1.0, 2.0),
    vectors: Sequence[Tuple[float, float]] = None,
    include_baselines: bool = True,
) -> List[SweepResult]:
    """Run the ratio sweep for every exponent and estimator."""
    scheme = pps_scheme([1.0, 1.0])
    vectors = list(vectors) if vectors is not None else default_vector_grid()
    results: List[SweepResult] = []
    for p in exponents:
        target = OneSidedRange(p=p)
        estimators: List[Estimator] = [LStarOneSidedRangePPS(p=p)]
        if include_baselines:
            estimators.append(UStarOneSidedRangePPS(p=p))
            estimators.append(HorvitzThompsonEstimator(target))
        for estimator in estimators:
            if isinstance(estimator, HorvitzThompsonEstimator):
                # HT is undefined (zero revelation probability) when v2 = 0;
                # restrict its sweep to the vectors where it applies.
                usable = [v for v in vectors if v[1] > 0.0]
            else:
                usable = vectors
            reports = ratio_sweep(estimator, scheme, target, usable, grid=4096)
            results.append(
                SweepResult(estimator=estimator.name, p=p, reports=tuple(reports))
            )
    return results


def summary(results: List[SweepResult] = None) -> Dict[str, float]:
    """Supremum ratio per (estimator, exponent)."""
    results = results if results is not None else run()
    return {f"{r.estimator} p={r.p}": r.supremum for r in results}


def compute(params=None):
    """Spec task: supremum competitive ratios over the vector sweep."""
    params = params or {}
    grid = default_vector_grid(int(params.get("grid_points", 7)))
    results = run(
        exponents=tuple(params.get("exponents", (1.0, 2.0))),
        vectors=grid,
        include_baselines=bool(params.get("include_baselines", True)),
    )
    records = [
        {
            "estimator": r.estimator,
            "p": r.p,
            "sup_ratio": r.supremum,
            "worst_vector": str(r.worst_vector),
            "n_vectors": len(r.reports),
        }
        for r in results
    ]
    return records, {}


def format_report(results: List[SweepResult] = None) -> str:
    results = results if results is not None else run()
    rows = [
        (r.estimator, r.p, r.supremum, str(r.worst_vector), len(r.reports))
        for r in results
    ]
    return format_table(
        headers=["estimator", "p", "sup ratio", "worst vector", "#vectors"],
        rows=rows,
        title=(
            "E7 — competitive ratios over the unit-square sweep "
            "(RG_p+, PPS tau*=1; paper quotes ~2 and ~2.5 for L*)"
        ),
    )
