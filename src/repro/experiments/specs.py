"""The canonical experiment specs: E1–E11 as declarative data.

Each spec names its compute task (``module:function``), its parameter
sets per scale (``smoke`` / ``quick`` / ``full`` — quick mirrors the
pre-refactor ``run_all`` quick pass, full the benchmark-scale pass), and
its work plan where the computation shards: the Monte-Carlo experiment
E9 carries a :class:`~repro.api.experiments.ReplicationPlan` (plus the
registry-resolved estimation pipeline), while the deterministic grid
experiments E7 (unit-square vector sweep) and E10 (node-pair sweep)
carry a :class:`~repro.api.experiments.SweepPlan` so their points shard
through the scheduler exactly like replications do.  Importing this
module registers everything into
:data:`repro.api.experiments.EXPERIMENT_SPECS`; the runner does that
lazily on first lookup, so ``ExperimentRunner().run("E9")`` works
without any imports beyond :mod:`repro.api`.

The descriptive aliases (``lp_difference`` for ``E9`` and so on) resolve
to the same spec objects.
"""

from __future__ import annotations

from ..api.experiments import (
    EstimationPlan,
    ExperimentSpec,
    ReplicationPlan,
    SweepPlan,
    register_experiment,
)
from .lp_difference import DEFAULT_ESTIMATION as _E9_ESTIMATION

__all__ = ["ALL_SPECS"]


ALL_SPECS = [
    ExperimentSpec(
        key="E1",
        title="Example 1 queries over the 3-instance, 8-item dataset",
        task="repro.experiments.example1:compute",
        aliases=("example1",),
    ),
    ExperimentSpec(
        key="E2",
        title="Example 2 coordinated PPS outcomes (tau*=1, fixed seeds)",
        task="repro.experiments.example2:compute",
        aliases=("example2",),
    ),
    ExperimentSpec(
        key="E3",
        title="Example 3 lower-bound functions and hulls (RG_p+, PPS tau*=1)",
        task="repro.experiments.example3:compute",
        scales={"smoke": {"grid": 40}, "quick": {"grid": 80},
                "full": {"grid": 200}},
        aliases=("example3",),
    ),
    ExperimentSpec(
        key="E4",
        title="Example 4 estimate curves (L*, U*, v-optimal; RG_p+, PPS tau*=1)",
        task="repro.experiments.example4:compute",
        scales={"smoke": {"grid": 20}, "quick": {"grid": 30},
                "full": {"grid": 80}},
        aliases=("example4",),
    ),
    ExperimentSpec(
        key="E5",
        title="Example 5 order-optimal estimators over {0..3}^2, RG_1+",
        task="repro.experiments.example5:compute",
        aliases=("example5",),
    ),
    ExperimentSpec(
        key="E6",
        title="Theorem 4.1 tight family: L* ratio approaches 4 as p -> 1/2",
        task="repro.experiments.theorem41:compute",
        scales={
            "smoke": {"exponents": [0.3]},
            "quick": {"exponents": [0.1, 0.3, 0.45]},
            "full": {"exponents": [0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.49]},
        },
        aliases=("theorem41",),
    ),
    ExperimentSpec(
        key="E7",
        title="Competitive ratios over the unit-square sweep (RG_p+, PPS tau*=1)",
        task="repro.experiments.ratios:sweep",
        finalize="repro.experiments.ratios:finalize",
        sweep=SweepPlan(points="repro.experiments.ratios:sweep_points"),
        scales={
            "smoke": {"grid_points": 2, "exponents": [1.0],
                      "include_baselines": False},
            "quick": {"grid_points": 2, "exponents": [1.0, 2.0],
                      "include_baselines": False},
            "full": {"grid_points": 4, "exponents": [1.0, 2.0],
                     "include_baselines": True},
        },
        aliases=("ratios",),
    ),
    ExperimentSpec(
        key="E8",
        title="L* dominates Horvitz-Thompson (RG_1+, PPS tau*=1)",
        task="repro.experiments.dominance:compute",
        params={"p": 1.0},
        scales={
            "smoke": {"vectors": [[0.6, 0.2]]},
            "quick": {"vectors": [[0.6, 0.2], [0.6, 0.0], [0.9, 0.45]]},
            "full": {},  # the module's full default grid
        },
        aliases=("dominance",),
    ),
    ExperimentSpec(
        key="E9",
        title="Lp-difference estimation on similar vs dissimilar workloads",
        task="repro.experiments.lp_difference:replicate",
        finalize="repro.experiments.lp_difference:finalize",
        params={"dataset_seed": 7},
        scales={
            "smoke": {"num_items": 40, "sampling_rates": [0.2],
                      "exponents": [1.0], "replications": 4},
            "quick": {"num_items": 80, "sampling_rates": [0.1],
                      "exponents": [1.0], "replications": 8},
            "full": {"num_items": 250, "sampling_rates": [0.1, 0.2],
                     "exponents": [1.0, 2.0], "replications": 25},
        },
        replication=ReplicationPlan(seed=7, replications=8),
        # One source of truth: the module's DEFAULT_ESTIMATION, so
        # lp_difference.run() and the spec always agree on the pipeline.
        estimation=EstimationPlan(**_E9_ESTIMATION),
        aliases=("lp_difference",),
    ),
    ExperimentSpec(
        key="E10",
        title="ADS closeness-similarity estimation error by sketch size",
        task="repro.experiments.similarity:sweep",
        finalize="repro.experiments.similarity:finalize",
        sweep=SweepPlan(points="repro.experiments.similarity:sweep_points"),
        params={"seed": 3},
        scales={
            "smoke": {"ks": [4], "num_pairs": 2},
            "quick": {"ks": [4, 12], "num_pairs": 4},
            "full": {"ks": [4, 8, 16], "num_pairs": 8},
        },
        aliases=("similarity",),
    ),
    ExperimentSpec(
        key="E11",
        title="Estimator ablation across similarity regimes (RG_1+ sums)",
        task="repro.experiments.ablation:compute",
        params={"p": 1.0, "seed": 5},
        scales={
            "smoke": {"similarities": [0.0, 0.95], "num_items": 6},
            "quick": {"similarities": [0.0, 0.95], "num_items": 15},
            "full": {"similarities": [0.0, 0.25, 0.5, 0.75, 0.95],
                     "num_items": 40},
        },
        aliases=("ablation",),
    ),
]

for _spec in ALL_SPECS:
    register_experiment(_spec)
