"""Sampling-sketch substrates: PPS, bottom-k, reservoir, all-distances sketches."""

from .ads import (
    ADSEntry,
    AllDistancesSketch,
    build_ads,
    build_ads_from_distances,
    build_all_ads,
    node_ranks,
)
from .bottomk import BottomKSketch, RankMethod, bottom_k_sketch, coordinated_bottom_k
from .pps import PPSSample, choose_tau_for_size, pps_sample, subset_sum_estimate
from .reservoir import ReservoirSampler, coordinated_reservoir

__all__ = [
    "ADSEntry",
    "AllDistancesSketch",
    "build_ads",
    "build_ads_from_distances",
    "build_all_ads",
    "node_ranks",
    "BottomKSketch",
    "RankMethod",
    "bottom_k_sketch",
    "coordinated_bottom_k",
    "PPSSample",
    "choose_tau_for_size",
    "pps_sample",
    "subset_sum_estimate",
    "ReservoirSampler",
    "coordinated_reservoir",
]
