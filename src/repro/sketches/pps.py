"""Single-instance PPS (probability proportional to size) sampling.

PPS sampling with threshold ``tau*`` includes an item of weight ``w`` with
probability ``min(1, w / tau*)``; with the coordinated variant, the
decision is made against a per-item shared seed.  This module offers the
single-instance view — useful on its own (per-instance subset-sum
estimation with the classic Horvitz–Thompson inverse-probability weights)
and as the building block the multi-instance coordination in
:mod:`repro.aggregates.coordinated` composes.

PPS samples of *disjoint* (or consistently weighted) populations drawn
against the same threshold and seed assignment are mergeable:
:meth:`PPSSample.merge` unions the kept entries and is exact, because an
item's inclusion decision ``w >= seed * tau*`` depends on nothing but the
item itself.  :meth:`PPSSample.to_dict` / :meth:`PPSSample.from_dict`
give the sample a JSON-portable wire form for the
:class:`~repro.serving.store.SketchStore` serving layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..core.seeds import SeedAssigner

__all__ = ["PPSSample", "pps_sample", "subset_sum_estimate", "choose_tau_for_size"]


@dataclass(frozen=True)
class PPSSample:
    """A PPS sample of one weight assignment."""

    tau_star: float
    entries: Dict[Hashable, float]
    seeds: Dict[Hashable, float]

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.entries

    def inclusion_probability(self, weight: float) -> float:
        if weight <= 0:
            return 0.0
        return min(1.0, weight / self.tau_star)

    def merge(self, other: "PPSSample") -> "PPSSample":
        """The exact PPS sample of the union of the two populations.

        Unlike bottom-k, PPS inclusion is a purely per-item decision
        (``w >= seed * tau*``), so merging is a plain union of the kept
        entries — exact whenever both samples used the same ``tau*`` and
        the same seed assignment.  An item present in both samples must
        agree on weight and seed; a mismatch means the inputs describe
        inconsistent populations and raises :class:`ValueError`.
        """
        if self.tau_star != other.tau_star:
            raise ValueError(
                f"cannot merge PPS samples with different tau* "
                f"({self.tau_star} != {other.tau_star})"
            )
        entries = dict(self.entries)
        seeds = dict(self.seeds)
        for key, weight in other.entries.items():
            seed = other.seeds[key]
            if key in entries and (entries[key], seeds[key]) != (weight, seed):
                raise ValueError(
                    f"conflicting entries for item {key!r}: "
                    f"({entries[key]}, {seeds[key]}) != ({weight}, {seed}) "
                    "(merge requires consistent weights and a shared seed "
                    "assignment)"
                )
            entries[key] = weight
            seeds[key] = seed
        return PPSSample(tau_star=self.tau_star, entries=entries, seeds=seeds)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-portable form of the sample.

        Item keys must themselves be JSON-serializable (strings and
        integers round-trip; other hashables survive only within one
        process).
        """
        return {
            "kind": "pps",
            "tau_star": self.tau_star,
            "entries": [
                [key, weight, self.seeds[key]]
                for key, weight in self.entries.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PPSSample":
        """Rebuild a sample from :meth:`to_dict` output."""
        entries: Dict[Hashable, float] = {}
        seeds: Dict[Hashable, float] = {}
        for key, weight, seed in payload["entries"]:
            entries[key] = float(weight)
            seeds[key] = float(seed)
        return cls(
            tau_star=float(payload["tau_star"]), entries=entries, seeds=seeds
        )


def pps_sample(
    weights: Mapping[Hashable, float],
    tau_star: float,
    rng: Optional[np.random.Generator] = None,
    salt: str = "",
    seeds: Optional[Mapping[Hashable, float]] = None,
) -> PPSSample:
    """Sample a weight assignment with PPS threshold ``tau_star``.

    Seeds come from the explicit mapping, the random generator, or a
    deterministic hash of the key — the latter gives coordinated samples
    across repeated calls with the same salt.
    """
    if tau_star <= 0:
        raise ValueError("tau_star must be positive")
    assigner = SeedAssigner(salt=salt) if rng is None else SeedAssigner(rng=rng)
    kept: Dict[Hashable, float] = {}
    kept_seeds: Dict[Hashable, float] = {}
    for key, weight in weights.items():
        w = float(weight)
        if w <= 0:
            continue
        seed = float(seeds[key]) if seeds is not None and key in seeds else assigner.seed_for(key)
        if w >= seed * tau_star:
            kept[key] = w
            kept_seeds[key] = seed
    return PPSSample(tau_star=float(tau_star), entries=kept, seeds=kept_seeds)


def subset_sum_estimate(
    sample: PPSSample, selection: Optional[Iterable[Hashable]] = None
) -> float:
    """Horvitz–Thompson estimate of a subset-sum from a PPS sample.

    Every sampled item in the selection contributes
    ``weight / min(1, weight / tau*)`` = ``max(weight, tau*)``.
    """
    selected = set(selection) if selection is not None else None
    total = 0.0
    for key, weight in sample.entries.items():
        if selected is not None and key not in selected:
            continue
        total += weight / sample.inclusion_probability(weight)
    return total


def choose_tau_for_size(
    weights: Mapping[Hashable, float], expected_size: float
) -> float:
    """Pick ``tau*`` so the expected PPS sample size is ``expected_size``.

    The expected size ``sum_i min(1, w_i / tau)`` is non-increasing in
    ``tau``; a bisection over ``tau`` finds the requested size to within a
    small relative tolerance.
    """
    positives = [float(w) for w in weights.values() if w > 0]
    if not positives:
        return 1.0
    if expected_size >= len(positives):
        return min(positives)  # everything sampled with probability 1

    def expected(tau: float) -> float:
        return sum(min(1.0, w / tau) for w in positives)

    low = min(positives) * 1e-6
    high = sum(positives) / max(expected_size, 1e-9) * 2.0 + max(positives)
    for _ in range(200):
        mid = 0.5 * (low + high)
        if expected(mid) > expected_size:
            low = mid
        else:
            high = mid
        if high - low <= 1e-12 * max(1.0, high):
            break
    return 0.5 * (low + high)
