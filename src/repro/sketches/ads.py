"""All-distances sketches (ADS) with HIP inclusion probabilities.

An all-distances sketch of a node ``v`` is a bottom-k sample of *all*
nodes, coordinated across distances: node ``i`` belongs to ``ADS(v)``
exactly when its hashed rank is among the ``k`` smallest ranks of the
nodes at distance at most ``d(v, i)`` from ``v``.  The sketch therefore
contains, for every distance, a bottom-k sample of the ball of that
radius — which is what makes it useful for neighbourhood-cardinality and
similarity queries.

The HIP (Historic Inclusion Probability) of an included node is the
threshold its rank had to beat: the ``k``-th smallest rank among the nodes
*strictly closer* to ``v``.  Conditioned on the ranks of those closer
nodes, inclusion of node ``i`` is exactly the event ``rank(i) < threshold``
with a uniform rank — a per-item monotone sampling scheme, which is how
the estimators of this library plug in (the paper's footnote 1 makes the
same conditioning argument).

ADS of different source nodes share the node ranks, so they are
coordinated samples: the setting of the closeness-similarity application
in Section 7.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..core.seeds import SeedAssigner
from ..graphs.dijkstra import dijkstra_order
from ..graphs.graph import Graph

__all__ = ["ADSEntry", "AllDistancesSketch", "build_ads", "build_all_ads", "node_ranks"]

Node = Hashable


@dataclass(frozen=True)
class ADSEntry:
    """One node retained in an all-distances sketch."""

    node: Node
    distance: float
    rank: float
    #: HIP threshold: the k-th smallest rank among strictly closer nodes
    #: (1.0 when fewer than k nodes are strictly closer).  Conditioned on
    #: the closer nodes, the inclusion probability of this entry.
    threshold: float


class AllDistancesSketch:
    """The all-distances sketch of one source node."""

    def __init__(self, source: Node, k: int, entries: Mapping[Node, ADSEntry]) -> None:
        self.source = source
        self.k = k
        self._entries = dict(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: Node) -> bool:
        return node in self._entries

    @property
    def entries(self) -> Dict[Node, ADSEntry]:
        return dict(self._entries)

    def entry(self, node: Node) -> Optional[ADSEntry]:
        return self._entries.get(node)

    def distance(self, node: Node) -> Optional[float]:
        entry = self._entries.get(node)
        return entry.distance if entry is not None else None

    def inclusion_probability(self, node: Node) -> Optional[float]:
        """HIP inclusion probability of an included node (None otherwise)."""
        entry = self._entries.get(node)
        return entry.threshold if entry is not None else None

    def neighborhood_cardinality_estimate(self, radius: float) -> float:
        """HIP estimate of ``|{ i : d(source, i) <= radius }|``.

        Every included node within the radius contributes the inverse of
        its HIP probability; the source itself contributes 1.
        """
        total = 0.0
        for entry in self._entries.values():
            if entry.distance <= radius and entry.threshold > 0:
                total += 1.0 / entry.threshold
        return total

    def distance_decay_sum_estimate(self, alpha) -> float:
        """HIP estimate of ``sum_i alpha(d(source, i))`` for non-increasing
        ``alpha`` (the building block of closeness centrality)."""
        total = 0.0
        for entry in self._entries.values():
            if entry.threshold > 0:
                total += alpha(entry.distance) / entry.threshold
        return total


def node_ranks(graph: Graph, salt: str = "") -> Dict[Node, float]:
    """Deterministic hashed ranks shared by every sketch of the graph."""
    assigner = SeedAssigner(salt=salt)
    return {node: assigner.seed_for(node) for node in graph.nodes()}


def build_ads(
    graph: Graph,
    source: Node,
    k: int,
    ranks: Optional[Mapping[Node, float]] = None,
    salt: str = "",
    cutoff: Optional[float] = None,
) -> AllDistancesSketch:
    """Build the bottom-k all-distances sketch of ``source``.

    Nodes are scanned in non-decreasing distance (Dijkstra order); a node
    enters the sketch when its rank is below the ``k``-th smallest rank
    seen so far, and the threshold it had to beat is recorded as its HIP
    probability.  The source node itself is included with distance 0 and
    probability 1.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if ranks is None:
        ranks = node_ranks(graph, salt=salt)
    entries: Dict[Node, ADSEntry] = {}
    # Max-heap (via negation) of the k smallest ranks among strictly
    # closer nodes.  Nodes at equal distance are processed in scan order;
    # the threshold uses only strictly closer nodes, so we buffer updates
    # per distance level.
    closest_ranks: List[float] = []  # negated ranks, max-heap of size <= k
    pending: List[float] = []
    previous_distance: Optional[float] = None
    for node, distance in dijkstra_order(graph, source, cutoff=cutoff):
        if previous_distance is not None and distance > previous_distance:
            for rank in pending:
                _push_rank(closest_ranks, rank, k)
            pending = []
        previous_distance = distance
        rank = float(ranks[node])
        threshold = 1.0 if len(closest_ranks) < k else -closest_ranks[0]
        if node == source:
            entries[node] = ADSEntry(node=node, distance=0.0, rank=rank, threshold=1.0)
            pending.append(rank)
            continue
        if rank < threshold:
            entries[node] = ADSEntry(
                node=node, distance=distance, rank=rank, threshold=threshold
            )
        pending.append(rank)
    return AllDistancesSketch(source=source, k=k, entries=entries)


def _push_rank(heap: List[float], rank: float, k: int) -> None:
    """Maintain a max-heap of the ``k`` smallest ranks seen so far."""
    if len(heap) < k:
        heapq.heappush(heap, -rank)
    elif rank < -heap[0]:
        heapq.heapreplace(heap, -rank)


def build_all_ads(
    graph: Graph,
    k: int,
    salt: str = "",
    cutoff: Optional[float] = None,
) -> Dict[Node, AllDistancesSketch]:
    """All-distances sketches of every node, sharing one rank assignment.

    The shared ranks are what coordinates the sketches of different
    sources — the property the similarity estimator relies on.
    """
    ranks = node_ranks(graph, salt=salt)
    return {
        node: build_ads(graph, node, k, ranks=ranks, cutoff=cutoff)
        for node in graph.nodes()
    }
