"""All-distances sketches (ADS) with HIP inclusion probabilities.

An all-distances sketch of a node ``v`` is a bottom-k sample of *all*
nodes, coordinated across distances: node ``i`` belongs to ``ADS(v)``
exactly when its hashed rank is among the ``k`` smallest ranks of the
nodes at distance at most ``d(v, i)`` from ``v``.  The sketch therefore
contains, for every distance, a bottom-k sample of the ball of that
radius — which is what makes it useful for neighbourhood-cardinality and
similarity queries.

The HIP (Historic Inclusion Probability) of an included node is the
threshold its rank had to beat: the ``k``-th smallest rank among the nodes
*strictly closer* to ``v``.  Conditioned on the ranks of those closer
nodes, inclusion of node ``i`` is exactly the event ``rank(i) < threshold``
with a uniform rank — a per-item monotone sampling scheme, which is how
the estimators of this library plug in (the paper's footnote 1 makes the
same conditioning argument).

ADS of different source nodes share the node ranks, so they are
coordinated samples: the setting of the closeness-similarity application
in Section 7.

Two generalisations support the :class:`~repro.serving.store.SketchStore`
serving layer.  First, :func:`build_ads_from_distances` builds a sketch
from any node → distance mapping — no graph required — which turns the
ADS into a *temporal* sketch when "distance" is a first-seen timestamp
(the neighbourhood-cardinality estimate at radius ``T`` then estimates
the number of distinct keys first seen by time ``T``).  Second,
:meth:`AllDistancesSketch.merge` combines sketches of two node
populations sharing a rank assignment into the exact sketch of the
union: a node of the union's sketch is in the top-k of the ball at its
own distance, hence in the top-k of the corresponding smaller ball of
whichever input population contains it — so every union entry is
witnessed by an input entry, and rescanning the union of entries in
distance order recomputes every threshold exactly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..core.seeds import SeedAssigner
from ..graphs.dijkstra import dijkstra_order
from ..graphs.graph import Graph

__all__ = [
    "ADSEntry",
    "AllDistancesSketch",
    "build_ads",
    "build_ads_from_distances",
    "build_all_ads",
    "node_ranks",
]

Node = Hashable


@dataclass(frozen=True)
class ADSEntry:
    """One node retained in an all-distances sketch."""

    node: Node
    distance: float
    rank: float
    #: HIP threshold: the k-th smallest rank among strictly closer nodes
    #: (1.0 when fewer than k nodes are strictly closer).  Conditioned on
    #: the closer nodes, the inclusion probability of this entry.
    threshold: float


class AllDistancesSketch:
    """The all-distances sketch of one source node.

    ``source`` may be ``None`` for sketches built from a bare
    node → distance mapping (:func:`build_ads_from_distances`), where no
    node plays the distinguished always-included role.
    """

    def __init__(
        self, source: Optional[Node], k: int, entries: Mapping[Node, ADSEntry]
    ) -> None:
        self.source = source
        self.k = k
        self._entries = dict(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: Node) -> bool:
        return node in self._entries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AllDistancesSketch):
            return NotImplemented
        return (
            self.source == other.source
            and self.k == other.k
            and self._entries == other._entries
        )

    __hash__ = None  # mutable-ish container semantics; equality by value

    @property
    def entries(self) -> Dict[Node, ADSEntry]:
        return dict(self._entries)

    def entry(self, node: Node) -> Optional[ADSEntry]:
        return self._entries.get(node)

    def distance(self, node: Node) -> Optional[float]:
        entry = self._entries.get(node)
        return entry.distance if entry is not None else None

    def inclusion_probability(self, node: Node) -> Optional[float]:
        """HIP inclusion probability of an included node (None otherwise)."""
        entry = self._entries.get(node)
        return entry.threshold if entry is not None else None

    def neighborhood_cardinality_estimate(self, radius: float) -> float:
        """HIP estimate of ``|{ i : d(source, i) <= radius }|``.

        Every included node within the radius contributes the inverse of
        its HIP probability; the source itself contributes 1.
        """
        total = 0.0
        for entry in self._entries.values():
            if entry.distance <= radius and entry.threshold > 0:
                total += 1.0 / entry.threshold
        return total

    def distance_decay_sum_estimate(self, alpha) -> float:
        """HIP estimate of ``sum_i alpha(d(source, i))`` for non-increasing
        ``alpha`` (the building block of closeness centrality)."""
        total = 0.0
        for entry in self._entries.values():
            if entry.threshold > 0:
                total += alpha(entry.distance) / entry.threshold
        return total

    def merge(self, other: "AllDistancesSketch") -> "AllDistancesSketch":
        """The exact all-distances sketch of the union of the populations.

        Both sketches must share ``k``, the source, and the rank (and
        distance) assignment: a node present in both must carry the same
        ``(distance, rank)`` pair, else :class:`ValueError`.  Exactness
        rests on two facts.  A node of the union's sketch is in the
        bottom-k of the ball at its own distance, hence in the bottom-k
        of the (smaller) corresponding ball of whichever input
        population contains it — so it is retained by that input sketch.
        Conversely a node *absent* from both sketches has ``k``
        strictly-closer, strictly-smaller-rank nodes in one input
        population, hence in the union, so it is never among the ``k``
        smallest ranks of any ball and cannot influence a threshold.
        Rescanning the union of retained entries in distance order
        therefore recomputes every threshold of the union's sketch
        exactly.
        """
        if self.k != other.k:
            raise ValueError(
                f"cannot merge ADS of different k ({self.k} != {other.k})"
            )
        if self.source != other.source:
            raise ValueError(
                f"cannot merge ADS of different sources "
                f"({self.source!r} != {other.source!r})"
            )
        union: Dict[Node, ADSEntry] = dict(self._entries)
        for node, entry in other._entries.items():
            mine = union.get(node)
            if mine is not None and (mine.distance, mine.rank) != (
                entry.distance,
                entry.rank,
            ):
                raise ValueError(
                    f"conflicting entries for node {node!r}: "
                    f"({mine.distance}, {mine.rank}) != "
                    f"({entry.distance}, {entry.rank}) (merge requires "
                    "shared distances and a shared rank assignment)"
                )
            union.setdefault(node, entry)
        ordered = sorted(
            ((e.node, e.distance, e.rank) for e in union.values()),
            key=_scan_key,
        )
        entries = _ads_scan(ordered, self.k, source=self.source)
        return AllDistancesSketch(source=self.source, k=self.k, entries=entries)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-portable form of the sketch.

        Node identifiers must themselves be JSON-serializable (strings
        and integers round-trip; other hashables survive only within one
        process).
        """
        return {
            "kind": "ads",
            "source": self.source,
            "k": self.k,
            "entries": [
                [e.node, e.distance, e.rank, e.threshold]
                for e in self._entries.values()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "AllDistancesSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        entries = {
            node: ADSEntry(
                node=node,
                distance=float(distance),
                rank=float(rank),
                threshold=float(threshold),
            )
            for node, distance, rank, threshold in payload["entries"]
        }
        return cls(
            source=payload.get("source"), k=int(payload["k"]), entries=entries
        )


def node_ranks(graph: Graph, salt: str = "") -> Dict[Node, float]:
    """Deterministic hashed ranks shared by every sketch of the graph."""
    assigner = SeedAssigner(salt=salt)
    return {node: assigner.seed_for(node) for node in graph.nodes()}


def build_ads(
    graph: Graph,
    source: Node,
    k: int,
    ranks: Optional[Mapping[Node, float]] = None,
    salt: str = "",
    cutoff: Optional[float] = None,
) -> AllDistancesSketch:
    """Build the bottom-k all-distances sketch of ``source``.

    Nodes are scanned in non-decreasing distance (Dijkstra order); a node
    enters the sketch when its rank is below the ``k``-th smallest rank
    seen so far, and the threshold it had to beat is recorded as its HIP
    probability.  The source node itself is included with distance 0 and
    probability 1.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if ranks is None:
        ranks = node_ranks(graph, salt=salt)
    ordered = (
        (node, distance, float(ranks[node]))
        for node, distance in dijkstra_order(graph, source, cutoff=cutoff)
    )
    entries = _ads_scan(ordered, k, source=source)
    return AllDistancesSketch(source=source, k=k, entries=entries)


def build_ads_from_distances(
    distances: Mapping[Node, float],
    k: int,
    ranks: Optional[Mapping[Node, float]] = None,
    salt: str = "",
    source: Optional[Node] = None,
) -> AllDistancesSketch:
    """Build an all-distances sketch from a bare node → distance mapping.

    No graph is involved: any non-negative "distance" works, which is
    what makes the sketch *temporal* — with first-seen timestamps as
    distances, :meth:`AllDistancesSketch.neighborhood_cardinality_estimate`
    at radius ``T`` estimates the number of distinct keys first seen by
    time ``T``.  Ranks default to the same deterministic key hashes the
    rest of the library uses, so sketches built with the same salt are
    coordinated and mergeable.  Nodes at equal distance are scanned in a
    canonical ``(distance, rank, repr(node))`` order; the order within a
    level cannot change the result (thresholds use strictly closer nodes
    only) but keeping it canonical makes rebuilds bit-identical.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if ranks is None:
        assigner = SeedAssigner(salt=salt)
        ranks = {node: assigner.seed_for(node) for node in distances}
    ordered = sorted(
        (
            (node, float(distance), float(ranks[node]))
            for node, distance in distances.items()
        ),
        key=_scan_key,
    )
    entries = _ads_scan(ordered, k, source=source)
    return AllDistancesSketch(source=source, k=k, entries=entries)


def _scan_key(item: Tuple[Node, float, float]) -> Tuple[float, float, str]:
    """Canonical scan order: distance, then rank, then node repr."""
    node, distance, rank = item
    return (distance, rank, repr(node))


def _ads_scan(
    ordered, k: int, source: Optional[Node] = None
) -> Dict[Node, ADSEntry]:
    """Core ADS construction over ``(node, distance, rank)`` tuples.

    The tuples must arrive in non-decreasing distance order.  A max-heap
    (via negation) tracks the ``k`` smallest ranks among strictly closer
    nodes; nodes at equal distance are buffered per level so a node's
    threshold never sees its own cohort.  The ``source`` node (when
    given) is always included with distance 0 and threshold 1.
    """
    entries: Dict[Node, ADSEntry] = {}
    closest_ranks: List[float] = []  # negated ranks, max-heap of size <= k
    pending: List[float] = []
    previous_distance: Optional[float] = None
    for node, distance, rank in ordered:
        if previous_distance is not None and distance > previous_distance:
            for buffered in pending:
                _push_rank(closest_ranks, buffered, k)
            pending = []
        previous_distance = distance
        threshold = 1.0 if len(closest_ranks) < k else -closest_ranks[0]
        if source is not None and node == source:
            entries[node] = ADSEntry(node=node, distance=0.0, rank=rank, threshold=1.0)
            pending.append(rank)
            continue
        if rank < threshold:
            entries[node] = ADSEntry(
                node=node, distance=distance, rank=rank, threshold=threshold
            )
        pending.append(rank)
    return entries


def _push_rank(heap: List[float], rank: float, k: int) -> None:
    """Maintain a max-heap of the ``k`` smallest ranks seen so far."""
    if len(heap) < k:
        heapq.heappush(heap, -rank)
    elif rank < -heap[0]:
        heapq.heapreplace(heap, -rank)


def build_all_ads(
    graph: Graph,
    k: int,
    salt: str = "",
    cutoff: Optional[float] = None,
) -> Dict[Node, AllDistancesSketch]:
    """All-distances sketches of every node, sharing one rank assignment.

    The shared ranks are what coordinates the sketches of different
    sources — the property the similarity estimator relies on.
    """
    ranks = node_ranks(graph, salt=salt)
    return {
        node: build_ads(graph, node, k, ranks=ranks, cutoff=cutoff)
        for node in graph.nodes()
    }
