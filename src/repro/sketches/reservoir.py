"""Streaming reservoir sampling (uniform bottom-k over a stream).

Reservoir sampling maintains a uniform random sample of ``k`` items from a
stream of unknown length in a single pass.  The paper lists it among the
classical single-instance schemes whose coordinated variants fit the
monotone-sampling framework.  Two implementations are provided:

* :class:`ReservoirSampler` — the textbook streaming algorithm (Vitter's
  Algorithm R), driven by a pseudo-random generator;
* :func:`coordinated_reservoir` — the hash-rank formulation (keep the
  ``k`` smallest hashed seeds), which is exactly a uniform-rank bottom-k
  sketch and therefore coordinates across instances for free.

The two produce samples with identical distributions; the streaming form
exists because a one-pass, constant-memory implementation is what a
production ingest pipeline would actually deploy.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Mapping, Optional

import numpy as np

from .bottomk import BottomKSketch, RankMethod, bottom_k_sketch

__all__ = ["ReservoirSampler", "coordinated_reservoir"]


class ReservoirSampler:
    """Single-pass uniform sample of ``k`` items from a stream."""

    def __init__(self, k: int, rng: Optional[np.random.Generator] = None) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self._k = k
        self._rng = rng if rng is not None else np.random.default_rng()
        self._reservoir: List[Hashable] = []
        self._seen = 0

    @property
    def k(self) -> int:
        return self._k

    @property
    def seen(self) -> int:
        """Number of stream elements processed so far."""
        return self._seen

    @property
    def sample(self) -> List[Hashable]:
        """The current reservoir contents (a copy)."""
        return list(self._reservoir)

    def offer(self, item: Hashable) -> None:
        """Process one stream element."""
        self._seen += 1
        if len(self._reservoir) < self._k:
            self._reservoir.append(item)
            return
        # Replace a random slot with probability k / seen.
        j = int(self._rng.integers(0, self._seen))
        if j < self._k:
            self._reservoir[j] = item

    def extend(self, items: Iterable[Hashable]) -> None:
        """Process a batch of stream elements."""
        for item in items:
            self.offer(item)

    def scale_up_estimate(self, predicate) -> float:
        """Estimate how many stream elements satisfy ``predicate``.

        The reservoir is a uniform sample, so the fraction of matching
        reservoir elements times the stream length is unbiased.
        """
        if not self._reservoir:
            return 0.0
        matching = sum(1 for item in self._reservoir if predicate(item))
        return matching / len(self._reservoir) * self._seen


def coordinated_reservoir(
    instances: Mapping[str, Mapping[Hashable, float]],
    k: int,
    salt: str = "",
) -> dict:
    """Coordinated uniform (reservoir-equivalent) samples of several instances.

    Implemented as uniform-rank bottom-k sketches over shared hashed
    seeds: each instance keeps the ``k`` active items with the smallest
    seed, so the samples of similar instances overlap heavily.
    """
    from ..core.seeds import SeedAssigner

    assigner = SeedAssigner(salt=salt)
    all_keys = set()
    for weights in instances.values():
        all_keys.update(weights.keys())
    shared = {key: assigner.seed_for(key) for key in all_keys}
    return {
        name: bottom_k_sketch(
            weights, k, method=RankMethod.UNIFORM, seeds=shared
        )
        for name, weights in instances.items()
    }
